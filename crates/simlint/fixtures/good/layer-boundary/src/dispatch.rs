pub fn enqueue_op(s: &mut Sim) {
    finalize(s);
}

pub fn local_retry(s: &mut Sim) {
    enqueue_op(s);
}
