//! FIFO transfer server for the array↔host channel.

use simkit::SimTime;

/// A granted channel transfer: waits until the channel frees, then occupies
/// it for the transfer duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// When the bytes start moving (≥ request time).
    pub start: SimTime,
    /// When the last byte lands.
    pub end: SimTime,
}

impl Transfer {
    /// Queueing delay experienced at the channel, ns.
    #[inline]
    pub fn wait_ns(&self, requested: SimTime) -> u64 {
        self.start.saturating_since(requested)
    }
}

/// One channel connecting an array's controller to the host.
///
/// Transfers are granted strictly in request order (FIFO), which is how the
/// simulator calls it: requests are made in event order, and the channel's
/// `busy_until` horizon serializes them.
#[derive(Clone, Debug)]
pub struct Channel {
    bytes_per_sec: u64,
    busy_until: SimTime,
    busy_ns: u64,
    bytes_moved: u64,
    transfers: u64,
}

impl Channel {
    /// `bytes_per_sec` — e.g. 10 MB/s = 10_000_000.
    pub fn new(bytes_per_sec: u64) -> Channel {
        assert!(bytes_per_sec > 0);
        Channel {
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            busy_ns: 0,
            bytes_moved: 0,
            transfers: 0,
        }
    }

    /// Transfer duration for `bytes`, ns (rounded up so a transfer is never
    /// free).
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        (bytes * 1_000_000_000).div_ceil(self.bytes_per_sec)
    }

    /// Request a transfer of `bytes` whose data is available at `ready`.
    /// Returns the granted slot and advances the busy horizon.
    pub fn request(&mut self, ready: SimTime, bytes: u64) -> Transfer {
        let start = ready.max(self.busy_until);
        let dur = self.transfer_ns(bytes);
        let end = start + dur;
        self.busy_until = end;
        self.busy_ns += dur;
        self.bytes_moved += bytes;
        self.transfers += 1;
        Transfer { start, end }
    }

    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    #[inline]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    #[inline]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    #[inline]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Utilization over an observation window of `elapsed_ns`.
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        simkit::time::busy_fraction(self.busy_ns, elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_transfer_time_at_10mbs() {
        let ch = Channel::new(10_000_000);
        // 4 KB over 10 MB/s = 409.6 µs.
        assert_eq!(ch.transfer_ns(4096), 409_600);
        assert_eq!(ch.transfer_ns(0), 0);
    }

    #[test]
    fn transfer_rounds_up_never_free() {
        let ch = Channel::new(3_000_000_000); // 3 GB/s
        assert_eq!(ch.transfer_ns(1), 1);
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = Channel::new(10_000_000);
        let t = ch.request(SimTime::from_ms(5), 4096);
        assert_eq!(t.start, SimTime::from_ms(5));
        assert_eq!(t.end, SimTime::from_ms(5) + 409_600);
        assert_eq!(t.wait_ns(SimTime::from_ms(5)), 0);
    }

    #[test]
    fn busy_channel_serializes_fifo() {
        let mut ch = Channel::new(10_000_000);
        let a = ch.request(SimTime::ZERO, 4096);
        let b = ch.request(SimTime::ZERO, 4096);
        assert_eq!(b.start, a.end);
        assert_eq!(b.wait_ns(SimTime::ZERO), 409_600);
        assert_eq!(ch.transfers(), 2);
        assert_eq!(ch.bytes_moved(), 8192);
        assert_eq!(ch.busy_ns(), 819_200);
    }

    #[test]
    fn gap_between_transfers_leaves_channel_idle() {
        let mut ch = Channel::new(10_000_000);
        ch.request(SimTime::ZERO, 4096);
        let b = ch.request(SimTime::from_ms(10), 4096);
        assert_eq!(b.start, SimTime::from_ms(10));
        // Busy time only counts transfer durations, not the idle gap.
        assert_eq!(ch.busy_ns(), 819_200);
        assert!((ch.utilization(b.end.as_ns()) - 819_200.0 / 10_409_600.0).abs() < 1e-12);
    }
}
