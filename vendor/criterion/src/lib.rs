//! Offline stand-in for the slice of `criterion 0.5` this workspace uses.
//!
//! A real measurement harness, just a minimal one: each `bench_function`
//! warms up once, picks an iteration count that fills a small time budget,
//! and reports mean ns/iter on stdout. When `CRITERION_JSON` names a file, a
//! machine-readable baseline (`{"benchmarks": [...]}`) is written there on
//! exit — CI uses this for its `BENCH_sim.json` artifact. No plots, no
//! statistics beyond the mean, no CLI filtering; `cargo bench` arguments are
//! ignored.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-benchmark throughput; echoed into the JSON baseline.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
struct Record {
    id: String,
    ns_per_iter: f64,
    iters: u64,
    elements_per_iter: Option<u64>,
}

pub struct Criterion {
    target_time: Duration,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            target_time: Duration::from_millis(300),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Upstream tunes sample counts; here fewer samples just means a smaller
    /// time budget per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        let n = n.clamp(2, 100) as u64;
        self.target_time = Duration::from_millis(30 * n);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id, None, f);
        self
    }

    fn run_one<F>(&mut self, id: String, elements: Option<u64>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            target_time: self.target_time,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        eprintln!(
            "bench: {id:<40} {:>14.1} ns/iter ({} iters)",
            b.ns_per_iter, b.iters
        );
        self.records.push(Record {
            id,
            ns_per_iter: b.ns_per_iter,
            iters: b.iters,
            elements_per_iter: elements,
        });
    }

    /// Write the JSON baseline if `CRITERION_JSON` is set. Called on drop so
    /// every `criterion_group!` flavour ends up here without cooperation.
    fn write_json(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let elements = match r.elements_per_iter {
                Some(e) => format!(", \"elements_per_iter\": {e}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}{}}}{}\n",
                r.id.replace('"', "'"),
                r.ns_per_iter,
                r.iters,
                elements,
                sep
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("bench: wrote baseline to {path}"),
            Err(e) => eprintln!("bench: could not write {path}: {e}"),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_json();
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let elements = match self.throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        };
        self.criterion.run_one(id, elements, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    target_time: Duration,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call doubles as the calibration probe.
        let probe = Instant::now();
        black_box(f());
        let first = probe.elapsed();
        if first >= self.target_time {
            self.ns_per_iter = first.as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let per = first.as_nanos().max(20);
        let iters = (self.target_time.as_nanos() / per).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].ns_per_iter >= 0.0);
        assert_eq!(c.records[0].elements_per_iter, Some(10));
    }
}
