//! Self-measuring perf harness: report model, JSON (de)serialization, and
//! the regression check behind `perf --check`.
//!
//! The workspace is offline (no `serde_json`), so the `BENCH_*.json`
//! artifacts are written by a hand-rolled emitter and read back by the
//! minimal JSON parser below — both sides covered by round-trip tests.
//! The format is stable on purpose: every future `BENCH_N.json` is one
//! point of the repo's performance trajectory, and `--check` keeps a PR
//! from quietly regressing events/second.

/// One timed simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRun {
    pub label: String,
    pub cached: bool,
    pub requests: u64,
    /// Engine events dispatched.
    pub events: u64,
    pub wall_secs: f64,
    pub events_per_sec: f64,
    /// Future-event-list high-water mark.
    pub peak_queue_depth: u64,
    /// Sanity anchor: mean response time must match the science runs.
    pub mean_response_ms: f64,
    /// Partitioned runs: events executed across partitions ÷ merged
    /// serial-order events (1.0 for serial rows). The pre-split arrival
    /// feed keeps this at or below 1.0; the old replicated-arrival design
    /// measured near the partition count.
    pub replay_amplification: f64,
    /// Partitioned runs: flat-encoded journal bytes streamed from the
    /// partitions to the merge (0 for serial rows).
    pub journal_bytes: u64,
}

/// A full perf report — the contents of one `BENCH_N.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// PR number this baseline belongs to (the `N` of `BENCH_N.json`).
    pub bench_id: u64,
    pub workload: String,
    pub scale: f64,
    pub runs: Vec<PerfRun>,
    pub total_events: u64,
    pub total_wall_secs: f64,
    pub total_events_per_sec: f64,
}

impl PerfReport {
    /// Serialize to pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"bench_id\": {},\n", self.bench_id));
        s.push_str(&format!("  \"workload\": {},\n", quote(&self.workload)));
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": {}, \"cached\": {}, \"requests\": {}, \"events\": {}, \
                 \"wall_secs\": {}, \"events_per_sec\": {}, \"peak_queue_depth\": {}, \
                 \"mean_response_ms\": {}, \"replay_amplification\": {}, \
                 \"journal_bytes\": {}}}{}\n",
                quote(&r.label),
                r.cached,
                r.requests,
                r.events,
                r.wall_secs,
                r.events_per_sec,
                r.peak_queue_depth,
                r.mean_response_ms,
                r.replay_amplification,
                r.journal_bytes,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        s.push_str(&format!(
            "  \"total_wall_secs\": {},\n",
            self.total_wall_secs
        ));
        s.push_str(&format!(
            "  \"total_events_per_sec\": {}\n",
            self.total_events_per_sec
        ));
        s.push_str("}\n");
        s
    }

    /// Parse a report emitted by [`PerfReport::to_json`] (or any JSON with
    /// the same shape).
    pub fn from_json(src: &str) -> Result<PerfReport, String> {
        let v = Json::parse(src)?;
        let runs = v
            .get("runs")?
            .as_array()?
            .iter()
            .map(|r| {
                Ok(PerfRun {
                    label: r.get("label")?.as_str()?.to_string(),
                    cached: r.get("cached")?.as_bool()?,
                    requests: r.get("requests")?.as_f64()? as u64,
                    events: r.get("events")?.as_f64()? as u64,
                    wall_secs: r.get("wall_secs")?.as_f64()?,
                    events_per_sec: r.get("events_per_sec")?.as_f64()?,
                    peak_queue_depth: r.get("peak_queue_depth")?.as_f64()? as u64,
                    mean_response_ms: r.get("mean_response_ms")?.as_f64()?,
                    // Added in BENCH_8; default so older baselines still parse.
                    replay_amplification: r
                        .get("replay_amplification")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(1.0),
                    journal_bytes: r
                        .get("journal_bytes")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0) as u64,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(PerfReport {
            bench_id: v.get("bench_id")?.as_f64()? as u64,
            workload: v.get("workload")?.as_str()?.to_string(),
            scale: v.get("scale")?.as_f64()?,
            runs,
            total_events: v.get("total_events")?.as_f64()? as u64,
            total_wall_secs: v.get("total_wall_secs")?.as_f64()?,
            total_events_per_sec: v.get("total_events_per_sec")?.as_f64()?,
        })
    }
}

/// Compare `current` against `baseline`: any run (matched by label +
/// cached flag) or the total whose events/sec dropped by more than
/// `tolerance` (e.g. 0.15 = 15%) is a regression. Runs present on only one
/// side are ignored — adding an organization must not fail the gate.
/// Returns the human-readable comparison table; `Err` lists the
/// regressions.
pub fn check(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<String, String> {
    let mut table = String::new();
    let mut regressions = Vec::new();
    let mut compare = |name: &str, cur: f64, base: f64| {
        let ratio = if base > 0.0 {
            cur / base
        } else {
            f64::INFINITY
        };
        table.push_str(&format!(
            "  {name:<22} {base:>12.0} -> {cur:>12.0} ev/s  ({:+.1}%)\n",
            (ratio - 1.0) * 100.0
        ));
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{name}: {cur:.0} ev/s is {:.1}% below baseline {base:.0}",
                (1.0 - ratio) * 100.0
            ));
        }
    };
    for b in &baseline.runs {
        if let Some(c) = current
            .runs
            .iter()
            .find(|c| c.label == b.label && c.cached == b.cached)
        {
            let name = format!("{}{}", b.label, if b.cached { "+cache" } else { "" });
            compare(&name, c.events_per_sec, b.events_per_sec);
        }
    }
    compare(
        "TOTAL",
        current.total_events_per_sec,
        baseline.total_events_per_sec,
    );
    if regressions.is_empty() {
        Ok(table)
    } else {
        Err(format!(
            "{} throughput regression(s) beyond {:.0}%:\n  {}\n{table}",
            regressions.len(),
            tolerance * 100.0,
            regressions.join("\n  ")
        ))
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value — just enough to read perf baselines.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key `{key}`")),
            _ => Err(format!("`{key}` looked up on a non-object")),
        }
    }

    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    pub fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|()| Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 passes through byte-by-byte; labels
                    // here are ASCII, but don't mangle it if not.
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            bench_id: 3,
            workload: "trace2".into(),
            scale: 1.0,
            runs: vec![
                PerfRun {
                    label: "Base".into(),
                    cached: false,
                    requests: 1000,
                    events: 4321,
                    wall_secs: 0.5,
                    events_per_sec: 8642.0,
                    peak_queue_depth: 17,
                    mean_response_ms: 21.5,
                    replay_amplification: 1.0,
                    journal_bytes: 0,
                },
                PerfRun {
                    label: "RAID5".into(),
                    cached: true,
                    requests: 1000,
                    events: 9000,
                    wall_secs: 1.25,
                    events_per_sec: 7200.0,
                    peak_queue_depth: 40,
                    mean_response_ms: 35.0,
                    replay_amplification: 0.97,
                    journal_bytes: 123456,
                },
            ],
            total_events: 13321,
            total_wall_secs: 1.75,
            total_events_per_sec: 7612.0,
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = PerfReport::from_json(&report.to_json()).expect("round-trip parse");
        assert_eq!(parsed, report);
    }

    #[test]
    fn check_passes_within_tolerance() {
        let base = sample();
        let mut cur = sample();
        for r in &mut cur.runs {
            r.events_per_sec *= 0.9; // -10%, inside the 15% budget
        }
        cur.total_events_per_sec *= 0.9;
        let table = check(&cur, &base, 0.15).expect("10% drop must pass at 15% tolerance");
        assert!(table.contains("TOTAL"));
    }

    #[test]
    fn check_fails_beyond_tolerance() {
        let base = sample();
        let mut cur = sample();
        cur.runs[1].events_per_sec *= 0.7; // -30%
        let err = check(&cur, &base, 0.15).expect_err("30% drop must fail");
        assert!(err.contains("RAID5+cache"), "{err}");
    }

    #[test]
    fn check_ignores_runs_missing_from_baseline() {
        let base = sample();
        let mut cur = sample();
        cur.runs.push(PerfRun {
            label: "Mirror".into(),
            cached: false,
            requests: 1000,
            events: 1,
            wall_secs: 1.0,
            events_per_sec: 1.0, // would be a huge "regression" if compared
            peak_queue_depth: 1,
            mean_response_ms: 1.0,
            replay_amplification: 1.0,
            journal_bytes: 0,
        });
        assert!(check(&cur, &base, 0.15).is_ok());
    }

    #[test]
    fn pre_bench8_runs_parse_with_defaults() {
        // A run object without the BENCH_8 instrumentation keys (older
        // baselines) must still parse, with neutral defaults.
        let src = "{\"bench_id\": 6, \"workload\": \"w\", \"scale\": 1, \"runs\": [\
                   {\"label\": \"Base\", \"cached\": false, \"requests\": 1, \"events\": 2, \
                   \"wall_secs\": 0.1, \"events_per_sec\": 20, \"peak_queue_depth\": 3, \
                   \"mean_response_ms\": 4.5}], \"total_events\": 2, \
                   \"total_wall_secs\": 0.1, \"total_events_per_sec\": 20}";
        let report = PerfReport::from_json(src).expect("old format parses");
        assert_eq!(report.runs[0].replay_amplification, 1.0);
        assert_eq!(report.runs[0].journal_bytes, 0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(PerfReport::from_json("{}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse("{\"a\\\"b\": [1.5e3, true, null, \"x\\n\"]}").expect("parse");
        let arr = v.get("a\"b").expect("key").as_array().expect("array");
        assert_eq!(arr[0].as_f64().expect("num"), 1500.0);
        assert_eq!(arr[3].as_str().expect("str"), "x\n");
    }
}
