//! Fleet execution: route tenant substreams, pre-split by virtual array,
//! simulate VAs serially or in parallel, merge in VA index order.
//!
//! Parallelism here generalizes `run_par`'s partition unit from
//! redundancy-group-within-one-array to **VA-within-a-fleet**: virtual
//! arrays share no simulator state (each is its own `Simulator` over its
//! own pre-split arrival feed), so workers steal whole VAs off an atomic
//! cursor and write results back by VA index. The merge consumes results
//! in VA index order regardless of completion order, which makes the
//! parallel fleet run byte-identical to the serial one — the same
//! commit-order-merge argument as `run_par`, one level up.
//!
//! Warm-start pools are shared per **disk class**: every VA's `SimConfig`
//! carries the fleet seed and its class's geometry and seek curve, which
//! are exactly the parameters [`WarmDisks::matches`] checks, so one pool
//! per class warm-starts every VA of that class (cold fallback remains
//! byte-identical by the single-array warm-start contract).

use super::alloc::{allocate, FleetPlan};
use super::config::FleetConfig;
use super::report::{FleetReport, VaOutcome};
use crate::config::SimConfig;
use crate::sim::{RunStats, Simulator, WarmDisks};
use std::sync::atomic::{AtomicUsize, Ordering};
use tracegen::{route, SynthSpec, TenantStream, Trace};

/// One virtual array's ready-to-run inputs.
pub(super) struct VaJob {
    config: SimConfig,
    /// The VA's arrivals in VA-local disk numbering.
    trace: Trace,
    /// Per-record tenant index (the request class).
    classes: Vec<u16>,
}

/// Build tenant `t`'s substream spec: the Trace-2 OLTP shape re-skinned
/// with the tenant's demand, skew, and write mix over its VA's span.
fn tenant_substream(fleet: &FleetConfig, plan: &FleetPlan, t: usize) -> TenantStream {
    let tenant = &fleet.tenants[t];
    let va = &plan.vas[plan.placement[t]];
    let mut spec = SynthSpec::trace2();
    spec.name = tenant.id.clone();
    // Per-tenant seed: the fleet seed mixed with the tenant index through
    // the golden-ratio increment, so substreams are decorrelated but the
    // whole fleet trace stays a pure function of (spec, fleet seed).
    spec.seed = fleet
        .seed
        .wrapping_add((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    spec.n_disks = va.data_disks;
    spec.blocks_per_disk = va.config.geometry.blocks_per_disk();
    spec.duration_secs = fleet.duration_secs;
    spec.n_requests = ((tenant.demand_iops * fleet.duration_secs).ceil() as usize).max(1);
    spec.write_fraction = tenant.write_fraction;
    spec.disk_skew_theta = tenant.skew;
    TenantStream {
        tenant: t as u16,
        base_disk: va.base_disk,
        spec,
    }
}

/// Route every tenant substream into the master stream and materialize one
/// pre-split job per VA (records re-based to VA-local disk numbering, each
/// tagged with its tenant class).
fn build_jobs(fleet: &FleetConfig, plan: &FleetPlan) -> Result<Vec<VaJob>, String> {
    let streams: Vec<TenantStream> = (0..fleet.tenants.len())
        .map(|t| tenant_substream(fleet, plan, t))
        .collect();
    let routed = route(plan.total_logical_disks, plan.max_blocks_per_disk, &streams)?;

    // Fleet-global disk → owning VA.
    let mut owner = vec![0usize; plan.total_logical_disks as usize];
    for (v, va) in plan.vas.iter().enumerate() {
        for d in va.base_disk..va.base_disk + va.data_disks {
            owner[d as usize] = v;
        }
    }
    let mut split = routed
        .master
        .split_arrivals(plan.vas.len(), |r| owner[r.disk as usize]);

    let jobs = plan
        .vas
        .iter()
        .enumerate()
        .map(|(v, va)| {
            let indices = split.take_group(v);
            let mut trace = Trace::new(va.data_disks, va.config.geometry.blocks_per_disk());
            trace.records.reserve(indices.len());
            let mut classes = Vec::with_capacity(indices.len());
            for &i in &indices {
                let mut r = routed.master.records[i as usize];
                r.disk -= va.base_disk;
                trace.records.push(r);
                classes.push(routed.tenant_of[i as usize]);
            }
            VaJob {
                config: va.config.clone(),
                trace,
                classes,
            }
        })
        .collect();
    Ok(jobs)
}

/// Simulate one VA job (warm-started from its class pool) and collect its
/// outcome.
fn run_job(job: &VaJob, warm: &WarmDisks, n_tenants: u16) -> Result<VaOutcome, String> {
    let mut sim = Simulator::try_new_warm(job.config.clone(), &job.trace, warm)?;
    sim.set_classes(job.classes.clone(), n_tenants)?;
    let (report, stats, classes) = sim.run_classed();
    Ok(VaOutcome {
        report,
        stats,
        classes,
        arrivals: job.trace.len() as u64,
    })
}

/// Plan, route, and simulate the whole fleet, `threads`-wide (`0` uses the
/// machine's available parallelism; `1` is fully serial). Any thread count
/// returns byte-identical results.
pub fn run_fleet(fleet: &FleetConfig, threads: usize) -> Result<(FleetReport, RunStats), String> {
    let plan = allocate(fleet)?;
    let jobs = build_jobs(fleet, &plan)?;
    let n_tenants = fleet.tenants.len() as u16;

    // One warm pool per disk class, sized for the class's largest VA.
    let mut pools: Vec<(String, u32, WarmDisks)> = Vec::new();
    for (v, va) in plan.vas.iter().enumerate() {
        let size = jobs[v].config.total_disks(va.data_disks);
        match pools.iter_mut().find(|(name, ..)| *name == va.disk_class) {
            Some(p) if p.1 >= size => {}
            Some(p) => {
                p.1 = size;
                p.2 = WarmDisks::new(&jobs[v].config, size);
            }
            None => pools.push((
                va.disk_class.clone(),
                size,
                WarmDisks::new(&jobs[v].config, size),
            )),
        }
    }
    let pool_of = |va: &super::alloc::VaPlan| {
        pools
            .iter()
            .find(|(name, ..)| *name == va.disk_class)
            .map(|(.., w)| w)
            // simlint::allow(panic-policy): every VA's class was pooled above
            .expect("class pool exists")
    };

    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let workers = threads.min(jobs.len()).max(1);

    let mut out: Vec<Option<Result<VaOutcome, String>>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    if workers == 1 {
        for (v, job) in jobs.iter().enumerate() {
            out[v] = Some(run_job(job, pool_of(&plan.vas[v]), n_tenants));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Result<VaOutcome, String>)> = Vec::new();
                        loop {
                            let v = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(v) else { break };
                            local.push((v, run_job(job, pool_of(&plan.vas[v]), n_tenants)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                let local = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                for (v, r) in local {
                    out[v] = Some(r);
                }
            }
        });
    }

    // Merge in VA index order — completion order never leaks into the
    // report, which is what keeps every thread count byte-identical.
    let mut outcomes = Vec::with_capacity(out.len());
    for (v, slot) in out.into_iter().enumerate() {
        // simlint::allow(panic-policy): the cursor hands out every index exactly once
        let r = slot.expect("missing fleet slot");
        outcomes.push(r.map_err(|e| format!("virtual array {:?}: {e}", plan.vas[v].name))?);
    }
    Ok(FleetReport::assemble(fleet, &plan, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_runs_end_to_end() {
        let fleet = FleetConfig::small();
        let (report, stats) = run_fleet(&fleet, 1).unwrap();
        assert_eq!(report.vas.len(), fleet.arrays.len());
        assert_eq!(report.tenants.len(), fleet.tenants.len());
        assert!(report.requests_completed > 0);
        assert!(stats.events_processed > 0);
        // Zero replay amplification by construction: every routed record
        // lands in exactly one VA's feed.
        assert!((stats.replay_amplification - 1.0).abs() < 1e-12);
        let owned: u64 = stats.partitions.iter().map(|p| p.arrivals_owned).sum();
        let demand: usize = fleet
            .tenants
            .iter()
            .map(|t| ((t.demand_iops * fleet.duration_secs).ceil() as usize).max(1))
            .sum();
        assert_eq!(
            owned as usize, demand,
            "router must neither drop nor duplicate arrivals"
        );
    }

    #[test]
    fn parallel_fleet_matches_serial_bytes() {
        let fleet = FleetConfig::small();
        let serial = format!("{:#?}", run_fleet(&fleet, 1).unwrap().0);
        for threads in [2, 3] {
            let par = format!("{:#?}", run_fleet(&fleet, threads).unwrap().0);
            assert_eq!(par, serial, "fleet diverged at {threads} threads");
        }
    }

    #[test]
    fn every_tenant_reports_completions() {
        let fleet = FleetConfig::small();
        let (report, _) = run_fleet(&fleet, 2).unwrap();
        for t in &report.tenants {
            assert!(t.completed > 0, "tenant {} completed nothing", t.id);
            assert!(t.p99_ms > 0.0);
        }
    }
}
