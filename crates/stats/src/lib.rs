//! # raidtp-stats — measurement plumbing for the simulator
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`Histogram`] — fixed-width-bin latency histogram with percentile
//!   queries (used for response-time distributions).
//! * [`DiskCounters`] — per-disk access counts with imbalance metrics
//!   (reproduces Figures 6–7, the access-skew plots).
//! * [`TimeSeries`] — sampled per-instant state (queue depths,
//!   utilizations, cache occupancy) recorded by the simulator's periodic
//!   sampler.
//! * [`table`] — fixed-width text tables for experiment output.

pub mod counters;
pub mod histogram;
pub mod table;
pub mod timeseries;
pub mod welford;

pub use counters::DiskCounters;
pub use histogram::Histogram;
pub use table::Table;
pub use timeseries::TimeSeries;
pub use welford::Welford;
