//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures all            # everything, paper order
//! figures fig5 fig12     # selected experiments
//! figures --list         # available ids
//! RAIDTP_T1_SCALE=0.05 figures fig4   # smaller Trace 1 for quick runs
//! ```

use bench::experiments::{Experiment, ALL};
use bench::Workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--list] <all | table1 table2 fig4 .. fig19>");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _) in ALL {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        ALL.iter().filter(|(id, _)| *id != "fig7").collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match ALL.iter().find(|(id, _)| id == a) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (use --list)");
                    std::process::exit(2);
                }
            }
        }
        // fig6 and fig7 share one function; drop accidental duplicates.
        sel.dedup_by_key(|e| e.1 as usize);
        sel
    };

    eprintln!("generating workloads…");
    let t0 = std::time::Instant::now();
    let w = match Workloads::load() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "traces ready in {:.1?} (Trace 1: {} reqs @ scale {}, Trace 2: {} reqs)\n",
        t0.elapsed(),
        w.trace1.len(),
        w.t1_scale,
        w.trace2.len()
    );

    for (id, f) in selected {
        let t = std::time::Instant::now();
        f(&w);
        eprintln!("[{id} done in {:.1?}]\n", t.elapsed());
    }
}
