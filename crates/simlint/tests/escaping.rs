//! `--format json` / `--format sarif` must emit *valid* JSON for any
//! diagnostic content — quotes, backslashes, and control characters in
//! snippets or paths all round-trip. The check parses the output with a
//! strict, dependency-free JSON parser (no trailing commas, no lenient
//! escapes) rather than eyeballing substrings, so an escaping bug is a
//! parse failure, not a fuzzy mismatch.

use simlint::{to_json, to_sarif, Diagnostic, Level, Rule};

/// Minimal strict JSON value for the round-trip assertions.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key:?} in {self:?}")),
            other => panic!("expected object for key {key:?}, got {other:?}"),
        }
    }

    fn idx(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => &items[i],
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr_len(&self) -> usize {
        match self {
            Json::Arr(items) => items.len(),
            other => panic!("expected array, got {other:?}"),
        }
    }
}

fn parse(src: &str) -> Result<Json, String> {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let v = parse_value(&b, &mut i)?;
    skip_ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[char], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], ' ' | '\t' | '\n' | '\r') {
        *i += 1;
    }
}

fn expect(b: &[char], i: &mut usize, c: char) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {c:?} at {i}, found {:?}", b.get(*i)))
    }
}

fn parse_value(b: &[char], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some('{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                expect(b, i, ':')?;
                let val = parse_value(b, i)?;
                fields.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected , or }} at {i}, found {other:?}")),
                }
            }
        }
        Some('[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected , or ] at {i}, found {other:?}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(b, i)?)),
        Some('t') if b[*i..].starts_with(&['t', 'r', 'u', 'e']) => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if b[*i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if b[*i..].starts_with(&['n', 'u', 'l', 'l']) => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *i;
            *i += 1;
            while b
                .get(*i)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *i += 1;
            }
            let text: String = b[start..*i].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?}"))
        }
        other => Err(format!("unexpected {other:?} at {i}")),
    }
}

fn parse_string(b: &[char], i: &mut usize) -> Result<String, String> {
    expect(b, i, '"')?;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *i += 1;
                return Ok(out);
            }
            Some('\\') => {
                *i += 1;
                match b.get(*i) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = b
                            .get(*i + 1..*i + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).ok_or("invalid code point")?);
                        *i += 4;
                    }
                    other => return Err(format!("illegal escape {other:?}")),
                }
                *i += 1;
            }
            Some(c) if (*c as u32) < 0x20 => {
                return Err(format!("raw control character {c:?} in string"));
            }
            Some(c) => {
                out.push(*c);
                *i += 1;
            }
        }
    }
}

/// Diagnostics whose every string field is hostile to naive escaping.
fn hostile_diags() -> Vec<Diagnostic> {
    vec![
        Diagnostic {
            rule: Rule::UnitSafety,
            level: Level::Deny,
            file: "crates\\weird\"dir/lib.rs".into(),
            line: 3,
            col: 9,
            snippet: "let s = \"quote \\\" backslash \\\\ tab\there\";".into(),
        },
        Diagnostic {
            rule: Rule::UnusedAllow,
            level: Level::Warn,
            file: "src/ctrl.rs".into(),
            line: 1,
            col: 1,
            snippet: "bell\u{7}and\u{1}control // simlint::allow(panic-policy): x".into(),
        },
    ]
}

#[test]
fn to_json_output_is_strictly_parseable_and_round_trips() {
    let diags = hostile_diags();
    let doc = parse(&to_json(&diags)).expect("to_json emits strict JSON");
    assert_eq!(doc.arr_len(), 2);
    let first = doc.idx(0);
    assert_eq!(first.get("rule").str(), "unit-safety");
    assert_eq!(first.get("level").str(), "deny");
    assert_eq!(first.get("file").str(), diags[0].file);
    assert_eq!(first.get("snippet").str(), diags[0].snippet);
    assert_eq!(first.get("line").num(), 3.0);
    let second = doc.idx(1);
    assert_eq!(second.get("snippet").str(), diags[1].snippet);
}

#[test]
fn to_sarif_output_is_strictly_parseable_and_well_formed() {
    let diags = hostile_diags();
    let doc = parse(&to_sarif(&diags)).expect("to_sarif emits strict JSON");
    assert_eq!(doc.get("version").str(), "2.1.0");
    let run = doc.get("runs").idx(0);
    let driver = run.get("tool").get("driver");
    assert_eq!(driver.get("name").str(), "simlint");
    // Full rule catalog rides along for code-scanning display.
    assert_eq!(driver.get("rules").arr_len(), 13);
    let results = run.get("results");
    assert_eq!(results.arr_len(), 2);
    let r0 = results.idx(0);
    assert_eq!(r0.get("ruleId").str(), "unit-safety");
    assert_eq!(r0.get("level").str(), "error");
    assert!(r0
        .get("message")
        .get("text")
        .str()
        .contains(&diags[0].snippet));
    let loc = r0.idx_location();
    assert_eq!(loc.get("artifactLocation").get("uri").str(), diags[0].file);
    assert_eq!(loc.get("region").get("startLine").num(), 3.0);
    let r1 = results.idx(1);
    assert_eq!(r1.get("level").str(), "warning");
    assert!(r1
        .get("message")
        .get("text")
        .str()
        .contains("bell\u{7}and\u{1}control"));
}

impl Json {
    fn idx_location(&self) -> &Json {
        self.get("locations").idx(0).get("physicalLocation")
    }
}

#[test]
fn empty_diag_list_is_still_valid_in_both_formats() {
    assert_eq!(parse(&to_json(&[])).unwrap().arr_len(), 0);
    let doc = parse(&to_sarif(&[])).unwrap();
    assert_eq!(doc.get("runs").idx(0).get("results").arr_len(), 0);
}
