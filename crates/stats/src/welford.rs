//! Streaming mean and variance (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations; 0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 4.0);
        assert_eq!(w.stddev(), 2.0);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
    }

    proptest! {
        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
            ys in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ) {
            let mut a = Welford::new();
            for &x in &xs { a.push(x); }
            let mut b = Welford::new();
            for &y in &ys { b.push(y); }
            a.merge(&b);

            let mut whole = Welford::new();
            for &x in xs.iter().chain(ys.iter()) { whole.push(x); }

            prop_assert_eq!(a.count(), whole.count());
            if whole.count() > 0 {
                prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
                prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
                prop_assert_eq!(a.min(), whole.min());
                prop_assert_eq!(a.max(), whole.max());
            }
        }
    }
}
