//! Simulation results.

use std::fmt;

use nvcache::CacheStats;
use raidtp_stats::{DiskCounters, Histogram, TimeSeries, Welford};
use serde::{Deserialize, Serialize};
use simkit::time::ns_to_ms;

/// One completed request's response time decomposed into its phases, ns.
///
/// The components are **exact**: along the request's critical path (the
/// part that finished last) they sum to the host-observed response time to
/// the nanosecond. Phases:
///
/// * `admission` — waiting for track buffers before processing starts.
/// * `channel` — array↔host channel time: write staging before disk ops
///   issue, the post-read transfer, and the tail transfer of cache misses
///   and reconstructed reads (wait + transfer).
/// * `disk_queue` — waiting in the disk's queue behind *foreground* work.
/// * `destage_interference` — the slice of queue wait spent behind
///   background (destage/spool) operations: how much the "asynchronous"
///   destage process actually delays host requests.
/// * `seek`, `rotation`, `transfer` — the media components of the critical
///   access.
/// * `parity` — the parity-update penalty: synchronization wait before the
///   parity op could even be enqueued, plus extra rotations spent holding
///   the disk for the read-modify-write turnaround (Section 3.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSample {
    pub admission_ns: u64,
    pub channel_ns: u64,
    pub disk_queue_ns: u64,
    pub destage_interference_ns: u64,
    pub seek_ns: u64,
    pub rotation_ns: u64,
    pub transfer_ns: u64,
    pub parity_ns: u64,
}

impl PhaseSample {
    /// Total of all components — equals the response time, exactly.
    pub fn sum_ns(&self) -> u64 {
        self.admission_ns
            + self.channel_ns
            + self.disk_queue_ns
            + self.destage_interference_ns
            + self.seek_ns
            + self.rotation_ns
            + self.transfer_ns
            + self.parity_ns
    }
}

/// Per-request-class response statistics. Classes are an opt-in tagging of
/// trace records (the fleet layer tags one class per tenant); a simulator
/// with classes set returns one `ClassReport` per class out-of-band from
/// `run_classed`, leaving [`SimReport`]'s serialized form — which the
/// determinism suite hashes — untouched. Accumulators are pushed in
/// completion order, so two runs producing the same completion schedule
/// produce bit-identical class reports; merging across virtual arrays in
/// fixed VA index order keeps the fleet aggregate deterministic too.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassReport {
    pub completed: u64,
    pub response_ms: Welford,
    pub histogram_ms: Histogram,
}

impl ClassReport {
    pub fn new() -> ClassReport {
        ClassReport {
            completed: 0,
            response_ms: Welford::new(),
            histogram_ms: Histogram::response_time_ms(),
        }
    }

    /// Fold another class's accumulators into this one (exact: Welford
    /// merge plus bucket-count addition).
    pub fn merge(&mut self, other: &ClassReport) {
        self.completed += other.completed;
        self.response_ms.merge(&other.response_ms);
        self.histogram_ms.merge(&other.histogram_ms);
    }

    /// 99th-percentile response time from the histogram, ms.
    pub fn p99_ms(&self) -> f64 {
        self.histogram_ms.quantile(0.99)
    }
}

impl Default for ClassReport {
    fn default() -> Self {
        ClassReport::new()
    }
}

/// Streaming per-phase statistics (ms), one [`Welford`] per phase.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseWelfords {
    pub admission_ms: Welford,
    pub channel_ms: Welford,
    pub disk_queue_ms: Welford,
    pub destage_interference_ms: Welford,
    pub seek_ms: Welford,
    pub rotation_ms: Welford,
    pub transfer_ms: Welford,
    pub parity_ms: Welford,
}

impl PhaseWelfords {
    pub fn new() -> PhaseWelfords {
        PhaseWelfords::default()
    }

    pub fn push(&mut self, s: &PhaseSample) {
        self.admission_ms.push(ns_to_ms(s.admission_ns));
        self.channel_ms.push(ns_to_ms(s.channel_ns));
        self.disk_queue_ms.push(ns_to_ms(s.disk_queue_ns));
        self.destage_interference_ms
            .push(ns_to_ms(s.destage_interference_ns));
        self.seek_ms.push(ns_to_ms(s.seek_ns));
        self.rotation_ms.push(ns_to_ms(s.rotation_ns));
        self.transfer_ms.push(ns_to_ms(s.transfer_ns));
        self.parity_ms.push(ns_to_ms(s.parity_ns));
    }

    /// Requests observed.
    pub fn count(&self) -> u64 {
        self.admission_ms.count()
    }

    /// Stable (label, mean ms) pairs in presentation order.
    pub fn means_ms(&self) -> [(&'static str, f64); 8] {
        [
            ("admission", self.admission_ms.mean()),
            ("channel", self.channel_ms.mean()),
            ("disk queue", self.disk_queue_ms.mean()),
            ("destage intf", self.destage_interference_ms.mean()),
            ("seek", self.seek_ms.mean()),
            ("rotation", self.rotation_ms.mean()),
            ("transfer", self.transfer_ms.mean()),
            ("parity", self.parity_ms.mean()),
        ]
    }

    /// Sum of the phase means — equals the mean response time (up to f64
    /// rounding), since each request's phases sum exactly.
    pub fn mean_total_ms(&self) -> f64 {
        self.means_ms().iter().map(|(_, m)| m).sum()
    }
}

/// Fault-injection outcome accounting, present when `SimConfig::fault` was
/// set. Durations are measured inside the simulated run: a window still
/// open when the simulation ends is truncated at the final event time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// Time spent in degraded or rebuilding state, summed over arrays and
    /// over every degraded episode, ms; an episode still open at the end of
    /// the run (no spare, pool exhausted, data loss) is truncated there.
    /// 0 when no disk failed.
    pub degraded_window_ms: f64,
    /// Rebuild start → last block re-protected, summed over arrays, ms.
    pub rebuild_ms: f64,
    /// Blocks reconstructed onto spare targets.
    pub rebuild_blocks: u64,
    /// Permanent disk failures (injected and escalated), spares drawn from
    /// the pools, and spares still available at the end of the run.
    pub disk_failures: u64,
    pub spares_used: u64,
    /// Latent sector errors injected, and how many the scrub repaired from
    /// redundancy before anything tripped over them.
    pub latent_errors: u64,
    pub latent_repaired: u64,
    /// Blocks verified by the background scrub.
    pub scrub_blocks: u64,
    /// Blocks lost beyond redundancy (second failures, latent errors with
    /// no surviving peer), and host reads that completed degenerately
    /// because their data was gone.
    pub blocks_lost: u64,
    pub lost_reads: u64,
    /// Transient media errors injected.
    pub transient_errors: u64,
    /// Operation retries driven by the controller (≤ transient_errors).
    pub retries: u64,
    /// Retry-exhausted errors escalated to a permanent disk failure.
    pub escalations: u64,
    /// In-flight or queued operations aborted when their disk died.
    pub ops_aborted: u64,
    /// Replacement operations created to re-plan aborted reads through the
    /// degraded (reconstruct-from-peers) machinery.
    pub ops_replayed: u64,
    /// NVRAM battery outage span, ms.
    pub battery_window_ms: f64,
    /// Host writes that had to complete write-through during the outage.
    pub writes_written_through: u64,
    /// Response times split by the array's state when the request was
    /// processed: healthy, degraded (failed disk, no rebuild running),
    /// rebuilding, or past the data-loss transition.
    pub response_healthy_ms: Welford,
    pub response_degraded_ms: Welford,
    pub response_rebuilding_ms: Welford,
    pub response_dataloss_ms: Welford,
}

impl FaultReport {
    /// Mean response time over the whole degraded window (degraded +
    /// rebuilding states), ms — the figure the rebuild experiment tables.
    pub fn degraded_mean_ms(&self) -> f64 {
        let mut w = self.response_degraded_ms;
        w.merge(&self.response_rebuilding_ms);
        w.mean()
    }
}

/// Structured end-of-run durability summary, present when
/// `SimConfig::fault` was set. Where [`FaultReport`] is the performance
/// view of a faulty run (response times by window, recovery traffic), this
/// is the *reliability* view: what state the lifecycle ended in and what,
/// if anything, was lost. The `figures reliability` experiment tables these
/// per organization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Worst lifecycle state across arrays at the end of the run:
    /// `"healthy"`, `"degraded"`, `"rebuilding"`, or `"data-loss"`.
    pub health: String,
    /// Permanent disk failures (injected and escalated).
    pub disk_failures: u64,
    /// Spares drawn from the pools / still available at the end.
    pub spares_used: u64,
    pub spares_available: u64,
    /// Latent sector errors injected / repaired from redundancy.
    pub latent_errors: u64,
    pub latent_repaired: u64,
    /// Blocks verified by the background scrub, and the fraction of all
    /// physical blocks that represents (the sweep skips failed disks, so a
    /// degraded array's pass covers less than 1.0).
    pub scrub_blocks: u64,
    pub scrub_coverage: f64,
    /// Blocks lost beyond redundancy, and host reads of lost data that
    /// completed degenerately.
    pub blocks_lost: u64,
    pub lost_reads: u64,
    /// Total time any array spent without full redundancy (degraded +
    /// rebuilding), summed over arrays and episodes, ms — the window in
    /// which a second failure loses data (the MTTDL exposure term).
    pub exposure_ms: f64,
    /// When the first array crossed into `DataLoss`, ms from run start.
    pub data_loss_at_ms: Option<f64>,
}

impl ReliabilityReport {
    /// Whether the run ended with every block still recoverable.
    pub fn survived(&self) -> bool {
        self.blocks_lost == 0
    }
}

/// Dispatch-layer statistics: what the configured [`Discipline`] did with
/// each drive's queue. Present when the run used a non-FCFS discipline, or
/// when `ObservabilityConfig::scheduler_stats` opted in (the FCFS default
/// omits it so the report stays byte-identical to the pre-seam simulator —
/// see the manual [`fmt::Debug`] impl on [`SimReport`]).
///
/// [`Discipline`]: diskmodel::Discipline
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SchedulerReport {
    /// Discipline label (`"FCFS"`, `"SSTF"`, `"SCAN"`).
    pub discipline: String,
    /// Arm travel of each dispatched operation, cylinders (|target −
    /// current|, measured at dispatch over every drive).
    pub seek_distance_cyl: Welford,
    /// Queue depth of each band, observed at every dispatch decision
    /// (including the op being dispatched).
    pub queue_depth_priority: Welford,
    pub queue_depth_normal: Welford,
    pub queue_depth_background: Welford,
}

impl SchedulerReport {
    /// Mean arm travel per dispatched operation, cylinders — the figure of
    /// merit for position-aware disciplines.
    pub fn mean_seek_distance_cyl(&self) -> f64 {
        self.seek_distance_cyl.mean()
    }

    /// Mean total queue depth (all bands) seen at dispatch.
    pub fn mean_queue_depth(&self) -> f64 {
        self.queue_depth_priority.mean()
            + self.queue_depth_normal.mean()
            + self.queue_depth_background.mean()
    }
}

/// Everything a run measured. Response times are *host-observed*: from
/// request arrival to the last byte landing (reads) or to the data — and,
/// in non-cached parity organizations, the parity — being on stable storage
/// (writes).
#[derive(Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Organization label (e.g. `"RAID5"`).
    pub organization: String,
    pub requests_completed: u64,
    pub reads_completed: u64,
    pub writes_completed: u64,

    pub response_all_ms: Welford,
    pub response_reads_ms: Welford,
    pub response_writes_ms: Welford,
    pub histogram_ms: Histogram,

    /// Per-phase latency decomposition along each request's critical path,
    /// split by direction. Phase means sum to the mean response time.
    pub phases_reads: PhaseWelfords,
    pub phases_writes: PhaseWelfords,

    /// Physical accesses per disk, concatenated array by array
    /// (Figures 6–7).
    pub per_disk_accesses: DiskCounters,
    /// Per-disk busy fraction over the simulated span.
    pub disk_utilization: Vec<f64>,
    /// Per-array channel busy fraction.
    pub channel_utilization: Vec<f64>,

    /// Cache accounting (cached runs only).
    pub cache: Option<CacheStats>,
    /// RAID4 parity-spool high-water mark (slots) and merge count.
    pub spool_peak: usize,
    pub spool_merges: u64,
    /// Destage groups that could not reserve spool slots and were deferred.
    pub spool_stalls: u64,

    /// Total physical disk operations dispatched.
    pub disk_ops: u64,
    /// Admissions that had to wait for track buffers.
    pub buffer_waits: u64,
    /// Simulated time span, seconds.
    pub elapsed_secs: f64,

    /// Fault-injection accounting, present when `SimConfig::fault` was set.
    pub faults: Option<FaultReport>,

    /// End-of-run durability summary, present when `SimConfig::fault` was
    /// set. Omitted from the serialized and `Debug` forms when absent so
    /// fault-free reports stay byte-identical to earlier baselines.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub reliability: Option<ReliabilityReport>,

    /// Sampled state over time, present when
    /// `SimConfig::observability.sample_period_ms` was set.
    pub timeseries: Option<TimeSeries>,

    /// Dispatch-layer statistics, present for non-FCFS disciplines or when
    /// `observability.scheduler_stats` was set.
    pub scheduler: Option<SchedulerReport>,
}

/// Matches `#[derive(Debug)]` byte-for-byte for every pre-seam field, but
/// omits `scheduler` when it is `None`. The determinism suite hashes the
/// `{:#?}` serialization of default-FCFS reports against pre-refactor
/// baselines, so the default output must not grow a field.
impl fmt::Debug for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("SimReport");
        s.field("organization", &self.organization)
            .field("requests_completed", &self.requests_completed)
            .field("reads_completed", &self.reads_completed)
            .field("writes_completed", &self.writes_completed)
            .field("response_all_ms", &self.response_all_ms)
            .field("response_reads_ms", &self.response_reads_ms)
            .field("response_writes_ms", &self.response_writes_ms)
            .field("histogram_ms", &self.histogram_ms)
            .field("phases_reads", &self.phases_reads)
            .field("phases_writes", &self.phases_writes)
            .field("per_disk_accesses", &self.per_disk_accesses)
            .field("disk_utilization", &self.disk_utilization)
            .field("channel_utilization", &self.channel_utilization)
            .field("cache", &self.cache)
            .field("spool_peak", &self.spool_peak)
            .field("spool_merges", &self.spool_merges)
            .field("spool_stalls", &self.spool_stalls)
            .field("disk_ops", &self.disk_ops)
            .field("buffer_waits", &self.buffer_waits)
            .field("elapsed_secs", &self.elapsed_secs)
            .field("faults", &self.faults)
            .field("timeseries", &self.timeseries);
        if let Some(rel) = &self.reliability {
            s.field("reliability", rel);
        }
        if let Some(sched) = &self.scheduler {
            s.field("scheduler", sched);
        }
        s.finish()
    }
}

impl SimReport {
    /// Mean response time over all requests, ms — the paper's headline
    /// metric.
    pub fn mean_response_ms(&self) -> f64 {
        self.response_all_ms.mean()
    }

    pub fn mean_read_ms(&self) -> f64 {
        self.response_reads_ms.mean()
    }

    pub fn mean_write_ms(&self) -> f64 {
        self.response_writes_ms.mean()
    }

    /// Response-time quantile, ms.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.histogram_ms.quantile(q)
    }

    /// Mean utilization across all disks.
    pub fn mean_disk_utilization(&self) -> f64 {
        if self.disk_utilization.is_empty() {
            0.0
        } else {
            self.disk_utilization.iter().sum::<f64>() / self.disk_utilization.len() as f64
        }
    }

    /// Utilization of the busiest disk.
    pub fn max_disk_utilization(&self) -> f64 {
        self.disk_utilization.iter().copied().fold(0.0, f64::max)
    }

    pub fn read_hit_ratio(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.read_hit_ratio())
    }

    pub fn write_hit_ratio(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.write_hit_ratio())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} reqs, mean {:.2} ms (reads {:.2}, writes {:.2}), p95 {:.1} ms, util {:.1}%",
            self.organization,
            self.requests_completed,
            self.mean_response_ms(),
            self.mean_read_ms(),
            self.mean_write_ms(),
            self.quantile_ms(0.95),
            self.mean_disk_utilization() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut all = Welford::new();
        let mut reads = Welford::new();
        let mut writes = Welford::new();
        let mut hist = Histogram::response_time_ms();
        for x in [10.0, 20.0, 30.0] {
            all.push(x);
            hist.record(x);
        }
        reads.push(10.0);
        reads.push(20.0);
        writes.push(30.0);
        SimReport {
            organization: "Base".into(),
            requests_completed: 3,
            reads_completed: 2,
            writes_completed: 1,
            response_all_ms: all,
            response_reads_ms: reads,
            response_writes_ms: writes,
            histogram_ms: hist,
            phases_reads: PhaseWelfords::new(),
            phases_writes: PhaseWelfords::new(),
            per_disk_accesses: DiskCounters::new(2),
            disk_utilization: vec![0.2, 0.4],
            channel_utilization: vec![0.1],
            cache: None,
            spool_peak: 0,
            spool_merges: 0,
            spool_stalls: 0,
            disk_ops: 3,
            buffer_waits: 0,
            elapsed_secs: 1.0,
            faults: None,
            reliability: None,
            timeseries: None,
            scheduler: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.mean_response_ms(), 20.0);
        assert_eq!(r.mean_read_ms(), 15.0);
        assert_eq!(r.mean_write_ms(), 30.0);
        assert!((r.mean_disk_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(r.max_disk_utilization(), 0.4);
        assert_eq!(r.read_hit_ratio(), 0.0, "no cache");
        assert!(r.quantile_ms(1.0) >= 30.0);
    }

    #[test]
    fn summary_mentions_org_and_counts() {
        let s = report().summary();
        assert!(s.contains("Base"));
        assert!(s.contains("3 reqs"));
    }

    #[test]
    fn fault_report_degraded_mean_merges_both_windows() {
        let mut f = FaultReport::default();
        assert_eq!(f.degraded_mean_ms(), 0.0, "empty windows mean 0");
        f.response_degraded_ms.push(10.0);
        f.response_rebuilding_ms.push(30.0);
        f.response_rebuilding_ms.push(50.0);
        assert!((f.degraded_mean_ms() - 30.0).abs() < 1e-12);
        // Merging must not mutate the stored accumulators.
        assert_eq!(f.response_degraded_ms.count(), 1);
        assert_eq!(f.response_rebuilding_ms.count(), 2);
    }

    #[test]
    fn phase_sample_sum_is_exact() {
        let s = PhaseSample {
            admission_ns: 1,
            channel_ns: 2,
            disk_queue_ns: 3,
            destage_interference_ns: 4,
            seek_ns: 5,
            rotation_ns: 6,
            transfer_ns: 7,
            parity_ns: 8,
        };
        assert_eq!(s.sum_ns(), 36);
        assert_eq!(PhaseSample::default().sum_ns(), 0);
    }

    #[test]
    fn phase_welfords_mean_total_matches_response() {
        let mut w = PhaseWelfords::new();
        let samples = [
            PhaseSample {
                seek_ns: 10_000_000,
                rotation_ns: 5_000_000,
                transfer_ns: 2_000_000,
                ..PhaseSample::default()
            },
            PhaseSample {
                disk_queue_ns: 8_000_000,
                seek_ns: 4_000_000,
                rotation_ns: 9_000_000,
                transfer_ns: 2_000_000,
                parity_ns: 11_000_000,
                ..PhaseSample::default()
            },
        ];
        let mut resp = Welford::new();
        for s in &samples {
            w.push(s);
            resp.push(ns_to_ms(s.sum_ns()));
        }
        assert_eq!(w.count(), 2);
        assert!((w.mean_total_ms() - resp.mean()).abs() < 1e-9);
        // Labeled means come out in presentation order.
        let means = w.means_ms();
        assert_eq!(means[0].0, "admission");
        assert_eq!(means[7].0, "parity");
        assert!((means[4].1 - 7.0).abs() < 1e-12, "mean seek 7 ms");
    }
}
