//! # raidsim — trace-driven simulation of redundant disk array organizations
//!
//! Reproduction of Mourad, Fuchs & Saab, *"Performance of Redundant Disk
//! Array Organizations in Transaction Processing Environments"* (ICPP 1993):
//! an event-driven I/O subsystem simulator comparing **Base** (independent
//! disks), **Mirror**, **RAID5**, **RAID4 with parity caching**, and
//! **Parity Striping**, with and without a non-volatile controller cache,
//! driven by OLTP I/O traces.
//!
//! ```
//! use raidsim::{Organization, SimConfig, Simulator};
//! use tracegen::SynthSpec;
//!
//! let trace = SynthSpec::trace2().scaled(0.002).generate();
//! let cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
//! let report = Simulator::new(cfg, &trace).run();
//! assert!(report.requests_completed > 0);
//! assert!(report.mean_response_ms() > 0.0);
//! ```
//!
//! The model accounts for all channel and disk effects and ignores CPU and
//! controller processing time, as the paper does (Section 3.2): seek times
//! from the calibrated Table 1 curve, rotational position tracking,
//! per-disk queueing with the five parity-synchronization policies of
//! Section 3.3, channel contention with track buffering, and — in cached
//! configurations — LRU caching with old-data retention, periodic destage,
//! and RAID4 parity spooling.

pub mod analytic;
pub mod config;
pub mod fleet;
pub mod mapping;
pub mod report;
pub mod sim;
pub mod sweep;

pub use config::{
    CacheConfig, DiskFailure, FaultConfig, ObservabilityConfig, Organization, ParityPlacement,
    SimConfig, SparingMode, SyncPolicy,
};
pub use diskmodel::Discipline;
pub use fleet::{
    allocate, run_fleet, DiskClass, FleetConfig, FleetPlan, FleetReport, TenantReport, TenantSpec,
    VaPlan, VaReport, VirtualArraySpec,
};
pub use report::{
    ClassReport, FaultReport, PhaseSample, PhaseWelfords, ReliabilityReport, SchedulerReport,
    SimReport,
};
pub use sim::{PartStats, RunStats, Simulator, WarmDisks};
pub use sweep::{run_all, NamedRun};
