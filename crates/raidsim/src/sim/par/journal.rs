//! The partition→merge journal stream: flat-encoded chunks of exec frames
//! and simulation notes, sent over a channel while the partition runs.
//!
//! Frames ride in [`simkit::FrameChunk`] (engine-level schedules/cancels);
//! the per-event simulation effects ride in the matching [`NoteChunk`].
//! Both are column encodings — per-event scalars plus shared spill arrays —
//! so a chunk is a handful of flat allocations instead of two heap `Vec`s
//! per event, and the merge walks contiguous memory while replaying.

use super::*;

/// Frames per chunk before it is flushed to the merge. Large enough to
/// amortize the channel send, small enough that merging overlaps
/// execution closely (a partition is never more than one chunk ahead of
/// what the merge can see).
pub(super) const CHUNK_FRAMES: usize = 1024;

/// Flat encoding of a run of [`ParNote`]s, mirroring
/// [`simkit::FrameChunk`]'s layout: one scalar row per event plus a shared
/// spill array for the statistics pushes.
#[derive(Default)]
pub(super) struct NoteChunk {
    /// Number of `pushes` entries belonging to each event.
    pub(super) push_count: Vec<u32>,
    pub(super) inflight_delta: Vec<i32>,
    /// Bit 0: `is_arrive`; bit 1: `tick_resched` present; bit 2: its value.
    pub(super) flags: Vec<u8>,
    /// Concatenated statistics pushes, in event order then push order.
    pub(super) pushes: Vec<StatPush>,
}

impl NoteChunk {
    /// Append `note`'s contents and reset it for the next event (the
    /// note's push buffer keeps its capacity, so steady-state journaling
    /// does not allocate).
    pub(super) fn push_note(&mut self, note: &mut ParNote) {
        self.push_count.push(note.pushes.len() as u32);
        self.inflight_delta.push(note.inflight_delta);
        let mut flags = u8::from(note.is_arrive);
        if let Some(resched) = note.tick_resched {
            flags |= 0b010 | (u8::from(resched) << 2);
        }
        self.flags.push(flags);
        self.pushes.append(&mut note.pushes);
        note.inflight_delta = 0;
        note.is_arrive = false;
        note.tick_resched = None;
    }

    /// Resident size of the encoded notes in bytes (buffer contents, not
    /// capacity).
    pub(super) fn bytes(&self) -> usize {
        self.push_count.len() * size_of::<u32>()
            + self.inflight_delta.len() * size_of::<i32>()
            + self.flags.len()
            + self.pushes.len() * size_of::<StatPush>()
    }
}

/// One message on a partition's journal channel, in stream order: the root
/// schedule frame, then frame/note chunks as they fill, then the final
/// hardware state.
pub(super) enum ParMsg {
    Roots(simkit::ExecFrame),
    Chunk(FrameChunk, NoteChunk),
    Done(Box<PartFinal>),
}

/// Everything a finished partition hands to the merge besides its journal:
/// the final state of the hardware it owned plus its instrumentation
/// counters.
pub(super) struct PartFinal {
    pub(super) disks: Vec<Disk>,
    pub(super) channels: Vec<Channel>,
    pub(super) caches: Vec<NvCache>,
    pub(super) spools: Vec<ParitySpool>,
    pub(super) disk_counts: DiskCounters,
    pub(super) disk_ops: u64,
    pub(super) buffer_waits: u64,
    pub(super) spool_stalls: u64,
    pub(super) fault: Option<FaultState>,
    pub(super) failed_local: Vec<Option<u32>>,
    pub(super) dataloss: Vec<bool>,
    pub(super) events_processed: u64,
    pub(super) peak_pending: usize,
    pub(super) arrivals_owned: u64,
    pub(super) journal_frames: u64,
    pub(super) journal_bytes: u64,
}

/// One journaled event, viewed inside a chunk: the engine frame's fields
/// zipped with the matching note's.
pub(super) struct FrameRef<'a> {
    pub(super) at: SimTime,
    pub(super) children: &'a [SimTime],
    pub(super) cancels: &'a [u64],
    pub(super) pushes: &'a [StatPush],
    pub(super) inflight_delta: i32,
    pub(super) is_arrive: bool,
    pub(super) tick_resched: Option<bool>,
}

/// The merge's view of one partition's journal: the receiving end of the
/// channel plus the chunk currently being consumed. `next_frame` blocks on
/// the channel only when the current chunk is exhausted, so a merge that
/// keeps up with the producers waits exactly where the data dependency is.
pub(super) struct PartStream {
    rx: mpsc::Receiver<ParMsg>,
    frames: FrameChunk,
    notes: NoteChunk,
    /// Next frame index within the current chunk.
    i: usize,
    child_pos: usize,
    cancel_pos: usize,
    push_pos: usize,
}

impl PartStream {
    pub(super) fn new(rx: mpsc::Receiver<ParMsg>) -> PartStream {
        PartStream {
            rx,
            frames: FrameChunk::default(),
            notes: NoteChunk::default(),
            i: 0,
            child_pos: 0,
            cancel_pos: 0,
            push_pos: 0,
        }
    }

    /// Receive the partition's root schedule frame (always its first
    /// message).
    pub(super) fn recv_roots(&mut self) -> simkit::ExecFrame {
        match self.rx.recv() {
            Ok(ParMsg::Roots(f)) => f,
            // A journal-protocol violation or a dead partition must abort the
            // merge — a partial merge would fabricate results.
            Ok(_) => panic!("partition sent journal data before its roots"),
            Err(_) => panic!("partition thread died before sending its roots"),
        }
    }

    /// True when the current chunk still holds unconsumed frames (used by
    /// the merge's exhaustion check — it must not block there).
    pub(super) fn has_buffered_frames(&self) -> bool {
        self.i < self.frames.len()
    }

    /// The next journaled event, receiving the next chunk from the
    /// partition if the current one is exhausted (blocking until the
    /// partition produces it).
    pub(super) fn next_frame(&mut self) -> FrameRef<'_> {
        if self.i == self.frames.len() {
            match self.rx.recv() {
                Ok(ParMsg::Chunk(frames, notes)) => {
                    self.frames = frames;
                    self.notes = notes;
                    self.i = 0;
                    self.child_pos = 0;
                    self.cancel_pos = 0;
                    self.push_pos = 0;
                }
                // The merge demanded a frame the partition never journaled —
                // a desync that must stop the run.
                Ok(_) => panic!("partition journal ended while the merge expected more events"),
                Err(_) => panic!("partition thread died mid-journal"),
            }
        }
        let i = self.i;
        let nchildren = self.frames.child_count[i] as usize;
        let ncancels = self.frames.cancel_count[i] as usize;
        let npushes = self.notes.push_count[i] as usize;
        let f = FrameRef {
            at: self.frames.at[i],
            children: &self.frames.children[self.child_pos..self.child_pos + nchildren],
            cancels: &self.frames.cancels[self.cancel_pos..self.cancel_pos + ncancels],
            pushes: &self.notes.pushes[self.push_pos..self.push_pos + npushes],
            inflight_delta: self.notes.inflight_delta[i],
            is_arrive: self.notes.flags[i] & 0b001 != 0,
            tick_resched: (self.notes.flags[i] & 0b010 != 0)
                .then(|| self.notes.flags[i] & 0b100 != 0),
        };
        self.i += 1;
        self.child_pos += nchildren;
        self.cancel_pos += ncancels;
        self.push_pos += npushes;
        f
    }

    /// Receive the partition's final state. Must be called only after the
    /// replay consumed every journaled frame; a remaining chunk on the
    /// channel means the merge's symbolic order diverged.
    pub(super) fn finish(self) -> Box<PartFinal> {
        debug_assert!(!self.has_buffered_frames(), "finish with buffered frames");
        match self.rx.recv() {
            Ok(ParMsg::Done(fin)) => fin,
            // Journaled events the merge never consumed — a desync that
            // must stop the run.
            Ok(_) => panic!("partition journaled events the merge never consumed"),
            Err(_) => panic!("partition thread died before finishing"),
        }
    }
}
