//! Simulation results.

use nvcache::CacheStats;
use raidtp_stats::{DiskCounters, Histogram, Welford};
use serde::{Deserialize, Serialize};

/// Everything a run measured. Response times are *host-observed*: from
/// request arrival to the last byte landing (reads) or to the data — and,
/// in non-cached parity organizations, the parity — being on stable storage
/// (writes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Organization label (e.g. `"RAID5"`).
    pub organization: String,
    pub requests_completed: u64,
    pub reads_completed: u64,
    pub writes_completed: u64,

    pub response_all_ms: Welford,
    pub response_reads_ms: Welford,
    pub response_writes_ms: Welford,
    pub histogram_ms: Histogram,

    /// Physical accesses per disk, concatenated array by array
    /// (Figures 6–7).
    pub per_disk_accesses: DiskCounters,
    /// Per-disk busy fraction over the simulated span.
    pub disk_utilization: Vec<f64>,
    /// Per-array channel busy fraction.
    pub channel_utilization: Vec<f64>,

    /// Cache accounting (cached runs only).
    pub cache: Option<CacheStats>,
    /// RAID4 parity-spool high-water mark (slots) and merge count.
    pub spool_peak: usize,
    pub spool_merges: u64,
    /// Destage groups that could not reserve spool slots and were deferred.
    pub spool_stalls: u64,

    /// Total physical disk operations dispatched.
    pub disk_ops: u64,
    /// Admissions that had to wait for track buffers.
    pub buffer_waits: u64,
    /// Simulated time span, seconds.
    pub elapsed_secs: f64,
}

impl SimReport {
    /// Mean response time over all requests, ms — the paper's headline
    /// metric.
    pub fn mean_response_ms(&self) -> f64 {
        self.response_all_ms.mean()
    }

    pub fn mean_read_ms(&self) -> f64 {
        self.response_reads_ms.mean()
    }

    pub fn mean_write_ms(&self) -> f64 {
        self.response_writes_ms.mean()
    }

    /// Response-time quantile, ms.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.histogram_ms.quantile(q)
    }

    /// Mean utilization across all disks.
    pub fn mean_disk_utilization(&self) -> f64 {
        if self.disk_utilization.is_empty() {
            0.0
        } else {
            self.disk_utilization.iter().sum::<f64>() / self.disk_utilization.len() as f64
        }
    }

    /// Utilization of the busiest disk.
    pub fn max_disk_utilization(&self) -> f64 {
        self.disk_utilization.iter().copied().fold(0.0, f64::max)
    }

    pub fn read_hit_ratio(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.read_hit_ratio())
    }

    pub fn write_hit_ratio(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.write_hit_ratio())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} reqs, mean {:.2} ms (reads {:.2}, writes {:.2}), p95 {:.1} ms, util {:.1}%",
            self.organization,
            self.requests_completed,
            self.mean_response_ms(),
            self.mean_read_ms(),
            self.mean_write_ms(),
            self.quantile_ms(0.95),
            self.mean_disk_utilization() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut all = Welford::new();
        let mut reads = Welford::new();
        let mut writes = Welford::new();
        let mut hist = Histogram::response_time_ms();
        for x in [10.0, 20.0, 30.0] {
            all.push(x);
            hist.record(x);
        }
        reads.push(10.0);
        reads.push(20.0);
        writes.push(30.0);
        SimReport {
            organization: "Base".into(),
            requests_completed: 3,
            reads_completed: 2,
            writes_completed: 1,
            response_all_ms: all,
            response_reads_ms: reads,
            response_writes_ms: writes,
            histogram_ms: hist,
            per_disk_accesses: DiskCounters::new(2),
            disk_utilization: vec![0.2, 0.4],
            channel_utilization: vec![0.1],
            cache: None,
            spool_peak: 0,
            spool_merges: 0,
            spool_stalls: 0,
            disk_ops: 3,
            buffer_waits: 0,
            elapsed_secs: 1.0,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.mean_response_ms(), 20.0);
        assert_eq!(r.mean_read_ms(), 15.0);
        assert_eq!(r.mean_write_ms(), 30.0);
        assert!((r.mean_disk_utilization() - 0.3).abs() < 1e-12);
        assert_eq!(r.max_disk_utilization(), 0.4);
        assert_eq!(r.read_hit_ratio(), 0.0, "no cache");
        assert!(r.quantile_ms(1.0) >= 30.0);
    }

    #[test]
    fn summary_mentions_org_and_counts() {
        let s = report().summary();
        assert!(s.contains("Base"));
        assert!(s.contains("3 reqs"));
    }
}
