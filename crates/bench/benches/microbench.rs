//! Criterion microbenchmarks of the simulator's hot paths: the event queue,
//! disk service computation, address mapping, cache operations, trace
//! generation, and end-to-end simulation rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use diskmodel::{AccessKind, Disk, DiskGeometry, SeekCurve};
use nvcache::{BlockKey, NvCache};
use raidsim::mapping::OrgMap;
use raidsim::{Organization, ParityPlacement, SimConfig, Simulator};
use simkit::{EventQueue, SimTime};
use tracegen::SynthSpec;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            // Deterministic pseudo-random times.
            let mut t = 0x12345u64;
            for i in 0..10_000u64 {
                t = t
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.schedule(SimTime::from_ns(t >> 20), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                debug_assert!(at >= last);
                last = at;
            }
            black_box(last)
        })
    });
    g.finish();
}

fn bench_disk_plan(c: &mut Criterion) {
    let disk = Disk::new(DiskGeometry::default(), SeekCurve::table1(), 0);
    let mut g = c.benchmark_group("disk");
    g.bench_function("plan_read", |b| {
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 9973) % 226_000;
            black_box(disk.plan(SimTime::from_ms(5), block, 1, AccessKind::Read))
        })
    });
    g.bench_function("plan_rmw", |b| {
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 9973) % 226_000;
            black_box(disk.plan(SimTime::from_ms(5), block, 1, AccessKind::RmwParityRead))
        })
    });
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let maps = [
        ("base", OrgMap::new(Organization::Base, 10, 226_800)),
        (
            "raid5_su1",
            OrgMap::new(Organization::Raid5 { striping_unit: 1 }, 10, 226_800),
        ),
        (
            "raid5_su8",
            OrgMap::new(Organization::Raid5 { striping_unit: 8 }, 10, 226_800),
        ),
        (
            "parstrip",
            OrgMap::new(
                Organization::ParityStriping {
                    placement: ParityPlacement::Middle,
                },
                10,
                226_800,
            ),
        ),
    ];
    let mut g = c.benchmark_group("mapping");
    for (name, map) in &maps {
        let cap = map.logical_capacity();
        g.bench_function(format!("write_plan_{name}"), |b| {
            let mut laddr = 0u64;
            b.iter(|| {
                laddr = (laddr + 104_729) % (cap - 4);
                black_box(map.write_plan(laddr, 4))
            })
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvcache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mixed_ops", |b| {
        let mut cache = NvCache::new(4096);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            let key = BlockKey::new((i % 10) as u32, (i >> 8) % 100_000);
            if i.is_multiple_of(4) {
                black_box(cache.write_access(&[key], true));
            } else {
                let missing = cache.read_probe(&[key]);
                for k in missing {
                    black_box(cache.insert_fetched(k));
                }
            }
        })
    });
    g.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegen");
    let spec = SynthSpec::trace2().scaled(0.1);
    g.throughput(Throughput::Elements(spec.n_requests as u64));
    g.bench_function("trace2_10pct", |b| b.iter(|| black_box(spec.generate())));
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let trace = SynthSpec::trace2().scaled(0.1).generate();
    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for org in [
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ] {
        g.bench_function(format!("noncached_{}", org.label()), |b| {
            b.iter(|| {
                let cfg = SimConfig::with_organization(org);
                black_box(Simulator::new(cfg, &trace).run().requests_completed)
            })
        });
    }
    g.bench_function("cached_RAID5_16MB", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
            cfg.cache = Some(raidsim::CacheConfig::default());
            black_box(Simulator::new(cfg, &trace).run().requests_completed)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event_queue, bench_disk_plan, bench_mapping, bench_cache,
              bench_tracegen, bench_end_to_end
}
criterion_main!(benches);
