//! No determinism hash is pinned here, so the relaxed profile skips the
//! file entirely: test helpers may use whatever collections they like.

#[test]
fn scratch_state_is_fine() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    assert_eq!(m.len(), 1);
}
