//! The hand-rolled lexer every simlint pass runs on.
//!
//! `syn` is unavailable in this offline workspace, so analysis works on a
//! purpose-built token stream: comments, string/char literals, lifetimes,
//! and numeric literals are stripped exactly (none of them can carry a
//! violation), while `simlint::allow` directives are harvested out of the
//! comments. Getting this boundary exactly right is what makes the rules
//! unspoofable: a `//` inside a string must not start a comment, a
//! directive inside a string must not suppress anything, and a rule token
//! inside a raw string must not fire.

/// One lexical token that survives stripping: an identifier/keyword or a
/// single punctuation character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Clone, Debug)]
pub(crate) struct Token {
    pub(crate) tok: Tok,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

impl Token {
    pub(crate) fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }

    pub(crate) fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// A `simlint::allow(rule): reason` annotation found in a comment.
#[derive(Clone, Debug)]
pub(crate) struct AllowDirective {
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) rule: Option<crate::Rule>,
    pub(crate) has_reason: bool,
    pub(crate) used: bool,
}

pub(crate) struct Lexed {
    pub(crate) tokens: Vec<Token>,
    pub(crate) directives: Vec<AllowDirective>,
}

/// Tokenize `src`, stripping comments, strings, chars, lifetimes, and
/// numeric literals — none of which can carry a violation — while
/// harvesting `simlint::allow` directives out of the comments (line *and*
/// block comments, so both annotation styles work).
pub(crate) fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (also harvests allow directives).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            let dline = line;
            let dcol = col;
            while i < b.len() && b[i] != '\n' {
                bump!();
            }
            let text: String = b[start..i].iter().collect();
            if let Some(d) = parse_directive(&text, dline, dcol) {
                directives.push(d);
            }
            continue;
        }
        // Block comment, nested. Directives are harvested here too so a
        // `/* simlint::allow(...) */` annotation is not silently inert.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let dline = line;
            let dcol = col;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            let text: String = b[start..i].iter().collect();
            if let Some(d) = parse_directive(&text, dline, dcol) {
                directives.push(d);
            }
            continue;
        }
        // String-ish literals, including raw and byte forms.
        if c == '"' || c == 'r' || c == 'b' {
            let (is_str, prefix_len, raw_hashes) = string_prefix(c, &b[i..]);
            if is_str {
                for _ in 0..prefix_len {
                    bump!();
                }
                if let Some(h) = raw_hashes {
                    // Raw string: ends at `"` followed by `h` hashes.
                    while i < b.len() {
                        if b[i] == '"'
                            && b[i + 1..].len() >= h
                            && b[i + 1..i + 1 + h].iter().all(|&x| x == '#')
                        {
                            bump!(); // closing quote
                            for _ in 0..h {
                                bump!();
                            }
                            break;
                        }
                        bump!();
                    }
                } else {
                    // Cooked string: honor escapes.
                    while i < b.len() {
                        if b[i] == '\\' && i + 1 < b.len() {
                            bump!();
                            bump!();
                        } else if b[i] == '"' {
                            bump!();
                            break;
                        } else {
                            bump!();
                        }
                    }
                }
                continue;
            }
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
            bump!(); // the quote
            if is_lifetime {
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!();
                }
            } else {
                // Char literal: consume to the closing quote, honoring escapes.
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        bump!();
                        bump!();
                    } else if b[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let tl = line;
            let tc = col;
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!();
            }
            tokens.push(Token {
                tok: Tok::Ident(b[start..i].iter().collect()),
                line: tl,
                col: tc,
            });
            continue;
        }
        // Numeric literal: swallowed entirely (cannot carry a violation).
        if c.is_ascii_digit() {
            while i < b.len()
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                bump!();
            }
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        tokens.push(Token {
            tok: Tok::Punct(c),
            line,
            col,
        });
        bump!();
    }

    Lexed { tokens, directives }
}

/// Classify a possible string-literal start at `tail[0]`: returns
/// (is_string, prefix chars before the content, Some(hash_count) for raw
/// strings). `r`/`b` that do not begin a literal (plain identifiers, raw
/// identifiers like `r#fn`) return `(false, …)` and lex as identifiers.
fn string_prefix(c: char, tail: &[char]) -> (bool, usize, Option<usize>) {
    match c {
        '"' => (true, 1, None),
        'r' | 'b' => {
            let mut j = 1;
            if c == 'b' && tail.get(1) == Some(&'r') {
                j = 2;
            } else if c == 'b' && tail.get(1) == Some(&'"') {
                return (true, 2, None);
            } else if c == 'b' {
                return (false, 0, None);
            }
            let mut hashes = 0;
            while tail.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if tail.get(j) == Some(&'"') {
                (true, j + 1, Some(hashes))
            } else {
                (false, 0, None)
            }
        }
        _ => (false, 0, None),
    }
}

pub(crate) fn parse_directive(comment: &str, line: u32, col: u32) -> Option<AllowDirective> {
    let idx = comment.find("simlint::allow")?;
    let rest = &comment[idx + "simlint::allow".len()..];
    let rest = rest.trim_start();
    let Some(stripped) = rest.strip_prefix('(') else {
        return Some(AllowDirective {
            line,
            col,
            rule: None,
            has_reason: false,
            used: false,
        });
    };
    let Some(close) = stripped.find(')') else {
        return Some(AllowDirective {
            line,
            col,
            rule: None,
            has_reason: false,
            used: false,
        });
    };
    let rule = crate::Rule::from_name(stripped[..close].trim());
    let after = stripped[close + 1..].trim_start();
    // Block-comment directives may carry a trailing `*/`; it is not part
    // of the reason.
    let after = after.strip_suffix("*/").unwrap_or(after);
    let has_reason = after
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    Some(AllowDirective {
        line,
        col,
        rule,
        has_reason,
        used: false,
    })
}
