//! Degraded-mode (one failed disk) planning.
//!
//! The paper notes that "large arrays are less reliable and have worse
//! performance during reconstruction following a disk failure"
//! (Section 4.2.1) without quantifying it; this module makes degraded
//! operation simulable. One physical disk of an array is marked failed;
//! requests are re-planned:
//!
//! * **Reads** of lost blocks are served by reading the *peer* blocks —
//!   the same-offset blocks of every surviving member of the stripe/parity
//!   group (data + parity) — and XOR-reconstructing in the controller.
//! * **Writes** to a stripe with a failed data disk cannot read-modify-
//!   write: the new parity is computed from the new data plus the current
//!   contents of the surviving unwritten units (read first), then written
//!   outright — a reconstruct-write.
//! * Writes whose **parity** lives on the failed disk skip the parity
//!   update entirely (plain writes).
//! * **Mirror** reads/writes simply use the surviving copy.

use super::{OrgMap, Run, StripeMode, WritePlan};

/// Spare-area target for block `block` of the failed disk under
/// *distributed sparing*: instead of one hot spare absorbing the whole
/// reconstructed disk, every survivor reserves a spare area and the failed
/// disk's blocks are struck across them round-robin. Survivor `i` (in
/// ascending disk order, the failed slot skipped) takes the blocks with
/// `block ≡ i (mod dpa−1)`, so rebuild writes spread evenly over all
/// `dpa−1` surviving spindles — the mechanism behind distributed sparing's
/// shorter rebuild window.
///
/// The returned index is a real disk of the array, never `failed`.
pub(crate) fn distributed_spare_target(dpa: u32, failed: u32, block: u64) -> u32 {
    debug_assert!(dpa >= 2 && failed < dpa);
    let i = (block % (dpa as u64 - 1)) as u32;
    // The i-th survivor in ascending order: indices below `failed` map
    // straight through, the rest shift past the failed slot.
    if i < failed {
        i
    } else {
        i + 1
    }
}

/// How a read decomposes under a failed disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradedRead {
    /// Runs on surviving disks, read normally.
    pub direct: Vec<Run>,
    /// Peer runs to read for XOR reconstruction of lost blocks.
    pub reconstruct: Vec<Run>,
}

impl OrgMap {
    /// Peer locations (disk, block) needed to reconstruct one lost block at
    /// `(failed_disk, block)`: every surviving member of its redundancy
    /// group, including parity. Empty for Base (no redundancy).
    pub fn peers_of(&self, failed_disk: u32, block: u64) -> Vec<(u32, u64)> {
        match self {
            OrgMap::Base(_) => Vec::new(),
            OrgMap::Mirror(_) => vec![(failed_disk ^ 1, block)],
            OrgMap::Raid(m) => {
                let s = block / m.su as u64;
                (0..=m.n)
                    .filter(|&d| d != failed_disk)
                    .map(|d| (d, block))
                    .map(|(d, b)| {
                        debug_assert!(s == b / m.su as u64);
                        (d, b)
                    })
                    .collect()
            }
            OrgMap::ParStrip(m) => {
                // Tail-sliver blocks beyond the (n+1) tiled areas belong to
                // no redundancy group: they are unused by the address map and
                // unprotected, so there is nothing to reconstruct from.
                let slot64 = block / m.area_blocks;
                if slot64 > m.n as u64 {
                    return Vec::new();
                }
                let slot = slot64 as u32;
                let w = block % m.area_blocks;
                let j = m.band_of(w);
                // Virtual group of the lost block (its band decides the
                // rotation; see ParStripMap::virt).
                let g_virt = if slot == m.parity_slot {
                    // Lost a parity block of the group whose band-j parity
                    // disk is `failed_disk`.
                    m.virt(failed_disk, j)
                } else {
                    let d = if slot < m.parity_slot { slot } else { slot - 1 };
                    m.group_of(failed_disk, d, j)
                };
                let pdisk = m.parity_disk_of(g_virt, j);
                let mut peers: Vec<(u32, u64)> = (0..=m.n)
                    .filter(|&k| k != failed_disk)
                    .filter_map(|k| {
                        m.area_of_member(k, g_virt, j)
                            .map(|d| (k, m.data_slot_pub(d) as u64 * m.area_blocks + w))
                    })
                    .collect();
                if pdisk != failed_disk {
                    peers.push((pdisk, m.parity_slot as u64 * m.area_blocks + w));
                }
                peers
            }
        }
    }

    /// Decompose a read under a failed disk.
    pub fn degraded_read_runs(&self, laddr: u64, n: u32, failed_disk: u32) -> DegradedRead {
        let mut out = DegradedRead::default();
        for run in self.read_runs(laddr, n) {
            if run.disk != failed_disk {
                out.direct.push(run);
                continue;
            }
            if let OrgMap::Mirror(_) = self {
                // Whole run redirects to the surviving copy.
                out.direct.push(Run {
                    disk: run.disk ^ 1,
                    ..run
                });
                continue;
            }
            for b in 0..run.nblocks as u64 {
                for (disk, block) in self.peers_of(failed_disk, run.block + b) {
                    super::push_merged(&mut out.reconstruct, disk, block);
                }
            }
        }
        out
    }

    /// Re-plan a write under a failed disk.
    pub fn degraded_write_plan(&self, laddr: u64, n: u32, failed_disk: u32) -> WritePlan {
        let plan = self.write_plan(laddr, n);
        if let OrgMap::Mirror(_) | OrgMap::Base(_) = self {
            // Mirror: drop the failed copy; Base has no redundancy to adapt.
            let stripes = plan
                .stripes
                .into_iter()
                .map(|mut s| {
                    s.data.retain(|r| r.disk != failed_disk);
                    s
                })
                .filter(|s| !s.data.is_empty())
                .collect();
            return WritePlan { stripes };
        }

        let mut stripes = Vec::with_capacity(plan.stripes.len());
        for mut stripe in plan.stripes {
            let parity_failed = stripe.parity.iter().any(|p| p.disk == failed_disk);
            let data_failed: Vec<Run> = stripe
                .data
                .iter()
                .copied()
                .filter(|r| r.disk == failed_disk)
                .collect();
            stripe.data.retain(|r| r.disk != failed_disk);
            stripe.extra_reads.retain(|r| r.disk != failed_disk);

            if parity_failed {
                // No parity to maintain: surviving data writes go out plain.
                stripe.parity.clear();
                stripe.extra_reads.clear();
                stripe.mode = StripeMode::Full;
                if !stripe.data.is_empty() {
                    stripes.push(stripe);
                }
                continue;
            }
            if data_failed.is_empty() {
                stripes.push(stripe);
                continue;
            }
            // A written unit is lost: compute parity from new data plus the
            // current contents of every surviving block at the covered
            // offsets that this request does not overwrite.
            let mut extra = std::mem::take(&mut stripe.extra_reads);
            for run in &data_failed {
                for b in 0..run.nblocks as u64 {
                    let block = run.block + b;
                    for (disk, pblock) in self.peers_of(failed_disk, block) {
                        let is_parity = stripe
                            .parity
                            .iter()
                            .any(|p| p.disk == disk && covers(p, pblock));
                        let written = stripe
                            .data
                            .iter()
                            .any(|d| d.disk == disk && covers(d, pblock));
                        let already = extra.iter().any(|e| e.disk == disk && covers(e, pblock));
                        if !is_parity && !written && !already {
                            super::push_merged(&mut extra, disk, pblock);
                        }
                    }
                }
            }
            // With no survivors left to read (the write covered the rest of
            // the stripe) the parity is computable from new data alone.
            stripe.mode = if extra.is_empty() {
                StripeMode::Full
            } else {
                StripeMode::Reconstruct
            };
            stripe.extra_reads = extra;
            stripes.push(stripe);
        }
        WritePlan { stripes }
    }
}

#[inline]
fn covers(run: &Run, block: u64) -> bool {
    block >= run.block && block < run.block + run.nblocks as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Organization, ParityPlacement};

    fn raid5() -> OrgMap {
        OrgMap::new(Organization::Raid5 { striping_unit: 1 }, 4, 240)
    }

    fn parstrip() -> OrgMap {
        OrgMap::new(
            Organization::ParityStriping {
                placement: ParityPlacement::End,
            },
            4,
            1100,
        )
    }

    #[test]
    fn raid5_peers_cover_the_whole_stripe() {
        let m = raid5();
        // laddr 0 → stripe 0, unit 0 → disk 0, block 0; peers disks 1..4.
        let peers = m.peers_of(0, 0);
        assert_eq!(peers.len(), 4);
        let disks: Vec<u32> = peers.iter().map(|p| p.0).collect();
        assert_eq!(disks, vec![1, 2, 3, 4]);
        assert!(peers.iter().all(|p| p.1 == 0), "same physical offset");
    }

    #[test]
    fn degraded_read_reconstructs_lost_blocks_only() {
        let m = raid5();
        // laddr 0..2 → disks 0 and 1 (stripe 0). Fail disk 0.
        let d = m.degraded_read_runs(0, 2, 0);
        assert_eq!(
            d.direct,
            vec![Run {
                disk: 1,
                block: 0,
                nblocks: 1
            }]
        );
        // Reconstruction reads: disks 1..4 at block 0.
        assert_eq!(d.reconstruct.len(), 4);
        assert!(d.reconstruct.iter().all(|r| r.disk != 0));
    }

    #[test]
    fn degraded_read_on_surviving_disks_is_unchanged() {
        let m = raid5();
        let normal = m.read_runs(5, 1);
        let d = m.degraded_read_runs(5, 1, 0);
        if normal[0].disk != 0 {
            assert_eq!(d.direct, normal);
            assert!(d.reconstruct.is_empty());
        }
    }

    #[test]
    fn mirror_degraded_read_redirects() {
        let m = OrgMap::new(Organization::Mirror, 4, 1000);
        let d = m.degraded_read_runs(500, 2, 0); // primary disk 0 failed
        assert_eq!(
            d.direct,
            vec![Run {
                disk: 1,
                block: 500,
                nblocks: 2
            }]
        );
        assert!(d.reconstruct.is_empty());
    }

    #[test]
    fn write_with_failed_parity_goes_plain() {
        let m = raid5();
        // Stripe 0's parity is on disk 4; fail disk 4 and write laddr 0.
        let plan = m.degraded_write_plan(0, 1, 4);
        assert_eq!(plan.stripes.len(), 1);
        let s = &plan.stripes[0];
        assert!(s.parity.is_empty());
        assert_eq!(s.mode, StripeMode::Full);
        assert_eq!(s.data.len(), 1);
    }

    #[test]
    fn write_to_failed_data_disk_reconstructs_parity() {
        let m = raid5();
        // laddr 0 lives on disk 0 (stripe 0). Fail disk 0.
        let plan = m.degraded_write_plan(0, 1, 0);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Reconstruct);
        assert!(s.data.is_empty(), "the lost unit cannot be written");
        // Surviving unwritten units (disks 1,2,3) must be read; parity
        // (disk 4) written.
        assert_eq!(s.extra_reads.len(), 3);
        assert!(s.extra_reads.iter().all(|r| r.disk != 0 && r.disk != 4));
        assert_eq!(s.parity.len(), 1);
        assert_eq!(s.parity[0].disk, 4);
    }

    #[test]
    fn multiblock_write_mixed_survivors() {
        let m = raid5();
        // laddr 0..3: disks 0,1,2 of stripe 0. Fail disk 1.
        let plan = m.degraded_write_plan(0, 3, 1);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Reconstruct);
        let data_disks: Vec<u32> = s.data.iter().map(|r| r.disk).collect();
        assert_eq!(data_disks, vec![0, 2]);
        // Only disk 3 (the unwritten surviving unit) needs reading.
        assert_eq!(
            s.extra_reads,
            vec![Run {
                disk: 3,
                block: 0,
                nblocks: 1
            }]
        );
    }

    #[test]
    fn parstrip_peers_for_data_and_parity_blocks() {
        let m = parstrip();
        let OrgMap::ParStrip(ps) = &m else {
            unreachable!()
        };
        // Data block: disk 0, area 0 (slot 0) → group 1. Peers: members of
        // group 1 = all disks except 1, minus the failed one (0), plus
        // parity on disk 1.
        let peers = m.peers_of(0, 5);
        assert_eq!(peers.len(), 4);
        let parity_peer = peers.iter().find(|p| p.0 == 1).unwrap();
        assert_eq!(parity_peer.1, ps.parity_slot as u64 * ps.area_blocks + 5);
        // Parity block on disk 2 (group 2): peers are data areas of every
        // other disk.
        let pblock = ps.parity_slot as u64 * ps.area_blocks + 7;
        let peers = m.peers_of(2, pblock);
        assert_eq!(peers.len(), 4);
        assert!(peers.iter().all(|p| p.0 != 2));
        assert!(peers.iter().all(|&(_, b)| b % ps.area_blocks == 7));
    }

    #[test]
    fn rotated_parstrip_peers_cover_the_band_group() {
        use proptest::prelude::*;
        let m = OrgMap::new(
            Organization::ParityStriping {
                placement: ParityPlacement::MiddleRotated { band_blocks: 7 },
            },
            4,
            1100,
        );
        let OrgMap::ParStrip(ps) = &m else {
            unreachable!()
        };
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(0u32..=4, 0u64..(5 * ps.area_blocks)),
                |(failed, block)| {
                    let peers = m.peers_of(failed, block);
                    // Peers never include the failed disk and are distinct.
                    let mut disks = std::collections::HashSet::new();
                    for &(d, _) in &peers {
                        prop_assert!(d != failed);
                        prop_assert!(disks.insert(d));
                    }
                    // N peers either way: N−1 members + parity for a data
                    // block, the N member areas for a lost parity block.
                    prop_assert_eq!(peers.len(), 4);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn base_has_no_peers() {
        let m = OrgMap::new(Organization::Base, 4, 1000);
        assert!(m.peers_of(0, 10).is_empty());
    }

    #[test]
    fn parstrip_sliver_blocks_have_no_peers() {
        // bpd = 1103 with n = 4 → area 220; blocks ≥ 1100 are the unused
        // tail sliver, which belongs to no redundancy group.
        let m = OrgMap::new(
            Organization::ParityStriping {
                placement: ParityPlacement::End,
            },
            4,
            1103,
        );
        assert!(m.peers_of(0, 1100).is_empty());
        assert!(m.peers_of(3, 1102).is_empty());
        // The last tiled block still resolves to a full group.
        assert_eq!(m.peers_of(0, 1099).len(), 4);
    }

    #[test]
    fn peers_round_trip_across_organizations() {
        use proptest::prelude::*;
        let orgs: Vec<(&str, OrgMap, u32)> = vec![
            ("base", OrgMap::new(Organization::Base, 4, 1100), 4),
            ("mirror", OrgMap::new(Organization::Mirror, 4, 1100), 8),
            (
                "raid5",
                OrgMap::new(Organization::Raid5 { striping_unit: 4 }, 4, 1100),
                5,
            ),
            (
                "raid4",
                OrgMap::new(Organization::Raid4 { striping_unit: 4 }, 4, 1100),
                5,
            ),
            (
                "parstrip",
                OrgMap::new(
                    Organization::ParityStriping {
                        placement: ParityPlacement::MiddleRotated { band_blocks: 7 },
                    },
                    4,
                    1100,
                ),
                5,
            ),
        ];
        let norgs = orgs.len();
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(&(0usize..norgs, 0u32..8, 0u64..1100), |(oi, fd, block)| {
                let (name, m, disks) = &orgs[oi];
                let failed = fd % disks;
                // ParStrip's tail sliver is covered by the dedicated test;
                // keep the round-trip inside the tiled region where groups
                // exist.
                let block = if let OrgMap::ParStrip(ps) = m {
                    block % ((ps.n as u64 + 1) * ps.area_blocks)
                } else {
                    block
                };
                let peers = m.peers_of(failed, block);
                let want = match *name {
                    "base" => 0,
                    "mirror" => 1,
                    _ => 4,
                };
                prop_assert_eq!(peers.len(), want, "wrong peer count for {}", name);
                let mut seen = std::collections::HashSet::new();
                for &(d, b) in &peers {
                    prop_assert!(d != failed, "{}: peer on the failed disk", name);
                    prop_assert!(d < *disks, "{}: peer disk out of range", name);
                    prop_assert!(seen.insert(d), "{}: duplicate peer disk", name);
                    // Round-trip: the lost block must be a peer of each of
                    // its peers (they share one redundancy group).
                    let back = m.peers_of(d, b);
                    prop_assert!(
                        back.contains(&(failed, block)),
                        "{}: asymmetric peers ({},{}) -> ({},{})",
                        name,
                        failed,
                        block,
                        d,
                        b
                    );
                }
                Ok(())
            })
            .unwrap();
    }
}
