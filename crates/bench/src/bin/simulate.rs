//! `simulate` — run one configuration from the command line.
//!
//! ```text
//! simulate --org raid5 --n 10 --cache 16
//! simulate --org parstrip --placement end --trace trace1 --scale 0.05
//! simulate --org mirror --speed 2 --sync si
//! simulate --org raid5 --failed 0:3           # degraded mode
//! simulate --org base --trace-file ops.trace  # replay a captured trace
//! ```
//!
//! Prints the report summary plus the per-disk utilization/access table.

use raidsim::{CacheConfig, Organization, ParityPlacement, SimConfig, Simulator, SyncPolicy};
use tracegen::{fmt, transform, SynthSpec, Trace};

struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}"))),
            None => default,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: simulate --org <base|mirror|raid5|raid4|parstrip> [--n N] [--su BLOCKS]\n\
         \t[--placement middle|end|rotated] [--band BLOCKS] [--sync si|rf|rfpr|df|dfpr]\n\
         \t[--cache MB] [--destage MS] [--failed ARRAY:DISK]\n\
         \t[--trace trace1|trace2] [--trace-file PATH] [--scale F] [--speed F] [--seed N]\n\
         \t[--phases] [--sample-ms MS] [--event-log PATH]"
    );
    std::process::exit(2)
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        die("help requested");
    }

    // --- organization ---------------------------------------------------
    let su: u32 = args.parse("--su", 1);
    let placement = match args.get("--placement").unwrap_or("middle") {
        "middle" => ParityPlacement::Middle,
        "end" => ParityPlacement::End,
        "rotated" => ParityPlacement::MiddleRotated {
            band_blocks: args.parse("--band", 256),
        },
        other => die(&format!("unknown placement {other}")),
    };
    let org = match args
        .get("--org")
        .unwrap_or_else(|| die("--org is required"))
    {
        "base" => Organization::Base,
        "mirror" => Organization::Mirror,
        "raid5" => Organization::Raid5 { striping_unit: su },
        "raid4" => Organization::Raid4 { striping_unit: su },
        "parstrip" => Organization::ParityStriping { placement },
        other => die(&format!("unknown organization {other}")),
    };

    // --- config ----------------------------------------------------------
    let mut cfg = SimConfig::with_organization(org);
    cfg.data_disks_per_array = args.parse("--n", 10);
    cfg.sync = match args.get("--sync").unwrap_or("df") {
        "si" => SyncPolicy::SimultaneousIssue,
        "rf" => SyncPolicy::ReadFirst,
        "rfpr" => SyncPolicy::ReadFirstPriority,
        "df" => SyncPolicy::DiskFirst,
        "dfpr" => SyncPolicy::DiskFirstPriority,
        other => die(&format!("unknown sync policy {other}")),
    };
    if let Some(mb) = args.get("--cache") {
        cfg.cache = Some(CacheConfig {
            size_mb: mb.parse().unwrap_or_else(|_| die("bad --cache")),
            destage_period_ms: args.parse("--destage", 1_000),
        });
    }
    cfg.seed = args.parse("--seed", cfg.seed);
    if let Some(f) = args.get("--failed") {
        let (a, d) = f
            .split_once(':')
            .unwrap_or_else(|| die("--failed wants ARRAY:DISK"));
        cfg.failed_disk = Some((
            a.parse().unwrap_or_else(|_| die("bad --failed array")),
            d.parse().unwrap_or_else(|_| die("bad --failed disk")),
        ));
    }
    if let Some(ms) = args.get("--sample-ms") {
        cfg.observability.sample_period_ms =
            Some(ms.parse().unwrap_or_else(|_| die("bad --sample-ms")));
    }
    if let Some(path) = args.get("--event-log") {
        // Fail up front with a clean message rather than mid-run.
        std::fs::File::create(path)
            .unwrap_or_else(|e| die(&format!("cannot create event log {path}: {e}")));
        cfg.observability.event_log = Some(path.into());
    }
    if let Err(e) = cfg.validate() {
        die(&e);
    }

    // --- workload ----------------------------------------------------------
    let scale: f64 = args.parse("--scale", 0.1);
    let speed: f64 = args.parse("--speed", 1.0);
    let trace: Trace = if let Some(path) = args.get("--trace-file") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        fmt::parse_trace(&text).unwrap_or_else(|e| die(&e.to_string()))
    } else {
        let spec = match args.get("--trace").unwrap_or("trace2") {
            "trace1" => SynthSpec::trace1().scaled(scale),
            "trace2" => SynthSpec::trace2().scaled(scale.clamp(f64::MIN_POSITIVE, 1.0)),
            other => die(&format!("unknown trace {other}")),
        };
        spec.generate()
    };
    let trace = if (speed - 1.0).abs() > 1e-9 {
        transform::at_speed(&trace, speed)
    } else {
        trace
    };

    eprintln!(
        "{} on {} requests ({} logical disks, {} arrays, {} physical disks)…",
        org.label(),
        trace.len(),
        trace.n_disks,
        cfg.arrays_for(trace.n_disks),
        cfg.total_disks(trace.n_disks),
    );
    let t0 = std::time::Instant::now();
    let report = Simulator::new(cfg, &trace).run();
    eprintln!("simulated in {:.2?}\n", t0.elapsed());

    println!("{}", report.summary());
    println!(
        "p50 {:.1} ms | p95 {:.1} ms | p99 {:.1} ms | channel util {:.1}%",
        report.quantile_ms(0.5),
        report.quantile_ms(0.95),
        report.quantile_ms(0.99),
        report.channel_utilization.iter().sum::<f64>()
            / report.channel_utilization.len().max(1) as f64
            * 100.0,
    );
    if let Some(cache) = &report.cache {
        println!(
            "cache: read hit {:.1}% | write hit {:.1}% | dirty evictions {} | spool peak {}",
            report.read_hit_ratio() * 100.0,
            report.write_hit_ratio() * 100.0,
            cache.dirty_evictions,
            report.spool_peak,
        );
    }
    println!(
        "disk accesses: total {} | per-disk CV {:.3} | peak/mean {:.2} | max util {:.1}%",
        report.disk_ops,
        report.per_disk_accesses.coefficient_of_variation(),
        report.per_disk_accesses.peak_to_mean(),
        report.max_disk_utilization() * 100.0,
    );
    if args.flag("--phases") {
        for (dir, ph) in [
            ("reads ", &report.phases_reads),
            ("writes", &report.phases_writes),
        ] {
            let parts: Vec<String> = ph
                .means_ms()
                .iter()
                .map(|(label, mean)| format!("{label} {mean:.2}"))
                .collect();
            println!(
                "phases {dir} ({:6.2} ms): {}",
                ph.mean_total_ms(),
                parts.join(" | ")
            );
        }
    }
    if let Some(ts) = &report.timeseries {
        println!(
            "timeseries: {} samples x {} columns | mean qdepth.d0 {:.2} | max util.d0 {:.2}",
            ts.len(),
            ts.width(),
            ts.column_mean("qdepth.d0"),
            ts.column_max("util.d0"),
        );
    }
}
