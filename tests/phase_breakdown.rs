//! The latency-decomposition invariant: for **every** completed request the
//! eight phase components sum *exactly* (to the nanosecond) to the
//! host-observed response time — and turning the observability features on
//! does not perturb the simulated timing at all.

use raidsim::{
    CacheConfig, ObservabilityConfig, Organization, ParityPlacement, SimConfig, Simulator,
};
use tracegen::{SynthSpec, Trace};

fn small_traces() -> [Trace; 2] {
    [
        SynthSpec::trace1().scaled(0.002).generate(),
        SynthSpec::trace2().scaled(0.05).generate(),
    ]
}

fn orgs() -> Vec<Organization> {
    vec![
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ]
}

/// Pull `"key":<integer>` out of a flat JSONL line.
fn field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("missing {key} in {line}"))
        + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
}

const PHASES: [&str; 8] = [
    "admission_ns",
    "channel_ns",
    "disk_queue_ns",
    "destage_interference_ns",
    "seek_ns",
    "rotation_ns",
    "transfer_ns",
    "parity_ns",
];

/// Run with an event log and check every `req_done` record's components
/// against its response time. Returns the number of requests checked.
fn check_exact_sums(mut cfg: SimConfig, trace: &Trace, tag: &str) -> usize {
    let path =
        std::env::temp_dir().join(format!("raidsim-phase-{}-{tag}.jsonl", std::process::id()));
    cfg.observability.event_log = Some(path.clone());
    let report = Simulator::new(cfg, trace).run();
    let log = std::fs::read_to_string(&path).expect("event log written");
    let _ = std::fs::remove_file(&path);

    let mut checked = 0;
    for line in log.lines().filter(|l| l.contains("\"ev\":\"req_done\"")) {
        let resp = field(line, "resp_ns");
        let sum: u64 = PHASES.iter().map(|p| field(line, p)).sum();
        assert_eq!(sum, resp, "{tag}: phases must sum to response: {line}");
        checked += 1;
    }
    assert_eq!(
        checked as u64, report.requests_completed,
        "{tag}: one req_done record per completed request"
    );
    checked
}

#[test]
fn phase_components_sum_exactly_noncached() {
    for (t, trace) in small_traces().iter().enumerate() {
        for org in orgs() {
            let cfg = SimConfig::with_organization(org);
            let n = check_exact_sums(cfg, trace, &format!("t{t}-{}", org.label()));
            assert_eq!(n, trace.len());
        }
    }
}

#[test]
fn phase_components_sum_exactly_cached_and_degraded() {
    let trace = SynthSpec::trace2().scaled(0.05).generate();
    for org in [
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
    ] {
        let mut cfg = SimConfig::with_organization(org);
        cfg.cache = Some(CacheConfig::default());
        check_exact_sums(cfg, &trace, &format!("cached-{}", org.label()));
    }
    let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
    cfg.failed_disk = Some((0, 3));
    check_exact_sums(cfg, &trace, "degraded-RAID5");
}

#[test]
fn phase_means_sum_to_mean_response() {
    let trace = SynthSpec::trace2().scaled(0.1).generate();
    for org in orgs() {
        let cfg = SimConfig::with_organization(org);
        let r = Simulator::new(cfg, &trace).run();
        assert_eq!(
            r.phases_reads.count() + r.phases_writes.count(),
            r.requests_completed
        );
        let err_r = (r.phases_reads.mean_total_ms() - r.mean_read_ms()).abs();
        let err_w = (r.phases_writes.mean_total_ms() - r.mean_write_ms()).abs();
        assert!(
            err_r < 1e-9,
            "{}: read phase means off by {err_r}",
            org.label()
        );
        assert!(
            err_w < 1e-9,
            "{}: write phase means off by {err_w}",
            org.label()
        );
    }
}

#[test]
fn observability_leaves_timing_bit_identical() {
    let trace = SynthSpec::trace2().scaled(0.1).generate();
    for cache in [None, Some(CacheConfig::default())] {
        let mut plain = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
        plain.cache = cache;
        let mut observed = plain.clone();
        observed.observability = ObservabilityConfig::sampled(10);
        observed.observability.event_log = Some(std::env::temp_dir().join(format!(
            "raidsim-phase-bitident-{}-{}.jsonl",
            std::process::id(),
            cache.is_some()
        )));

        let a = Simulator::new(plain, &trace).run();
        let b = Simulator::new(observed.clone(), &trace).run();
        let _ = std::fs::remove_file(observed.observability.event_log.unwrap());

        assert_eq!(
            a.mean_response_ms().to_bits(),
            b.mean_response_ms().to_bits()
        );
        assert_eq!(a.mean_read_ms().to_bits(), b.mean_read_ms().to_bits());
        assert_eq!(a.mean_write_ms().to_bits(), b.mean_write_ms().to_bits());
        assert!(a.timeseries.is_none());

        let ts = b.timeseries.expect("sampler produced a series");
        assert!(!ts.is_empty(), "rows recorded");
        assert!(ts.columns().iter().any(|c| c.starts_with("qdepth.d")));
        assert!(ts.columns().iter().any(|c| c.starts_with("util.d")));
        assert!(ts.columns().iter().any(|c| c.starts_with("chan.a")));
        if cache.is_some() {
            assert!(ts.columns().iter().any(|c| c.starts_with("dirty.a")));
            // Something got dirty at some point under a write workload.
            assert!(ts.column("dirty.a0").unwrap().iter().any(|&v| v > 0.0));
        }
        // Queue depths are nonnegative counts; utilizations are finite.
        for g in 0..4 {
            let col = format!("qdepth.d{g}");
            let vals = ts.column(&col).unwrap();
            assert!(vals.iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
        }
        assert!(ts.column_max("util.d0").is_finite());
    }
}
