// The runner is the sanctioned home for cross-VA machinery: both the
// fleet-boundary and par-safety rules carve out fleet/run.rs.
use std::sync::atomic::AtomicUsize;

pub fn cursor() -> AtomicUsize {
    AtomicUsize::new(0)
}
