//! # bench — reproduction harness for every table and figure of the paper
//!
//! The `figures` binary regenerates each experiment of Section 4:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all
//! cargo run --release -p bench --bin figures -- fig5 fig12
//! ```
//!
//! Experiments run on synthetic re-creations of the paper's two traces
//! (see the `tracegen` crate). Trace 1 is scaled down by default
//! (`RAIDTP_T1_SCALE`, default 0.1 ⇒ ≈336 k requests at the original
//! arrival rate) so the whole suite completes in minutes; Trace 2 runs at
//! full length. Absolute milliseconds therefore differ from the paper —
//! the *shape* (orderings, crossovers, trends) is the reproduction target,
//! and `EXPERIMENTS.md` records both sides per experiment.

pub mod experiments;
pub mod perf;

use tracegen::{SynthSpec, Trace};

/// The two workloads, generated once and shared by every experiment.
pub struct Workloads {
    pub trace1: Trace,
    pub trace2: Trace,
    /// Scale factor applied to Trace 1 (Trace 2 is always full length).
    pub t1_scale: f64,
}

impl Workloads {
    /// Generate both traces. Trace 1's scale comes from `RAIDTP_T1_SCALE`
    /// (0 < scale ≤ 1), defaulting to 0.1.
    ///
    /// A set-but-invalid `RAIDTP_T1_SCALE` is an error, not a silent
    /// fallback: simulating at an unintended scale corrupts every number
    /// the harness then prints.
    pub fn load() -> Result<Workloads, String> {
        let t1_scale = Self::t1_scale_from_env(std::env::var("RAIDTP_T1_SCALE").ok().as_deref())?;
        Ok(Workloads {
            trace1: SynthSpec::trace1().scaled(t1_scale).generate(),
            trace2: SynthSpec::trace2().generate(),
            t1_scale,
        })
    }

    /// Validate an optional `RAIDTP_T1_SCALE` value (split out for tests).
    fn t1_scale_from_env(var: Option<&str>) -> Result<f64, String> {
        match var {
            None => Ok(0.1),
            Some(v) => match v.parse::<f64>() {
                Ok(s) if s > 0.0 && s <= 1.0 => Ok(s),
                Ok(s) => Err(format!(
                    "RAIDTP_T1_SCALE={s} is out of range: need 0 < scale <= 1"
                )),
                Err(_) => Err(format!(
                    "RAIDTP_T1_SCALE=`{v}` is not a number (need 0 < scale <= 1)"
                )),
            },
        }
    }

    /// Smaller workloads for unit tests of the harness itself.
    pub fn tiny() -> Workloads {
        Workloads {
            trace1: SynthSpec::trace1().scaled(0.002).generate(),
            trace2: SynthSpec::trace2().scaled(0.05).generate(),
            t1_scale: 0.002,
        }
    }

    pub fn named(&self) -> [(&'static str, &Trace); 2] {
        [("Trace 1", &self.trace1), ("Trace 2", &self.trace2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workloads_generate() {
        let w = Workloads::tiny();
        assert!(!w.trace1.is_empty());
        assert!(!w.trace2.is_empty());
        assert_eq!(w.named()[0].0, "Trace 1");
    }

    #[test]
    fn t1_scale_validation() {
        assert_eq!(Workloads::t1_scale_from_env(None), Ok(0.1));
        assert_eq!(Workloads::t1_scale_from_env(Some("0.25")), Ok(0.25));
        assert_eq!(Workloads::t1_scale_from_env(Some("1")), Ok(1.0));
        for bad in ["0", "-0.5", "1.5", "nan", "ten", ""] {
            assert!(
                Workloads::t1_scale_from_env(Some(bad)).is_err(),
                "`{bad}` must be rejected, not silently replaced by 0.1"
            );
        }
    }
}
