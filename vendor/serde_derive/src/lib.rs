//! No-op stand-ins for serde's derive macros.
//!
//! The build environment has no network access, so the workspace carries
//! this stub instead of the real `serde_derive`. The companion `serde` stub
//! blanket-implements the marker traits, so the derives have nothing to
//! emit; they exist only so `#[derive(Serialize, Deserialize)]` (and any
//! `#[serde(...)]` attributes) keep compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
