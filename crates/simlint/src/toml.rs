//! A dependency-free parser for the TOML subset simlint's data files use.
//!
//! `simlint.toml` (workspace-analysis configuration) and
//! `simlint.baseline.toml` (the committed waiver file) need exactly:
//! comments, `[table]` / `[nested.table]` headers, `[[array-of-tables]]`
//! headers, and `key = value` pairs where a value is a basic string, an
//! array of basic strings (single- or multi-line, trailing comma
//! allowed), an integer, or a boolean. Nothing else is accepted — an
//! unsupported construct is a hard parse error, never a silent skip, so
//! a typo in the rule configuration cannot quietly turn a rule off.
//!
//! Basic-string escapes follow TOML: `\"`, `\\`, `\n`, `\r`, `\t`,
//! `\u{XXXX}` is not TOML — `\uXXXX` (exactly four hex digits) is. The
//! same escaping is used when *writing* the baseline, so waiver snippets
//! containing quotes, backslashes, or control characters round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    /// Array of basic strings (the only array shape the data files need).
    Arr(Vec<String>),
    Table(Table),
    /// `[[name]]` array-of-tables.
    TableArr(Vec<Table>),
}

pub type Table = BTreeMap<String, Value>;

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[String]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// Fetch a nested table by dotted path, e.g. `get_table(&root, "layer-boundary.allow")`.
pub fn get_table<'a>(root: &'a Table, path: &str) -> Option<&'a Table> {
    let mut cur = root;
    for seg in path.split('.') {
        cur = cur.get(seg)?.as_table()?;
    }
    Some(cur)
}

/// Fetch a string-array leaf by dotted path; `None` when absent.
pub fn get_arr<'a>(root: &'a Table, path: &str) -> Option<&'a [String]> {
    let (dir, leaf) = match path.rsplit_once('.') {
        Some((d, l)) => (get_table(root, d)?, l),
        None => (root, path),
    };
    dir.get(leaf)?.as_arr()
}

pub fn parse(src: &str) -> Result<Table, String> {
    let mut root = Table::new();
    // Where `key = value` lines currently land: a path into `root`.
    let mut cursor: Vec<String> = Vec::new();
    // For array-of-tables: whether the cursor tail addresses the *last*
    // element of a TableArr.
    let mut in_table_arr = false;

    let lines: Vec<&str> = src.lines().collect();
    let mut ln = 0;
    while ln < lines.len() {
        let raw = lines[ln];
        let start = ln;
        ln += 1;
        let line = strip_comment(raw).trim();
        let err = |m: &str| format!("line {}: {m}", start + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let name = h
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[header]]"))?
                .trim();
            if name.is_empty() || name.contains('.') {
                return Err(err("array-of-tables headers must be a single bare name"));
            }
            let entry = root
                .entry(name.to_string())
                .or_insert_with(|| Value::TableArr(Vec::new()));
            match entry {
                Value::TableArr(v) => v.push(Table::new()),
                _ => return Err(err("header redefines a non-array key")),
            }
            cursor = vec![name.to_string()];
            in_table_arr = true;
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let name = h
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [header]"))?
                .trim();
            if name.is_empty() {
                return Err(err("empty table header"));
            }
            cursor = name.split('.').map(|s| s.trim().to_string()).collect();
            in_table_arr = false;
            // Materialize the path eagerly so empty tables still exist.
            ensure_table(&mut root, &cursor, false).map_err(|m| err(&m))?;
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(err("empty key"));
        }
        // A `key = [` array may span lines: accumulate until the bracket
        // closes outside a string.
        let mut val_src = val.trim().to_string();
        if val_src.starts_with('[') {
            while !array_closed(&val_src) && ln < lines.len() {
                val_src.push(' ');
                val_src.push_str(strip_comment(lines[ln]).trim());
                ln += 1;
            }
        }
        let val = parse_value(&val_src).map_err(|m| err(&m))?;
        let target = ensure_table(&mut root, &cursor, in_table_arr).map_err(|m| err(&m))?;
        if target.insert(key.to_string(), val).is_some() {
            return Err(err(&format!("duplicate key `{key}`")));
        }
    }
    Ok(root)
}

/// Walk (and create) the table addressed by `path`; with `table_arr`, the
/// first path segment addresses the last element of a `[[…]]` array.
fn ensure_table<'a>(
    root: &'a mut Table,
    path: &[String],
    table_arr: bool,
) -> Result<&'a mut Table, String> {
    let mut cur = root;
    for (k, seg) in path.iter().enumerate() {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::TableArr(v) if table_arr && k == 0 => {
                v.last_mut().ok_or("empty array-of-tables")?
            }
            _ => return Err(format!("`{seg}` is not a table")),
        };
    }
    Ok(cur)
}

/// Whether an accumulated array literal contains its closing `]` outside
/// any basic string.
fn array_closed(s: &str) -> bool {
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

/// Strip a `#` comment, respecting `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s.starts_with('"') {
        let (v, rest) = parse_basic_string(s)?;
        if !rest.trim().is_empty() {
            return Err("trailing characters after string".into());
        }
        return Ok(Value::Str(v));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("unterminated array")?;
        let mut out = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            if !rest.starts_with('"') {
                return Err("arrays may contain only strings".into());
            }
            let (v, tail) = parse_basic_string(rest)?;
            out.push(v);
            rest = tail.trim_start();
            match rest.strip_prefix(',') {
                Some(t) => rest = t.trim_start(),
                None if rest.is_empty() => {}
                None => return Err("expected `,` between array elements".into()),
            }
        }
        return Ok(Value::Arr(out));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{s}`"))
}

/// Parse one `"basic string"` at the start of `s`; returns (value, rest).
fn parse_basic_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err("expected `\"`".into()),
    }
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = s.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    // Skip the four hex digits.
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                _ => return Err("unsupported escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// Escape a string for emission as a TOML basic string (used when writing
/// the baseline, so snippets with quotes/backslashes/control chars
/// round-trip).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let t = parse(
            "# comment\ntop = \"v\"\n[a]\nx = 3\nflag = true\n[a.b]\nlist = [\"p\", \"q\"]\n",
        )
        .unwrap();
        assert_eq!(t["top"].as_str(), Some("v"));
        assert_eq!(get_table(&t, "a").unwrap()["x"], Value::Int(3));
        assert_eq!(get_table(&t, "a").unwrap()["flag"], Value::Bool(true));
        assert_eq!(
            get_arr(&t, "a.b.list").unwrap(),
            ["p".to_string(), "q".to_string()]
        );
    }

    #[test]
    fn parses_array_of_tables() {
        let t = parse("[[w]]\nrule = \"r1\"\n[[w]]\nrule = \"r2\"\n").unwrap();
        match &t["w"] {
            Value::TableArr(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0]["rule"].as_str(), Some("r1"));
                assert_eq!(v[1]["rule"].as_str(), Some("r2"));
            }
            other => panic!("expected TableArr, got {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "tab\there\nnewline",
            "control\u{1}char # not a comment",
        ] {
            let enc = format!("k = {}\n", escape(s));
            let t = parse(&enc).unwrap();
            assert_eq!(t["k"].as_str(), Some(s), "round-trip failed for {s:?}");
        }
    }

    #[test]
    fn multiline_arrays_with_trailing_commas_and_comments() {
        let t = parse(
            "list = [\n    \"a\", # per-element comment\n    \"b ] not a close\",\n    \"c\",\n]\n\
             after = 1\n",
        )
        .unwrap();
        assert_eq!(
            get_arr(&t, "list").unwrap(),
            [
                "a".to_string(),
                "b ] not a close".to_string(),
                "c".to_string()
            ]
        );
        assert_eq!(t["after"], Value::Int(1));
        assert!(parse("list = [\n  \"a\",\n").is_err(), "unterminated array");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let t = parse("k = \"a # b\" # real comment\n").unwrap();
        assert_eq!(t["k"].as_str(), Some("a # b"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("key\n").is_err());
        assert!(parse("[unclosed\n").is_err());
        assert!(parse("k = [1, 2]\n").is_err(), "non-string arrays rejected");
        assert!(parse("k = \"unterminated\n").is_err());
        assert!(parse("k = 1\nk = 2\n").is_err(), "duplicate keys rejected");
    }
}
