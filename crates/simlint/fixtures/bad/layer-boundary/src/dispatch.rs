pub fn enqueue_op(s: &mut Sim) {
    s.queue_depth = s.queue_depth.saturating_add(1);
}

pub fn on_disk_done(s: &mut Sim) {
    admit(s);
}
