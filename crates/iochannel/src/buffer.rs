//! Track-buffer occupancy accounting.

/// Counting pool of controller track buffers (five per attached disk,
/// Section 3.4).
///
/// The pool itself is passive: the simulator calls [`BufferPool::try_acquire`]
/// when admitting an operation that needs staging space and [`release`] when
/// the operation's data has fully drained; operations that find the pool
/// exhausted wait in the controller's admission queue.
///
/// [`release`]: BufferPool::release
#[derive(Clone, Debug)]
pub struct BufferPool {
    capacity: u32,
    in_use: u32,
    peak: u32,
    acquisitions: u64,
    exhaustions: u64,
}

impl BufferPool {
    pub fn new(capacity: u32) -> BufferPool {
        BufferPool {
            capacity,
            in_use: 0,
            peak: 0,
            acquisitions: 0,
            exhaustions: 0,
        }
    }

    /// Conventional sizing: five track buffers per disk in the array.
    pub fn per_disk(disks: u32) -> BufferPool {
        BufferPool::new(5 * disks)
    }

    /// Acquire `n` buffers if available. All-or-nothing.
    pub fn try_acquire(&mut self, n: u32) -> bool {
        if self.in_use + n <= self.capacity {
            self.in_use += n;
            self.peak = self.peak.max(self.in_use);
            self.acquisitions += n as u64;
            true
        } else {
            self.exhaustions += 1;
            false
        }
    }

    /// Return `n` buffers to the pool.
    pub fn release(&mut self, n: u32) {
        debug_assert!(n <= self.in_use, "releasing more buffers than held");
        self.in_use -= n.min(self.in_use);
    }

    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    #[inline]
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    #[inline]
    pub fn available(&self) -> u32 {
        self.capacity - self.in_use
    }

    /// High-water mark of concurrent occupancy.
    #[inline]
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Number of failed all-or-nothing acquisitions (admission stalls).
    #[inline]
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_five_per_disk() {
        assert_eq!(BufferPool::per_disk(11).capacity(), 55);
    }

    #[test]
    fn acquire_release_cycle() {
        let mut p = BufferPool::new(3);
        assert!(p.try_acquire(2));
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.available(), 1);
        assert!(p.try_acquire(1));
        assert!(!p.try_acquire(1), "pool exhausted");
        assert_eq!(p.exhaustions(), 1);
        p.release(3);
        assert_eq!(p.in_use(), 0);
        assert!(p.try_acquire(3));
    }

    #[test]
    fn all_or_nothing_acquisition() {
        let mut p = BufferPool::new(4);
        assert!(p.try_acquire(3));
        assert!(!p.try_acquire(2), "partial grants are not allowed");
        assert_eq!(p.in_use(), 3, "failed acquire leaves occupancy unchanged");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = BufferPool::new(10);
        p.try_acquire(4);
        p.release(2);
        p.try_acquire(1);
        assert_eq!(p.peak(), 4);
        p.try_acquire(7);
        assert_eq!(p.peak(), 10);
    }
}
