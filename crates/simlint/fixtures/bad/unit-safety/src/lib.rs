pub fn eta(service_ns: u64, queued_blocks: u64) -> u64 {
    service_ns + queued_blocks
}

pub fn extend(mut deadline_ms: u64, stripe_count: u64) -> u64 {
    deadline_ms += stripe_count;
    deadline_ms
}
