//! Static disk geometry and derived timing constants.

use serde::{Deserialize, Serialize};
use simkit::time::NS_PER_SEC;

/// Physical block number on one disk, in units of the logical block size
/// (4 KB by default), counted from cylinder 0 outward.
pub type BlockNo = u64;

/// Cylinder index, 0-based from the outermost cylinder.
pub type Cylinder = u32;

/// Geometry of one drive plus the logical block size used by the I/O
/// subsystem, with all derived timing constants precomputed in nanoseconds.
///
/// Defaults reproduce Table 1 of the paper:
/// 5400 rpm, 11.2 ms average / 28 ms maximal seek, 1260 tracks per surface,
/// 48 sectors of 512 bytes per track, 15 platters (30 surfaces), 4 KB blocks.
/// Total capacity: 1260 × 30 × 48 × 512 B ≈ 0.93 GB, the paper's "about
/// 0.9 GByte" per disk.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskGeometry {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Cylinders per surface ("tracks per platter" in Table 1).
    pub cylinders: u32,
    /// Sectors per track.
    pub sectors_per_track: u32,
    /// Bytes per sector.
    pub bytes_per_sector: u32,
    /// Recording surfaces (two per platter).
    pub surfaces: u32,
    /// Logical block size in bytes (the unit of all I/O requests).
    pub block_bytes: u32,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        DiskGeometry {
            rpm: 5400,
            cylinders: 1260,
            sectors_per_track: 48,
            bytes_per_sector: 512,
            surfaces: 30,
            block_bytes: 4096,
        }
    }
}

impl DiskGeometry {
    /// One full revolution, in nanoseconds (11.11 ms at 5400 rpm).
    #[inline]
    pub fn rotation_ns(&self) -> u64 {
        60 * NS_PER_SEC / self.rpm as u64
    }

    /// Sectors occupied by one logical block.
    #[inline]
    pub fn sectors_per_block(&self) -> u32 {
        debug_assert_eq!(self.block_bytes % self.bytes_per_sector, 0);
        self.block_bytes / self.bytes_per_sector
    }

    /// Logical blocks per track.
    #[inline]
    pub fn blocks_per_track(&self) -> u32 {
        self.sectors_per_track / self.sectors_per_block()
    }

    /// Logical blocks per cylinder (across all surfaces).
    #[inline]
    pub fn blocks_per_cylinder(&self) -> u64 {
        self.blocks_per_track() as u64 * self.surfaces as u64
    }

    /// Total logical blocks on the disk.
    #[inline]
    pub fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_cylinder() * self.cylinders as u64
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks_per_disk() * self.block_bytes as u64
    }

    /// Media transfer time for one logical block: the fraction of a
    /// revolution its sectors occupy (1.85 ms for 8 of 48 sectors at
    /// 5400 rpm).
    #[inline]
    pub fn block_transfer_ns(&self) -> u64 {
        self.rotation_ns() * self.sectors_per_block() as u64 / self.sectors_per_track as u64
    }

    /// Cylinder holding a physical block.
    #[inline]
    pub fn cylinder_of(&self, block: BlockNo) -> Cylinder {
        debug_assert!(block < self.blocks_per_disk());
        (block / self.blocks_per_cylinder()) as Cylinder
    }

    /// Angular position of the first sector of a block, as a sector index
    /// within the track (0 ≤ result < `sectors_per_track`).
    ///
    /// Blocks are laid out serially around each track; surfaces within a
    /// cylinder share the same angular origin.
    #[inline]
    pub fn start_sector_of(&self, block: BlockNo) -> u32 {
        let in_cyl = (block % self.blocks_per_cylinder()) as u32;
        (in_cyl % self.blocks_per_track()) * self.sectors_per_block()
    }

    /// Time for the platter to rotate by `sectors` sector positions.
    #[inline]
    pub fn sectors_to_ns(&self, sectors: u64) -> u64 {
        self.rotation_ns() * sectors / self.sectors_per_track as u64
    }

    /// Sanity-check invariants a hand-built geometry must satisfy.
    pub fn validate(&self) -> Result<(), String> {
        if self.rpm == 0 || self.cylinders == 0 || self.surfaces == 0 {
            return Err("rpm, cylinders and surfaces must be nonzero".into());
        }
        if !self.block_bytes.is_multiple_of(self.bytes_per_sector) {
            return Err("block size must be a whole number of sectors".into());
        }
        if !self
            .sectors_per_track
            .is_multiple_of(self.sectors_per_block())
        {
            return Err("a track must hold a whole number of blocks".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_derived_constants() {
        let g = DiskGeometry::default();
        g.validate().unwrap();
        // 60s / 5400rpm = 11.111… ms per revolution.
        assert_eq!(g.rotation_ns(), 11_111_111);
        assert_eq!(g.sectors_per_block(), 8);
        assert_eq!(g.blocks_per_track(), 6);
        assert_eq!(g.blocks_per_cylinder(), 180);
        assert_eq!(g.blocks_per_disk(), 226_800);
        // ≈ 0.93 GB, the paper's "about 0.9 GByte".
        assert_eq!(g.capacity_bytes(), 928_972_800);
        // 8/48 of a revolution ≈ 1.85 ms.
        assert_eq!(g.block_transfer_ns(), 1_851_851);
    }

    #[test]
    fn block_to_cylinder_mapping() {
        let g = DiskGeometry::default();
        assert_eq!(g.cylinder_of(0), 0);
        assert_eq!(g.cylinder_of(179), 0);
        assert_eq!(g.cylinder_of(180), 1);
        assert_eq!(g.cylinder_of(226_799), 1259);
    }

    #[test]
    fn start_sector_wraps_per_track() {
        let g = DiskGeometry::default();
        assert_eq!(g.start_sector_of(0), 0);
        assert_eq!(g.start_sector_of(1), 8);
        assert_eq!(g.start_sector_of(5), 40);
        // Next track on the next surface restarts at sector 0.
        assert_eq!(g.start_sector_of(6), 0);
        // Next cylinder likewise.
        assert_eq!(g.start_sector_of(180), 0);
    }

    #[test]
    fn sectors_to_ns_full_revolution() {
        let g = DiskGeometry::default();
        assert_eq!(g.sectors_to_ns(48), g.rotation_ns());
        assert_eq!(g.sectors_to_ns(0), 0);
        assert_eq!(g.sectors_to_ns(24), g.rotation_ns() / 2);
    }

    #[test]
    fn validate_rejects_broken_geometry() {
        let mut g = DiskGeometry {
            block_bytes: 1000,
            ..DiskGeometry::default()
        };
        assert!(g.validate().is_err());
        g.block_bytes = 4096;
        g.sectors_per_track = 20; // 20 % 8 != 0
        assert!(g.validate().is_err());
        g.sectors_per_track = 48;
        g.rpm = 0;
        assert!(g.validate().is_err());
    }
}
