//! One function per table/figure of the paper's evaluation (Section 4).
//!
//! Every function prints the series the paper plots as an aligned text
//! table and returns nothing; the `figures` binary dispatches on experiment
//! ids. All runs are deterministic.

use crate::Workloads;
use diskmodel::{DiskGeometry, SeekCurve};
use raidsim::{
    run_fleet, CacheConfig, Discipline, DiskFailure, FaultConfig, FleetConfig, Organization,
    ParityPlacement, SimConfig, SimReport, Simulator, SparingMode, SyncPolicy,
};
use raidtp_stats::Table;
use tracegen::{transform, Trace, TraceStats};

/// The four primary organizations of Figure 5 / Table 3.
fn main_orgs() -> [Organization; 4] {
    [
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ]
}

fn cfg(org: Organization, n: u32, cache_mb: Option<u64>) -> SimConfig {
    let mut c = SimConfig::with_organization(org);
    c.data_disks_per_array = n;
    c.cache = cache_mb.map(|size_mb| CacheConfig {
        size_mb,
        ..CacheConfig::default()
    });
    c
}

fn run(config: SimConfig, trace: &Trace) -> SimReport {
    Simulator::new(config, trace).run()
}

fn ms(v: f64) -> String {
    format!("{v:.2}")
}

fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Table 1: the disk/channel model, including the calibrated seek curve the
/// paper leaves implicit.
pub fn table1(_w: &Workloads) {
    println!("== Table 1: disk and channel parameters (model constants) ==\n");
    let g = DiskGeometry::default();
    let s = SeekCurve::table1();
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&["Rotation speed".into(), "5400 rpm".into()]);
    t.row(&["Average seek".into(), "11.2 ms".into()]);
    t.row(&["Maximal seek".into(), "28 ms".into()]);
    t.row(&["Tracks per platter".into(), g.cylinders.to_string()]);
    t.row(&["Sectors per track".into(), g.sectors_per_track.to_string()]);
    t.row(&["Bytes per sector".into(), g.bytes_per_sector.to_string()]);
    t.row(&["Number of platters".into(), (g.surfaces / 2).to_string()]);
    t.row(&["Channel transfer rate".into(), "10 MB/s".into()]);
    t.row(&[
        "Capacity (derived)".into(),
        format!("{:.2} GB", g.capacity_bytes() as f64 / 1e9),
    ]);
    t.row(&[
        "Rotation period (derived)".into(),
        format!("{:.3} ms", g.rotation_ns() as f64 / 1e6),
    ]);
    t.row(&[
        "4 KB media transfer (derived)".into(),
        format!("{:.3} ms", g.block_transfer_ns() as f64 / 1e6),
    ]);
    t.row(&[
        "Seek curve a√(x−1)+b(x−1)+c".into(),
        format!("a={:.4}, b={:.5}, c={:.1} (ms)", s.a, s.b, s.c),
    ]);
    print!("{}", t.render());
    println!();
}

/// Table 2: characteristics of the (synthetic) traces, with the paper's
/// originals alongside.
pub fn table2(w: &Workloads) {
    println!(
        "== Table 2: trace characteristics (synthetic; Trace 1 at scale {}) ==\n",
        w.t1_scale
    );
    let s1 = TraceStats::of(&w.trace1);
    let s2 = TraceStats::of(&w.trace2);
    let mut t = Table::new(&["metric", "Trace 1", "paper T1", "Trace 2", "paper T2"]);
    let fmt_dur = |secs: f64| format!("{:.0}min", secs / 60.0);
    t.row(&[
        "Duration".into(),
        fmt_dur(s1.duration_secs),
        "183min".into(),
        fmt_dur(s2.duration_secs),
        "100min".into(),
    ]);
    t.row(&[
        "# of disks".into(),
        s1.n_disks.to_string(),
        "130".into(),
        s2.n_disks.to_string(),
        "10".into(),
    ]);
    t.row(&[
        "# of I/O accesses".into(),
        s1.io_accesses.to_string(),
        "3362505".into(),
        s2.io_accesses.to_string(),
        "69539".into(),
    ]);
    t.row(&[
        "# blocks transferred".into(),
        s1.blocks_transferred.to_string(),
        "4467719".into(),
        s2.blocks_transferred.to_string(),
        "143105".into(),
    ]);
    t.row(&[
        "single-block reads".into(),
        s1.single_block_reads.to_string(),
        "2977914".into(),
        s2.single_block_reads.to_string(),
        "48339".into(),
    ]);
    t.row(&[
        "single-block writes".into(),
        s1.single_block_writes.to_string(),
        "312961".into(),
        s2.single_block_writes.to_string(),
        "17557".into(),
    ]);
    t.row(&[
        "multiblock reads".into(),
        s1.multiblock_reads.to_string(),
        "47324".into(),
        s2.multiblock_reads.to_string(),
        "2029".into(),
    ]);
    t.row(&[
        "multiblock writes".into(),
        s1.multiblock_writes.to_string(),
        "24306".into(),
        s2.multiblock_writes.to_string(),
        "2098".into(),
    ]);
    t.row(&[
        "write fraction %".into(),
        pct(s1.write_fraction()),
        "10.0".into(),
        pct(s2.write_fraction()),
        "28.3".into(),
    ]);
    t.row(&[
        "disk-skew CV".into(),
        format!("{:.2}", s1.disk_skew_cv()),
        "moderate".into(),
        format!("{:.2}", s2.disk_skew_cv()),
        "high".into(),
    ]);
    print!("{}", t.render());
    println!();
}

/// Figure 4: synchronization policies × array size, RAID5 and Parity
/// Striping, both traces. A Trace 2 @2× section is added because the SI
/// pathology — the parity disk held spinning while a congested data disk
/// finishes its read — only becomes visible once disks queue.
pub fn fig4(w: &Workloads) {
    println!("== Figure 4: response time (ms) by synchronization method vs N ==\n");
    let policies = [
        SyncPolicy::SimultaneousIssue,
        SyncPolicy::ReadFirst,
        SyncPolicy::ReadFirstPriority,
        SyncPolicy::DiskFirst,
        SyncPolicy::DiskFirstPriority,
    ];
    let trace2_2x = transform::at_speed(&w.trace2, 2.0);
    let extended: [(&str, &Trace); 3] = [
        ("Trace 1", &w.trace1),
        ("Trace 2", &w.trace2),
        ("Trace 2 @2x speed", &trace2_2x),
    ];
    for (tname, trace) in extended {
        for org in [
            Organization::Raid5 { striping_unit: 1 },
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
        ] {
            println!("-- {tname}, {} --", org.label());
            let mut t = Table::new(&["N", "SI", "RF", "RF/PR", "DF", "DF/PR"]);
            for n in [5u32, 10, 15, 20] {
                let mut row = vec![n.to_string()];
                for p in policies {
                    let mut c = cfg(org, n, None);
                    c.sync = p;
                    row.push(ms(run(c, trace).mean_response_ms()));
                }
                t.row(&row);
            }
            print!("{}", t.render());
            println!();
        }
    }
}

/// Figure 5: non-cached response time vs array size for all four
/// organizations.
pub fn fig5(w: &Workloads) {
    println!("== Figure 5: response time (ms) vs array size, non-cached ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["N", "Base", "Mirror", "RAID5", "ParStrip"]);
        for n in [5u32, 10, 15, 20] {
            let mut row = vec![n.to_string()];
            for org in main_orgs() {
                row.push(ms(run(cfg(org, n, None), trace).mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figures 6 & 7: per-disk access distribution, Base vs RAID5, Trace 1.
pub fn fig6_7(w: &Workloads) {
    println!("== Figures 6–7: distribution of accesses to disks (Trace 1) ==\n");
    for org in [Organization::Base, Organization::Raid5 { striping_unit: 1 }] {
        let r = run(cfg(org, 10, None), &w.trace1);
        let c = &r.per_disk_accesses;
        println!(
            "-- {} : {} disks, CV {:.3}, peak/mean {:.2} --",
            org.label(),
            c.counts().len(),
            c.coefficient_of_variation(),
            c.peak_to_mean()
        );
        for (i, chunk) in c.counts().chunks(13).enumerate() {
            let cells: Vec<String> = chunk.iter().map(|x| format!("{x:6}")).collect();
            println!("  disks {:3}..: {}", i * 13, cells.join(" "));
        }
        println!();
    }
}

/// Figure 8: non-cached RAID5 response time vs striping unit.
pub fn fig8(w: &Workloads) {
    println!("== Figure 8: RAID5 response time (ms) vs striping unit, non-cached ==\n");
    striping_sweep(w, None, false);
}

fn striping_sweep(w: &Workloads, cache_mb: Option<u64>, include_raid4: bool) {
    let units = [1u32, 2, 4, 8, 16, 32, 64];
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut headers = vec!["striping unit (blocks)", "RAID5"];
        if include_raid4 {
            headers.push("RAID4");
        }
        let mut t = Table::new(&headers);
        for su in units {
            let mut row = vec![su.to_string()];
            row.push(ms(run(
                cfg(Organization::Raid5 { striping_unit: su }, 10, cache_mb),
                trace,
            )
            .mean_response_ms()));
            if include_raid4 {
                row.push(ms(run(
                    cfg(Organization::Raid4 { striping_unit: su }, 10, cache_mb),
                    trace,
                )
                .mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 9: Parity Striping parity placement (middle vs end cylinders)
/// vs array size.
pub fn fig9(w: &Workloads) {
    println!("== Figure 9: Parity Striping response time (ms) by parity placement ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["N", "middle", "end"]);
        for n in [5u32, 10, 15, 20] {
            let mut row = vec![n.to_string()];
            for placement in [ParityPlacement::Middle, ParityPlacement::End] {
                row.push(ms(run(
                    cfg(Organization::ParityStriping { placement }, n, None),
                    trace,
                )
                .mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 10: non-cached response time vs trace speed.
pub fn fig10(w: &Workloads) {
    println!("== Figure 10: response time (ms) vs trace speed, non-cached ==\n");
    speed_sweep(w, &main_orgs(), None);
}

fn speed_sweep(w: &Workloads, orgs: &[Organization], cache_mb: Option<u64>) {
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut headers: Vec<&str> = vec!["speed"];
        headers.extend(orgs.iter().map(|o| o.label()));
        let mut t = Table::new(&headers);
        for speed in [0.5f64, 1.0, 2.0] {
            let scaled = transform::at_speed(trace, speed);
            let mut row = vec![format!("{speed}")];
            for &org in orgs {
                row.push(ms(run(cfg(org, 10, cache_mb), &scaled).mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 11: read/write hit ratios vs cache size, parity vs non-parity
/// organizations.
pub fn fig11(w: &Workloads) {
    println!("== Figure 11: hit ratios (%) vs cache size ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&[
            "cache MB",
            "read Base",
            "read RAID5",
            "write Base",
            "write RAID5",
        ]);
        for mb in [8u64, 16, 32, 64, 128, 256] {
            let base = run(cfg(Organization::Base, 10, Some(mb)), trace);
            let raid = run(
                cfg(Organization::Raid5 { striping_unit: 1 }, 10, Some(mb)),
                trace,
            );
            t.row(&[
                mb.to_string(),
                pct(base.read_hit_ratio()),
                pct(raid.read_hit_ratio()),
                pct(base.write_hit_ratio()),
                pct(raid.write_hit_ratio()),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 12: cached response time vs cache size for all organizations.
pub fn fig12(w: &Workloads) {
    println!("== Figure 12: response time (ms) vs cache size, cached ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["cache MB", "Base", "Mirror", "RAID5", "ParStrip"]);
        for mb in [8u64, 16, 32, 64, 128, 256] {
            let mut row = vec![mb.to_string()];
            for org in main_orgs() {
                row.push(ms(run(cfg(org, 10, Some(mb)), trace).mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 13: cached response time vs array size at constant total cache
/// (N=5 ⇒ 8 MB/array, N=10 ⇒ 16 MB, N=15 ⇒ 24 MB).
pub fn fig13(w: &Workloads) {
    println!("== Figure 13: response time (ms) vs array size, cached (cache ∝ N) ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["N (cache MB)", "Base", "Mirror", "RAID5", "ParStrip"]);
        for (n, mb) in [(5u32, 8u64), (10, 16), (15, 24)] {
            let mut row = vec![format!("{n} ({mb})")];
            for org in main_orgs() {
                row.push(ms(run(cfg(org, n, Some(mb)), trace).mean_response_ms()));
            }
            t.row(&row);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 14: cached RAID5 response time vs striping unit.
pub fn fig14(w: &Workloads) {
    println!("== Figure 14: cached RAID5 response time (ms) vs striping unit ==\n");
    striping_sweep(w, Some(16), false);
}

/// Figure 15: RAID5 (data caching) vs RAID4 (data + parity caching) hit
/// ratios vs cache size.
pub fn fig15(w: &Workloads) {
    println!("== Figure 15: hit ratios (%) vs cache size, RAID5 vs RAID4 ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&[
            "cache MB",
            "read RAID5",
            "read RAID4",
            "write RAID5",
            "write RAID4",
        ]);
        for mb in [8u64, 16, 32, 64, 128, 256] {
            let r5 = run(
                cfg(Organization::Raid5 { striping_unit: 1 }, 10, Some(mb)),
                trace,
            );
            let r4 = run(
                cfg(Organization::Raid4 { striping_unit: 1 }, 10, Some(mb)),
                trace,
            );
            t.row(&[
                mb.to_string(),
                pct(r5.read_hit_ratio()),
                pct(r4.read_hit_ratio()),
                pct(r5.write_hit_ratio()),
                pct(r4.write_hit_ratio()),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 16: RAID5 vs RAID4 response time vs cache size.
pub fn fig16(w: &Workloads) {
    println!("== Figure 16: response time (ms) vs cache size, RAID5 vs RAID4 ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["cache MB", "RAID5", "RAID4", "RAID4 spool peak"]);
        for mb in [8u64, 16, 32, 64, 128, 256] {
            let r5 = run(
                cfg(Organization::Raid5 { striping_unit: 1 }, 10, Some(mb)),
                trace,
            );
            let r4 = run(
                cfg(Organization::Raid4 { striping_unit: 1 }, 10, Some(mb)),
                trace,
            );
            t.row(&[
                mb.to_string(),
                ms(r5.mean_response_ms()),
                ms(r4.mean_response_ms()),
                r4.spool_peak.to_string(),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 17: RAID4 vs RAID5 response time vs array size (cache ∝ N).
pub fn fig17(w: &Workloads) {
    println!("== Figure 17: response time (ms) vs array size, RAID4 vs RAID5 (cache ∝ N) ==\n");
    for (tname, trace) in w.named() {
        println!("-- {tname} --");
        let mut t = Table::new(&["N (cache MB)", "RAID5", "RAID4"]);
        for (n, mb) in [(5u32, 8u64), (10, 16), (20, 32)] {
            t.row(&[
                format!("{n} ({mb})"),
                ms(run(
                    cfg(Organization::Raid5 { striping_unit: 1 }, n, Some(mb)),
                    trace,
                )
                .mean_response_ms()),
                ms(run(
                    cfg(Organization::Raid4 { striping_unit: 1 }, n, Some(mb)),
                    trace,
                )
                .mean_response_ms()),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Figure 18: RAID4 vs RAID5 response time vs trace speed (16 MB cache).
pub fn fig18(w: &Workloads) {
    println!("== Figure 18: response time (ms) vs trace speed, RAID4 vs RAID5, cached ==\n");
    speed_sweep(
        w,
        &[
            Organization::Raid5 { striping_unit: 1 },
            Organization::Raid4 { striping_unit: 1 },
        ],
        Some(16),
    );
}

/// Figure 19: RAID4 vs RAID5 response time vs striping unit (16 MB cache).
pub fn fig19(w: &Workloads) {
    println!("== Figure 19: response time (ms) vs striping unit, RAID4 vs RAID5, cached ==\n");
    striping_sweep(w, Some(16), true);
}

/// Extension experiment (beyond the paper's figures): degraded-mode
/// operation. Section 4.2.1 remarks that large arrays "have worse
/// performance during reconstruction following a disk failure"; this
/// quantifies steady-state degraded response time for each redundant
/// organization and its growth with N.
pub fn degraded(w: &Workloads) {
    println!("== Extension: degraded-mode response time (one failed disk, Trace 2) ==\n");
    let orgs: [(Organization, Option<u64>); 4] = [
        (Organization::Mirror, None),
        (Organization::Raid5 { striping_unit: 1 }, None),
        (
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
            None,
        ),
        (Organization::Raid4 { striping_unit: 1 }, Some(16)),
    ];
    let mut t = Table::new(&[
        "organization",
        "healthy ms",
        "degraded ms",
        "ops/req degraded",
    ]);
    for (org, cache) in orgs {
        let healthy = run(cfg(org, 10, cache), &w.trace2);
        let mut c = cfg(org, 10, cache);
        c.failed_disk = Some((0, 0));
        let deg = run(c, &w.trace2);
        t.row(&[
            format!(
                "{}{}",
                org.label(),
                if cache.is_some() { " (cached)" } else { "" }
            ),
            ms(healthy.mean_response_ms()),
            ms(deg.mean_response_ms()),
            format!("{:.2}", deg.disk_ops as f64 / deg.requests_completed as f64),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- degraded RAID5 vs array size (reconstruction fan-out ∝ N) --");
    let mut t = Table::new(&["N", "healthy ms", "degraded ms"]);
    for n in [5u32, 10, 20] {
        let healthy = run(
            cfg(Organization::Raid5 { striping_unit: 1 }, n, None),
            &w.trace2,
        );
        let mut c = cfg(Organization::Raid5 { striping_unit: 1 }, n, None);
        c.failed_disk = Some((0, 0));
        let deg = run(c, &w.trace2);
        t.row(&[
            n.to_string(),
            ms(healthy.mean_response_ms()),
            ms(deg.mean_response_ms()),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// Extension experiment: the full failure *timeline* — a disk dies mid-run,
/// in-flight operations abort and re-plan through the degraded machinery,
/// an online rebuild sweeps the lost blocks onto a hot spare, and service
/// returns to healthy. Quantifies Section 4.2.1's remark that arrays "have
/// worse performance during reconstruction following a disk failure":
/// Mirror rebuilds from one surviving partner, RAID5 pays a max-of-N
/// reconstruction read per batch and the largest degraded penalty.
pub fn rebuild(w: &Workloads) {
    println!("== Extension: mid-run disk failure, online rebuild onto a hot spare (Trace 2) ==\n");
    let fail = FaultConfig {
        disk_failure: Some(DiskFailure {
            array: 0,
            disk: 0,
            at_ms: 60_000,
        }),
        spare: true,
        rebuild_rate_mbps: 10,
        ..FaultConfig::default()
    };
    let orgs: [Organization; 3] = [
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ];
    println!("-- disk 0 fails at t = 60 s; rebuild throttled to 10 MB/s --");
    let mut t = Table::new(&[
        "organization",
        "healthy ms",
        "degraded ms",
        "rebuild s",
        "aborted",
        "replayed",
    ]);
    for org in orgs {
        let mut c = cfg(org, 10, None);
        c.fault = Some(fail);
        let r = run(c, &w.trace2);
        let Some(f) = r.faults.as_ref() else { continue };
        t.row(&[
            org.label().to_string(),
            ms(f.response_healthy_ms.mean()),
            ms(f.degraded_mean_ms()),
            format!("{:.1}", f.rebuild_ms / 1000.0),
            f.ops_aborted.to_string(),
            f.ops_replayed.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- transient media errors, RAID5: controller retry with backoff --");
    let mut t = Table::new(&["error prob", "errors", "retries", "escalations", "mean ms"]);
    for p in [1e-4, 1e-3, 1e-2] {
        let mut c = cfg(Organization::Raid5 { striping_unit: 1 }, 10, None);
        c.fault = Some(FaultConfig {
            transient_error_prob: p,
            ..FaultConfig::default()
        });
        let r = run(c, &w.trace2);
        let Some(f) = r.faults.as_ref() else { continue };
        t.row(&[
            format!("{p:.0e}"),
            f.transient_errors.to_string(),
            f.retries.to_string(),
            f.escalations.to_string(),
            ms(r.mean_response_ms()),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- NVRAM battery outage, cached RAID5 (16 MB): write-through failover --");
    let mut t = Table::new(&["battery", "mean ms", "write-through", "outage s"]);
    for (label, outage) in [
        ("healthy", None),
        ("out 60 s → 180 s", Some((60_000, 180_000))),
    ] {
        let mut c = cfg(Organization::Raid5 { striping_unit: 1 }, 10, Some(16));
        c.fault = Some(FaultConfig {
            battery_fail_at_ms: outage.map(|(a, _)| a),
            battery_restore_at_ms: outage.map(|(_, b)| b),
            ..FaultConfig::default()
        });
        let r = run(c, &w.trace2);
        let Some(f) = r.faults.as_ref() else { continue };
        t.row(&[
            label.to_string(),
            ms(r.mean_response_ms()),
            f.writes_written_through.to_string(),
            format!("{:.0}", f.battery_window_ms / 1000.0),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// Extension experiment: the failure *lifecycle* beyond a single clean
/// failure-and-rebuild — sparing policy, background scrubbing of latent
/// sector errors, and multi-failure escalation up to data loss. Three
/// tables:
///
/// 1. Hot vs distributed sparing per organization. A hot spare funnels
///    every reconstructed block onto one replacement spindle; distributed
///    sparing spreads the writes across the survivors, so with the rebuild
///    unthrottled the write bottleneck dilutes and the rebuild (and with it
///    the degraded-exposure window) shrinks.
/// 2. Latent sector errors vs scrub rate on RAID5: how much of the array a
///    background scrub covers, how many marred blocks it repairs from
///    redundancy, and what leaks through to the rebuild.
/// 3. Seeded multi-failure escalation on RAID5: a second failure hitting
///    the rebuilding spare (restart onto the next spare), hitting it with
///    the pool exhausted (stays degraded), and hitting a second data disk
///    (data loss, accounted — not a panic).
pub fn reliability(w: &Workloads) {
    println!("== Extension: failure lifecycle — sparing, scrubbing, multi-failure (Trace 2) ==\n");
    let fail0 = DiskFailure {
        array: 0,
        disk: 0,
        at_ms: 30_000,
    };

    println!("-- disk 0 fails at t = 30 s; unthrottled rebuild; hot vs distributed sparing --");
    let orgs: [Organization; 3] = [
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ];
    let mut t = Table::new(&[
        "organization",
        "rebuild s hot",
        "rebuild s dist",
        "exposure s hot",
        "exposure s dist",
        "degraded ms hot",
        "degraded ms dist",
    ]);
    for org in orgs {
        let mut rebuild = Vec::new();
        let mut exposure = Vec::new();
        let mut degraded = Vec::new();
        for sparing in [SparingMode::Hot, SparingMode::Distributed] {
            let mut c = cfg(org, 10, None);
            c.fault = Some(FaultConfig {
                disk_failure: Some(fail0),
                spare: true,
                sparing,
                rebuild_rate_mbps: 0,
                ..FaultConfig::default()
            });
            let r = run(c, &w.trace2);
            let Some(f) = r.faults.as_ref() else { continue };
            let Some(rel) = r.reliability.as_ref() else {
                continue;
            };
            rebuild.push(f.rebuild_ms / 1000.0);
            exposure.push(rel.exposure_ms / 1000.0);
            degraded.push(f.degraded_mean_ms());
        }
        t.row(&[
            org.label().to_string(),
            format!("{:.1}", rebuild[0]),
            format!("{:.1}", rebuild[1]),
            format!("{:.1}", exposure[0]),
            format!("{:.1}", exposure[1]),
            ms(degraded[0]),
            ms(degraded[1]),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- latent sector errors vs background scrub, RAID5 (1/disk-hour) --");
    let mut t = Table::new(&[
        "scrub MB/s",
        "latent found",
        "repaired",
        "coverage %",
        "blocks lost",
        "lost reads",
    ]);
    for scrub_rate_mbps in [0u64, 4, 16] {
        let mut c = cfg(Organization::Raid5 { striping_unit: 1 }, 10, None);
        c.fault = Some(FaultConfig {
            latent_rate_per_hour: 1.0,
            scrub_rate_mbps,
            ..FaultConfig::default()
        });
        let r = run(c, &w.trace2);
        let Some(rel) = r.reliability.as_ref() else {
            continue;
        };
        t.row(&[
            scrub_rate_mbps.to_string(),
            rel.latent_errors.to_string(),
            rel.latent_repaired.to_string(),
            format!("{:.1}", rel.scrub_coverage * 100.0),
            rel.blocks_lost.to_string(),
            rel.lost_reads.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- multi-failure escalation, RAID5 (first failure: disk 0 at 30 s) --");
    let scenarios: [(&str, DiskFailure, u32); 3] = [
        (
            "spare dies at 60 s, pool of 2",
            DiskFailure {
                array: 0,
                disk: 0,
                at_ms: 60_000,
            },
            2,
        ),
        (
            "spare dies at 60 s, pool of 1",
            DiskFailure {
                array: 0,
                disk: 0,
                at_ms: 60_000,
            },
            1,
        ),
        (
            "second data disk at 60 s",
            DiskFailure {
                array: 0,
                disk: 3,
                at_ms: 60_000,
            },
            2,
        ),
    ];
    let mut t = Table::new(&[
        "scenario",
        "health",
        "failures",
        "spares used",
        "blocks lost",
        "lost reads",
        "loss at s",
    ]);
    for (label, second, spare_count) in scenarios {
        let mut c = cfg(Organization::Raid5 { striping_unit: 1 }, 10, None);
        c.fault = Some(FaultConfig {
            disk_failure: Some(fail0),
            second_failure: Some(second),
            spare: true,
            spare_count,
            rebuild_rate_mbps: 10,
            ..FaultConfig::default()
        });
        let r = run(c, &w.trace2);
        let Some(rel) = r.reliability.as_ref() else {
            continue;
        };
        t.row(&[
            label.to_string(),
            rel.health.clone(),
            rel.disk_failures.to_string(),
            rel.spares_used.to_string(),
            rel.blocks_lost.to_string(),
            rel.lost_reads.to_string(),
            rel.data_loss_at_ms
                .map_or_else(|| "-".into(), |v| format!("{:.1}", v / 1000.0)),
        ]);
    }
    print!("{}", t.render());
    println!();
}

/// An experiment: its CLI id and the function that prints it.
pub type Experiment = (&'static str, fn(&Workloads));

/// Extension experiment: fine-grained parity striping (the paper's closing
/// future-work item — "the use of a smaller striping unit for the parity in
/// order to balance the parity update load in the Parity Striping
/// organization"). Data placement stays sequential; only the parity
/// assignment rotates per band.
pub fn finegrain(w: &Workloads) {
    println!("== Extension: fine-grained parity striping (Trace 2) ==\n");
    let variants = [
        ("pinned (middle)", ParityPlacement::Middle),
        (
            "rotated, 256-block bands",
            ParityPlacement::MiddleRotated { band_blocks: 256 },
        ),
        (
            "rotated, 1024-block bands",
            ParityPlacement::MiddleRotated { band_blocks: 1024 },
        ),
    ];
    for (tname, trace) in [
        ("Trace 2", w.trace2.clone()),
        ("Trace 2 @2x speed", transform::at_speed(&w.trace2, 2.0)),
    ] {
        println!("-- {tname} --");
        let mut t = Table::new(&["parity layout", "mean ms", "disk-access CV", "max util %"]);
        for (label, placement) in variants {
            let r = run(
                cfg(Organization::ParityStriping { placement }, 10, None),
                &trace,
            );
            t.row(&[
                label.to_string(),
                ms(r.mean_response_ms()),
                format!("{:.3}", r.per_disk_accesses.coefficient_of_variation()),
                format!("{:.1}", r.max_disk_utilization() * 100.0),
            ]);
        }
        print!("{}", t.render());
        println!();
    }
}

/// Observability extension: decompose each organization's mean response
/// time into its phases (admission, channel, disk queue, destage
/// interference, seek, rotation, transfer, parity). The components sum to
/// the mean — this is where the paper's *causal* claims become checkable:
/// the RAID5/RAID4 write penalty should be rotation- and parity-dominated
/// (the RMW turnaround of Section 3.3), Parity Striping's penalty
/// seek-dominated (long arm travel to the dedicated parity region), and
/// cached residual write cost mostly destage interference.
pub fn breakdown(w: &Workloads) {
    println!("== Breakdown: response-time decomposition (mean ms per phase) ==\n");
    let header = [
        "organization",
        "dir",
        "mean",
        "admit",
        "chan",
        "queue",
        "destage",
        "seek",
        "rot",
        "xfer",
        "parity",
    ];
    let rows_for = |t: &mut Table, label: &str, r: &SimReport| {
        for (dir, ph, mean) in [
            ("R", &r.phases_reads, r.mean_read_ms()),
            ("W", &r.phases_writes, r.mean_write_ms()),
        ] {
            let mut row = vec![label.to_string(), dir.to_string(), ms(mean)];
            row.extend(ph.means_ms().iter().map(|(_, m)| ms(*m)));
            t.row(&row);
        }
    };
    for (tname, trace) in w.named() {
        println!("-- {tname}, no cache --");
        let mut t = Table::new(&header);
        for org in main_orgs() {
            let r = run(cfg(org, 10, None), trace);
            rows_for(&mut t, org.label(), &r);
        }
        print!("{}", t.render());
        println!();
    }
    println!("-- Trace 2, 4 MB NV cache --");
    let mut t = Table::new(&header);
    for org in [
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
    ] {
        let r = run(cfg(org, 10, Some(4)), &w.trace2);
        rows_for(&mut t, org.label(), &r);
    }
    print!("{}", t.render());
    println!();
}

/// Extension experiment: disk scheduling disciplines. The paper's
/// simulator serves each band FCFS (Section 3.3); this compares FCFS
/// against SSTF and SCAN on the same configurations as `breakdown` — the
/// FCFS columns must reproduce that experiment's mean read/write columns
/// exactly, because the default discipline *is* the paper's model and the
/// dispatch seam is hash-neutral under it. A high-load section then runs
/// all five organizations at Trace 2 @2× speed, where queues are deep
/// enough for reordering to matter, and reports per-discipline mean seek
/// distance and foreground queue depth.
pub fn scheduling(w: &Workloads) {
    println!("== Scheduling: queue disciplines (FCFS vs SSTF vs SCAN) ==\n");
    let header = ["organization", "dir", "FCFS", "SSTF", "SCAN"];
    let rows_for = |t: &mut Table, label: &str, reports: &[SimReport]| {
        for (dir, mean) in [
            ("R", SimReport::mean_read_ms as fn(&SimReport) -> f64),
            ("W", SimReport::mean_write_ms),
        ] {
            let mut row = vec![label.to_string(), dir.to_string()];
            row.extend(reports.iter().map(|r| ms(mean(r))));
            t.row(&row);
        }
    };
    let sweep = |t: &mut Table, org: Organization, cache_mb: Option<u64>, trace: &Trace| {
        let reports: Vec<SimReport> = Discipline::ALL
            .into_iter()
            .map(|d| {
                let mut c = cfg(org, 10, cache_mb);
                c.scheduler = d;
                run(c, trace)
            })
            .collect();
        rows_for(t, org.label(), &reports);
    };
    for (tname, trace) in w.named() {
        println!("-- {tname}, no cache (FCFS columns = `breakdown` means) --");
        let mut t = Table::new(&header);
        for org in main_orgs() {
            sweep(&mut t, org, None, trace);
        }
        print!("{}", t.render());
        println!();
    }
    println!("-- Trace 2, 4 MB NV cache --");
    let mut t = Table::new(&header);
    for org in [
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
    ] {
        sweep(&mut t, org, Some(4), &w.trace2);
    }
    print!("{}", t.render());

    println!("\n-- Trace 2 @2x speed, no cache: high load, all organizations --");
    let trace = transform::at_speed(&w.trace2, 2.0);
    let mut t = Table::new(&[
        "organization",
        "discipline",
        "mean ms",
        "p95 ms",
        "seek cyl",
        "qdepth N",
    ]);
    let all_orgs = [
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ];
    for org in all_orgs {
        for d in Discipline::ALL {
            let mut c = cfg(org, 10, None);
            c.scheduler = d;
            c.observability.scheduler_stats = true;
            let r = run(c, &trace);
            let s = r
                .scheduler
                .as_ref()
                .expect("scheduler_stats attaches statistics");
            t.row(&[
                org.label().to_string(),
                d.label().to_string(),
                ms(r.mean_response_ms()),
                ms(r.quantile_ms(0.95)),
                format!("{:.1}", s.mean_seek_distance_cyl()),
                format!("{:.2}", s.queue_depth_normal.mean()),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
}

/// Fleet audit: the built-in 16-VA heterogeneous fleet, reported per
/// virtual array and per tenant (traces are generated by the fleet router,
/// so the shared workloads are unused).
pub fn fleet(_w: &Workloads) {
    println!("== Fleet: 16 heterogeneous virtual arrays, one trace router ==\n");
    let cfg = FleetConfig::demo();
    let (report, stats) = run_fleet(&cfg, 0).expect("the built-in demo fleet runs");
    println!(
        "{} requests | {:.1} s simulated | {:.0} events/sim-s | replay amplification {:.3}\n",
        report.requests_completed,
        report.elapsed_secs,
        report.events_per_sim_sec,
        stats.replay_amplification,
    );
    let mut t = Table::new(&[
        "array",
        "org",
        "class",
        "completed",
        "mean ms",
        "p99 ms",
        "state",
        "tenants",
    ]);
    for va in &report.vas {
        t.row(&[
            va.name.clone(),
            va.organization.clone(),
            va.disk_class.clone(),
            va.report.requests_completed.to_string(),
            ms(va.report.mean_response_ms()),
            ms(va.report.quantile_ms(0.99)),
            if va.degraded { "degraded" } else { "ok" }.to_string(),
            va.tenants.join(","),
        ]);
    }
    print!("{}", t.render());

    println!("\n-- per tenant --");
    let mut t = Table::new(&["tenant", "array", "completed", "mean ms", "p99 ms", "state"]);
    for tr in &report.tenants {
        t.row(&[
            tr.id.clone(),
            tr.va.clone(),
            tr.completed.to_string(),
            ms(tr.response_ms.mean()),
            ms(tr.p99_ms),
            if tr.degraded { "degraded" } else { "ok" }.to_string(),
        ]);
    }
    print!("{}", t.render());
    if report.blast_radius.is_empty() {
        println!("\nno disk failures: blast radius empty");
    } else {
        println!("\nrebuild blast radius: {}", report.blast_radius.join(", "));
    }
    println!();
}

/// All experiment ids in paper order.
pub const ALL: &[Experiment] = &[
    ("table1", table1),
    ("table2", table2),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6_7),
    ("fig7", fig6_7),
    ("fig8", fig8),
    ("fig9", fig9),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
    ("fig17", fig17),
    ("fig18", fig18),
    ("fig19", fig19),
    ("degraded", degraded),
    ("rebuild", rebuild),
    ("reliability", reliability),
    ("finegrain", finegrain),
    ("breakdown", breakdown),
    ("scheduling", scheduling),
    ("fleet", fleet),
];

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment function runs to completion on tiny workloads.
    /// (Shapes are asserted in the integration suite; this is a smoke test
    /// that the harness itself is wired correctly.)
    #[test]
    fn all_experiments_run_on_tiny_workloads() {
        let w = Workloads::tiny();
        // Skip duplicated fig7 alias.
        for (id, f) in ALL.iter().filter(|(id, _)| *id != "fig7") {
            eprintln!("running {id}");
            f(&w);
        }
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (id, _) in ALL.iter().filter(|(id, _)| *id != "fig7") {
            assert!(seen.insert(*id), "duplicate id {id}");
        }
    }
}
