//! # iochannel — array↔host channel and track-buffer pool
//!
//! Each array has one controller and an independent channel to the host
//! (Section 3.2; 10 MB/s in Table 1). The channel is modeled as a FIFO
//! server: transfers are serialized in request order and take
//! `bytes / rate`. Track buffers in the controller (five per disk,
//! Section 3.4) decouple the disk surface from the channel, so a read never
//! waits an extra rotation because the channel is busy, and a write's data
//! is staged before the disk needs it; [`BufferPool`] accounts occupancy and
//! lets the simulator queue admissions when every buffer is held.
//!
//! The controller also owns error recovery: [`RetryPolicy`] is the
//! exponential-backoff schedule used to re-drive operations that hit
//! transient media errors before escalating to a permanent disk failure.

pub mod buffer;
pub mod channel;
pub mod retry;

pub use buffer::BufferPool;
pub use channel::{Channel, Transfer};
pub use retry::RetryPolicy;
