//! Full organization shoot-out for a transaction-processing system.
//!
//! Compares all five organizations of the paper (Base, Mirror, RAID5,
//! Parity Striping, and cached RAID4 with parity caching), both without and
//! with a 16 MB non-volatile controller cache, on a bursty high-skew OLTP
//! day — the decision a storage architect sizing a database server actually
//! faces: how much does media-recoverable storage cost in response time,
//! and does a cache pay for itself?
//!
//! ```text
//! cargo run --release -p raidsim --example oltp_comparison
//! ```

use raidsim::{CacheConfig, Organization, ParityPlacement, SimConfig, Simulator};
use raidtp_stats::Table;
use tracegen::SynthSpec;

fn main() {
    let trace = SynthSpec::trace2().generate();
    println!(
        "workload: {} requests, {:.0}% writes, {:.0} min\n",
        trace.len(),
        28.3,
        trace.duration().as_secs_f64() / 60.0
    );

    let orgs = [
        (Organization::Base, "none (data loss on failure)"),
        (Organization::Mirror, "100% (full copy)"),
        (
            Organization::Raid5 { striping_unit: 1 },
            "10% (1 parity/10)",
        ),
        (
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
            "10% (1 parity/10)",
        ),
        (
            Organization::Raid4 { striping_unit: 1 },
            "10% (1 parity/10)",
        ),
    ];

    let mut table = Table::new(&[
        "organization",
        "storage overhead",
        "uncached ms",
        "cached 16MB ms",
        "p95 cached ms",
    ]);
    for (org, overhead) in orgs {
        let uncached = if matches!(org, Organization::Raid4 { .. }) {
            // RAID4 without a cache funnels every parity update through one
            // disk; the paper only evaluates it with parity caching.
            "-".to_string()
        } else {
            let r = Simulator::new(SimConfig::with_organization(org), &trace).run();
            format!("{:.2}", r.mean_response_ms())
        };
        let mut cfg = SimConfig::with_organization(org);
        cfg.cache = Some(CacheConfig::default());
        let cached = Simulator::new(cfg, &trace).run();
        table.row(&[
            org.label().to_string(),
            overhead.to_string(),
            uncached,
            format!("{:.2}", cached.mean_response_ms()),
            format!("{:.1}", cached.quantile_ms(0.95)),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nReading the table: mirroring buys the best latency but doubles the \
         disks; RAID5/RAID4 give media recovery for one extra disk per ten, \
         and a 16 MB NV cache absorbs most of their small-write penalty \
         (paper, Sections 4.3–4.4)."
    );
}
