//! Seeded violation: a partition-reachable function mutates a stat
//! accumulator directly instead of going through the journal sink.

pub fn run_as_partition(s: &mut Sim) {
    step(s);
}

fn step(s: &mut Sim) {
    s.stats.resp_all.push(1.0);
    s.stats.inflight += 1;
    finalize_request(s);
}

fn finalize_request(s: &mut Sim) {
    s.stats.resp_all.push(2.0);
    s.note.pushes.push(StatPush::RespAll(2.0));
}
