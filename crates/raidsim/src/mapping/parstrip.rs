//! Parity Striping mapping (Gray, Horst & Walker; paper Section 2.2).

use super::{push_merged, Run, StripeMode, StripeWrite, WritePlan};
use crate::config::ParityPlacement;

/// Parity striping over `n + 1` disks.
///
/// Each physical disk is divided into `n + 1` equal areas of `area_blocks`
/// blocks: one parity area (at the slot chosen by the placement) and `n`
/// data areas. Data is laid out *sequentially*: the array's logical address
/// space fills disk 0's data areas, then disk 1's, and so on — no
/// interleaving, preserving per-disk seek affinity. The `d`-th data area of
/// disk `i` belongs to parity group `d` if `d < i`, else `d + 1`, and the
/// parity of group `g` lives in the parity area of disk `g`; thus group `g`
/// has one member area on every disk except `g`.
#[derive(Clone, Debug)]
pub struct ParStripMap {
    pub n: u32,
    pub blocks_per_disk: u64,
    pub area_blocks: u64,
    /// Slot index (0..=n) of the parity area on every disk.
    pub parity_slot: u32,
    pub placement: ParityPlacement,
    /// Fine-grained parity rotation: the group↔parity-disk assignment
    /// shifts by one disk every `band_blocks` of within-area offset
    /// (`None` = the classic pinned assignment). See
    /// [`ParityPlacement::MiddleRotated`].
    pub band_blocks: Option<u32>,
}

impl ParStripMap {
    pub fn new(n: u32, blocks_per_disk: u64, placement: ParityPlacement) -> ParStripMap {
        let slots = n as u64 + 1;
        // Areas are rounded down to tile the disk; the sliver past
        // `slots·area_blocks` at the disk end is unused (< slots blocks).
        let area_blocks = blocks_per_disk / slots;
        assert!(area_blocks > 0, "disk too small for {} areas", slots);
        let (parity_slot, band_blocks) = match placement {
            // Middle cylinders: the central slot.
            ParityPlacement::Middle => (n / 2, None),
            // The innermost slot.
            ParityPlacement::End => (n, None),
            ParityPlacement::MiddleRotated { band_blocks } => {
                assert!(band_blocks >= 1);
                (n / 2, Some(band_blocks))
            }
        };
        ParStripMap {
            n,
            blocks_per_disk,
            area_blocks,
            parity_slot,
            placement,
            band_blocks,
        }
    }

    /// Rotation band of a within-area offset (0 when rotation is off).
    #[inline]
    pub(crate) fn band_of(&self, w: u64) -> u32 {
        match self.band_blocks {
            Some(b) => ((w / b as u64) % (self.n as u64 + 1)) as u32,
            None => 0,
        }
    }

    /// Virtual disk identity of physical disk `i` in band `j`: the whole
    /// group structure of band `j` is the band-0 structure with disks
    /// relabeled by a rotation, which keeps every band singly
    /// fault-tolerant while spreading each group's parity across all
    /// disks.
    #[inline]
    pub(crate) fn virt(&self, i: u32, j: u32) -> u32 {
        (i + j) % (self.n + 1)
    }

    /// Physical disk holding the parity of virtual group `g` in band `j`.
    #[inline]
    pub(crate) fn parity_disk_of(&self, g_virt: u32, j: u32) -> u32 {
        (g_virt + self.n + 1 - j % (self.n + 1)) % (self.n + 1)
    }

    /// Virtual group that data area `d` of physical disk `i` belongs to in
    /// band `j`.
    #[inline]
    pub(crate) fn group_of(&self, i: u32, d: u32, j: u32) -> u32 {
        let iv = self.virt(i, j);
        if d < iv {
            d
        } else {
            d + 1
        }
    }

    /// The data area index on physical disk `k` that belongs to virtual
    /// group `g` in band `j`; `None` when `k` is the group's parity disk.
    #[inline]
    pub(crate) fn area_of_member(&self, k: u32, g_virt: u32, j: u32) -> Option<u32> {
        let kv = self.virt(k, j);
        if kv == g_virt {
            None
        } else if g_virt < kv {
            Some(g_virt)
        } else {
            Some(g_virt - 1)
        }
    }

    /// Logical blocks the array can hold (`(n+1)·n·area_blocks`).
    pub fn logical_capacity(&self) -> u64 {
        (self.n as u64 + 1) * self.n as u64 * self.area_blocks
    }

    /// Physical slot of data area `d` (0-based among the disk's `n` data
    /// areas): areas fill every slot except the parity slot, in order.
    #[inline]
    pub(crate) fn data_slot_pub(&self, d: u32) -> u32 {
        self.data_slot(d)
    }

    #[inline]
    fn data_slot(&self, d: u32) -> u32 {
        if d < self.parity_slot {
            d
        } else {
            d + 1
        }
    }

    /// Map a logical array address to (disk, physical block, parity disk,
    /// offset within area). The third element is the *physical disk holding
    /// this block's parity* (for the classic assignment it coincides with
    /// the parity-group id).
    #[inline]
    pub fn locate_full(&self, laddr: u64) -> (u32, u64, u32, u64) {
        debug_assert!(laddr < self.logical_capacity());
        let per_disk = self.n as u64 * self.area_blocks;
        let disk = (laddr / per_disk) as u32;
        let o = laddr % per_disk;
        let d = (o / self.area_blocks) as u32;
        let w = o % self.area_blocks;
        let j = self.band_of(w);
        let pdisk = self.parity_disk_of(self.group_of(disk, d, j), j);
        let block = self.data_slot(d) as u64 * self.area_blocks + w;
        (disk, block, pdisk, w)
    }

    /// Map to (disk, physical block).
    #[inline]
    pub fn locate(&self, laddr: u64) -> (u32, u64) {
        let (disk, block, _, _) = self.locate_full(laddr);
        (disk, block)
    }

    /// Parity location protecting `laddr`: block `w` of the parity area of
    /// the group's (band-dependent) parity disk.
    #[inline]
    pub fn parity_of(&self, laddr: u64) -> (u32, u64) {
        let (_, _, pdisk, w) = self.locate_full(laddr);
        (pdisk, self.parity_slot as u64 * self.area_blocks + w)
    }

    /// Physical data runs of `[laddr, laddr + n)` (addresses past the
    /// usable capacity wrap).
    pub fn data_runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        let cap = self.logical_capacity();
        let mut runs = Vec::with_capacity(1);
        for a in laddr..laddr + n as u64 {
            let (disk, block) = self.locate(a % cap);
            push_merged(&mut runs, disk, block);
        }
        runs
    }

    /// Writes in parity striping are always read-modify-write: a "row"
    /// (same within-area offset across the group's member areas) is never
    /// fully covered by a realistic request, so the full/reconstruct fast
    /// paths of striped arrays do not apply.
    pub fn write_plan(&self, laddr: u64, n: u32) -> WritePlan {
        let cap = self.logical_capacity();
        let mut stripes: Vec<StripeWrite> = Vec::with_capacity(1);
        // Build coupled (data run, parity run) pairs block by block; a new
        // stripe starts whenever either side stops being contiguous. Note
        // two adjacent data areas of one disk are physically contiguous but
        // belong to different parity groups, so the parity side forces the
        // split there.
        let mut cur: Option<(Run, Run)> = None;
        for a in laddr..laddr + n as u64 {
            let a = a % cap;
            let (disk, block) = self.locate(a);
            let (pdisk, pblock) = self.parity_of(a);
            if let Some((d, p)) = &mut cur {
                if d.disk == disk
                    && d.block + d.nblocks as u64 == block
                    && p.disk == pdisk
                    && p.block + p.nblocks as u64 == pblock
                {
                    d.nblocks += 1;
                    p.nblocks += 1;
                    continue;
                }
                let (d, p) = (*d, *p);
                stripes.push(Self::rmw_stripe(d, p));
            }
            cur = Some((
                Run {
                    disk,
                    block,
                    nblocks: 1,
                },
                Run {
                    disk: pdisk,
                    block: pblock,
                    nblocks: 1,
                },
            ));
        }
        if let Some((d, p)) = cur {
            stripes.push(Self::rmw_stripe(d, p));
        }
        WritePlan { stripes }
    }

    fn rmw_stripe(data: Run, parity: Run) -> StripeWrite {
        StripeWrite {
            mode: StripeMode::Rmw,
            data: vec![data],
            extra_reads: Vec::new(),
            parity: vec![parity],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map(n: u32, placement: ParityPlacement) -> ParStripMap {
        // 1100 blocks / (n+1) slots.
        ParStripMap::new(n, 1100, placement)
    }

    #[test]
    fn area_sizing_rounds_down() {
        let m = map(10, ParityPlacement::End);
        assert_eq!(m.area_blocks, 100);
        assert_eq!(m.logical_capacity(), 11 * 10 * 100);
    }

    #[test]
    fn parity_slot_by_placement() {
        assert_eq!(map(10, ParityPlacement::Middle).parity_slot, 5);
        assert_eq!(map(10, ParityPlacement::End).parity_slot, 10);
        assert_eq!(map(5, ParityPlacement::Middle).parity_slot, 2);
    }

    #[test]
    fn data_fills_disks_sequentially() {
        let m = map(4, ParityPlacement::End);
        // area_blocks = 220; per-disk data = 880.
        let (disk, block) = m.locate(0);
        assert_eq!((disk, block), (0, 0));
        let (disk, _) = m.locate(879);
        assert_eq!(disk, 0);
        let (disk, block) = m.locate(880);
        assert_eq!((disk, block), (1, 0));
    }

    #[test]
    fn middle_placement_shifts_data_slots() {
        let m = map(4, ParityPlacement::Middle); // parity slot 2, areas 220
                                                 // Data area 0 and 1 at slots 0,1; areas 2,3 at slots 3,4.
        assert_eq!(m.locate(0).1, 0);
        assert_eq!(m.locate(220).1, 220);
        assert_eq!(m.locate(440).1, 660, "area 2 skips the parity slot");
        assert_eq!(m.locate(660).1, 880);
    }

    #[test]
    fn group_membership_skips_own_disk() {
        let m = map(4, ParityPlacement::End);
        // Disk 0's areas belong to groups 1..4 (skipping 0).
        for (d, g) in [(0u64, 1u32), (1, 2), (2, 3), (3, 4)] {
            let (_, _, group, _) = m.locate_full(d * 220);
            assert_eq!(group, g);
        }
        // Disk 2's areas: groups 0,1,3,4.
        for (d, g) in [(0u64, 0u32), (1, 1), (2, 3), (3, 4)] {
            let (_, _, group, _) = m.locate_full(2 * 880 + d * 220);
            assert_eq!(group, g);
        }
    }

    #[test]
    fn parity_never_on_data_disk() {
        let m = map(4, ParityPlacement::Middle);
        for laddr in (0..m.logical_capacity()).step_by(37) {
            let (disk, _, _, _) = m.locate_full(laddr);
            let (pdisk, pblock) = m.parity_of(laddr);
            assert_ne!(disk, pdisk, "laddr {laddr}");
            // Parity block lies inside the parity slot.
            let slot = pblock / m.area_blocks;
            assert_eq!(slot as u32, m.parity_slot);
        }
    }

    #[test]
    fn write_plan_couples_data_and_parity_runs() {
        let m = map(4, ParityPlacement::End);
        let plan = m.write_plan(100, 4);
        assert_eq!(plan.stripes.len(), 1);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Rmw);
        assert_eq!(s.data[0].nblocks, 4);
        assert_eq!(s.parity[0].nblocks, 4);
        // Parity offsets mirror data offsets within the area.
        assert_eq!(
            s.parity[0].block % m.area_blocks,
            s.data[0].block % m.area_blocks
        );
    }

    #[test]
    fn write_plan_splits_at_area_boundary() {
        let m = map(4, ParityPlacement::End); // areas of 220
        let plan = m.write_plan(218, 4); // crosses area 0 → area 1 on disk 0
        assert_eq!(plan.stripes.len(), 2);
        // Different groups ⇒ different parity disks.
        let p0 = plan.stripes[0].parity[0].disk;
        let p1 = plan.stripes[1].parity[0].disk;
        assert_ne!(p0, p1);
    }

    #[test]
    fn rotated_parity_moves_across_bands() {
        let m = ParStripMap::new(4, 1100, ParityPlacement::MiddleRotated { band_blocks: 10 });
        assert_eq!(m.parity_slot, 2, "rotated placement keeps the middle slot");
        // Same data area, consecutive bands: parity disk rotates.
        let (pd0, _) = m.parity_of(0); // w = 0, band 0
        let (pd1, _) = m.parity_of(10); // w = 10, band 1
        let (pd2, _) = m.parity_of(20); // band 2
        assert_ne!(pd0, pd1);
        assert_ne!(pd1, pd2);
        // Over one full rotation period the parity visits every disk except
        // the data disk itself.
        let mut seen = std::collections::HashSet::new();
        for band in 0..5u64 {
            let (pd, _) = m.parity_of(band * 10);
            assert_ne!(pd, 0, "parity never lands on the data's own disk");
            seen.insert(pd);
        }
        assert_eq!(
            seen.len(),
            4,
            "parity spread over all other disks: {seen:?}"
        );
    }

    #[test]
    fn rotated_parity_balances_update_load() {
        // Hammer one data area with writes: pinned parity sends every
        // update to one disk; rotated parity spreads them.
        let pinned = ParStripMap::new(4, 1100, ParityPlacement::Middle);
        let rotated = ParStripMap::new(4, 1100, ParityPlacement::MiddleRotated { band_blocks: 8 });
        let spread = |m: &ParStripMap| {
            let mut disks = std::collections::HashSet::new();
            for w in 0..m.area_blocks {
                disks.insert(m.parity_of(w).0);
            }
            disks.len()
        };
        assert_eq!(spread(&pinned), 1);
        assert_eq!(spread(&rotated), 4);
    }

    proptest! {
        /// Rotated placement keeps the single-fault-tolerance structure:
        /// the parity disk is never the data disk, and locate stays
        /// injective.
        #[test]
        fn prop_rotated_structure(n in 2u32..8, band in 1u32..40) {
            let m = ParStripMap::new(
                n,
                660,
                ParityPlacement::MiddleRotated { band_blocks: band },
            );
            let mut seen = std::collections::HashSet::new();
            for laddr in 0..m.logical_capacity() {
                let (disk, block, pdisk, _) = m.locate_full(laddr);
                prop_assert!(seen.insert((disk, block)));
                prop_assert_ne!(disk, pdisk);
                prop_assert!(pdisk <= n);
            }
        }

        /// locate() is injective over the logical capacity and never lands
        /// in any disk's parity slot.
        #[test]
        fn prop_locate_injective_and_slot_safe(
            n in 2u32..8,
            placement in proptest::sample::select(vec![ParityPlacement::Middle, ParityPlacement::End]),
        ) {
            let m = ParStripMap::new(n, 660, placement);
            let mut seen = std::collections::HashSet::new();
            for laddr in 0..m.logical_capacity() {
                let (disk, block) = m.locate(laddr);
                prop_assert!(seen.insert((disk, block)));
                prop_assert!(disk <= n);
                let slot = (block / m.area_blocks) as u32;
                prop_assert_ne!(slot, m.parity_slot);
                prop_assert!(block < 660);
            }
        }

        /// Every parity group has exactly one member area per non-parity
        /// disk.
        #[test]
        fn prop_groups_are_balanced(n in 2u32..8) {
            let m = ParStripMap::new(n, 660, ParityPlacement::End);
            let mut members = std::collections::HashMap::new();
            for laddr in (0..m.logical_capacity()).step_by(m.area_blocks as usize) {
                let (disk, _, group, _) = m.locate_full(laddr);
                let set = members.entry(group).or_insert_with(std::collections::HashSet::new);
                prop_assert!(set.insert(disk), "duplicate member disk in group {group}");
            }
            for (group, set) in members {
                prop_assert_eq!(set.len(), n as usize, "group {} size", group);
                prop_assert!(!set.contains(&group), "group contains its parity disk");
            }
        }
    }
}
