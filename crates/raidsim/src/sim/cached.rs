//! Cached-controller request handling: LRU cache front-end, synchronous
//! writebacks, the periodic destage process, and RAID4 parity spooling.

use super::planning::OrgPlanner;
use super::{DestageJob, DiskOp, EnqueueRule, Ev, OpMarks, OpRole, ParityJob, Simulator, WriteOps};
use crate::mapping::StripeMode;
use diskmodel::{AccessKind, Band, DiskScheduler};
use nvcache::{BlockKey, DestageGroup, DirtyEviction};
use simkit::SimTime;
use tracegen::TraceRecord;

impl<'t> Simulator<'t> {
    /// Cache keys of a request (keyed by global logical disk + block).
    fn keys_of(rec: &TraceRecord) -> Vec<BlockKey> {
        (0..rec.nblocks as u64)
            .map(|i| BlockKey::new(rec.disk, rec.block + i))
            .collect()
    }

    fn laddr_of_key(&self, key: BlockKey) -> u64 {
        ((key.disk % self.n) as u64 * self.bpd + key.block) % self.planner.logical_capacity()
    }

    pub(super) fn cached_read(&mut self, req: u32, rec: &TraceRecord, array: u32, _laddr: u64) {
        let keys = Self::keys_of(rec);
        let missing = self.caches[array as usize].read_probe(&keys);
        let now = self.engine.now();
        let bytes = rec.nblocks as u64 * self.block_bytes;

        if missing.is_empty() {
            // Read hit: response is just the channel wait + transfer.
            let tr = self.channels[array as usize].request(now, bytes);
            self.note_channel_finish(req, tr.end);
            return;
        }

        // Fetch missing blocks; the host transfer runs after the last one
        // lands ("on a read miss the block is fetched from disk").
        self.reqs.get_mut(req).tail_channel_bytes = bytes;
        let mut evictions = Vec::new();
        for &key in &missing {
            evictions.extend(self.caches[array as usize].insert_fetched(key));
        }
        // Merge consecutive missing blocks into fetch runs.
        let mut seg_start = 0;
        for i in 0..missing.len() {
            let split = i + 1 == missing.len()
                || missing[i + 1].block != missing[i].block + 1
                || missing[i + 1].disk != missing[i].disk;
            if split {
                let laddr = self.laddr_of_key(missing[seg_start]);
                let nblocks = (i - seg_start + 1) as u32;
                let (direct, reconstruct) = match self.failed_in(array) {
                    Some(f) => {
                        let d = self.planner.degraded_read_runs(laddr, nblocks, f);
                        (d.direct, d.reconstruct)
                    }
                    None => (self.planner.read_runs(laddr, nblocks), Vec::new()),
                };
                for run in direct.into_iter().chain(reconstruct) {
                    let run = self.choose_replica(array, run);
                    let t = self.new_op(DiskOp {
                        role: OpRole::CacheFetch,
                        req: Some(req),
                        job: None,
                        dgroup: None,
                        gdisk: self.gdisk(array, run.disk),
                        block: run.block,
                        nblocks: run.nblocks,
                        kind: AccessKind::Read,
                        band: Band::Normal,
                        feeds: false,
                        read_end: SimTime::ZERO,
                        transfer_ns: 0,
                        attempts: 0,
                        marks: OpMarks::default(),
                    });
                    self.reqs.get_mut(req).pending += 1;
                    self.enqueue_op(t);
                }
                seg_start = i + 1;
            }
        }
        for ev in evictions {
            self.issue_writeback(Some(req), array, ev);
        }
    }

    pub(super) fn cached_write(&mut self, req: u32, rec: &TraceRecord, array: u32, laddr: u64) {
        let keys = Self::keys_of(rec);
        if self.battery_out() {
            // NVRAM battery failed: the cache cannot hold dirty data, so the
            // write goes straight to disk (blocks cached clean) and the
            // request waits for the media like a non-cached write.
            let (_hit, evictions) = self.caches[array as usize].write_through(&keys);
            let now = self.engine.now();
            let tr =
                self.channels[array as usize].request(now, rec.nblocks as u64 * self.block_bytes);
            self.reqs.get_mut(req).stage_end = tr.end;
            let immediate = self.build_write_ops(WriteOps {
                req: Some(req),
                array,
                laddr,
                n: rec.nblocks,
                band: Band::Normal,
                data_role: OpRole::HostWrite,
                old_known: false,
                spool: false,
            });
            self.note_channel_finish(req, tr.end);
            self.engine.schedule_at(tr.end, Ev::Issue(immediate.into()));
            for ev in evictions {
                self.issue_writeback(Some(req), array, ev);
            }
            self.note_write_through();
            return;
        }
        let keep_old = self.cfg.organization.has_parity();
        let (_hit, evictions) = self.caches[array as usize].write_access(&keys, keep_old);
        let now = self.engine.now();
        let tr = self.channels[array as usize].request(now, rec.nblocks as u64 * self.block_bytes);
        self.note_channel_finish(req, tr.end);
        for ev in evictions {
            self.issue_writeback(Some(req), array, ev);
        }
    }

    /// Synchronously write back an evicted dirty block (the evicting miss
    /// waits for it when `req` is set). In parity organizations the parity
    /// must be updated too; the cached old data, when present, saves the
    /// data-disk pre-read. RAID4 routes the parity update through the
    /// spool.
    pub(super) fn issue_writeback(&mut self, req: Option<u32>, array: u32, ev: DirtyEviction) {
        let laddr = self.laddr_of_key(ev.key);
        let spool = self.parity_cached;
        let immediate = self.build_write_ops(WriteOps {
            req,
            array,
            laddr,
            n: 1,
            band: Band::Normal,
            data_role: OpRole::Writeback,
            old_known: ev.had_old,
            spool,
        });
        for t in immediate {
            self.enqueue_op(t);
        }
        if spool {
            self.try_drain_spool(array);
        }
    }

    /// Buffer one parity-block update in the RAID4 spool, reserving a cache
    /// slot when it does not merge. Falls back to a direct parity-disk RMW
    /// when the cache cannot yield a slot (and counts the stall).
    pub(super) fn spool_parity(&mut self, array: u32, pblock: u64, full: bool, req: Option<u32>) {
        let a = array as usize;
        if self.spools[a].contains(pblock) {
            self.spools[a].add(pblock, full);
            return;
        }
        match self.caches[a].reserve_slots(1) {
            Some(evs) => {
                self.spools[a].add(pblock, full);
                for ev in evs {
                    self.issue_writeback(None, array, ev);
                }
            }
            None => {
                // Spool occupies the whole cache: service the parity update
                // directly from disk (Section 3.4's overflow behavior).
                self.spool_stalls += 1;
                let pdisk = self.n; // RAID4 parity disk
                if let Some(q) = req {
                    self.reqs.get_mut(q).pending += 1;
                }
                let t = self.new_op(DiskOp {
                    role: OpRole::ParityRmw,
                    req,
                    job: None,
                    dgroup: None,
                    gdisk: self.gdisk(array, pdisk),
                    block: pblock,
                    nblocks: 1,
                    kind: if full {
                        AccessKind::Write
                    } else {
                        AccessKind::RmwParityRead
                    },
                    band: Band::Normal,
                    feeds: false,
                    read_end: SimTime::ZERO,
                    transfer_ns: 0,
                    attempts: 0,
                    marks: OpMarks::default(),
                });
                self.enqueue_op(t);
            }
        }
    }

    // ------------------------------------------------------------------
    // destage
    // ------------------------------------------------------------------

    pub(super) fn on_destage_tick(&mut self, array: u32) {
        let a = array as usize;
        let groups = self.caches[a].collect_destage();
        for group in groups {
            self.issue_destage_group(array, group);
        }
        if self.parity_cached {
            self.try_drain_spool(array);
        }

        // Keep ticking while there is anything left to clean.
        let work_left = self.arrivals_remaining()
            || self.inflight > 0
            || self.caches[a].dirty_count() > 0
            || self.spools.get(a).is_some_and(|s| !s.is_empty());
        if work_left {
            self.engine
                .schedule_after(self.destage_period_ns, Ev::DestageTick { array });
        }
        // Partition mode: `inflight` above counts only this partition's
        // requests, so the local chain may end while the serial chain (which
        // sees global in-flight work) would keep ticking. Journal the
        // decision; the merge extends the chain virtually when needed.
        if let Some(p) = self.par.as_deref_mut() {
            p.note.tick_resched = Some(work_left);
        }
    }

    pub(super) fn issue_destage_group(&mut self, array: u32, group: DestageGroup) {
        let a = array as usize;
        let laddr = self.laddr_of_key(BlockKey::new(group.disk, group.block));
        let plan = self.plan_write(array, laddr, group.nblocks);
        let has_parity = self.cfg.organization.has_parity();

        // RAID4: reserve spool slots for every new parity block up front;
        // defer the whole group if the cache cannot hold them.
        if self.parity_cached {
            let mut new_blocks = 0usize;
            for stripe in &plan.stripes {
                for p in &stripe.parity {
                    for b in 0..p.nblocks as u64 {
                        if !self.spools[a].contains(p.block + b) {
                            new_blocks += 1;
                        }
                    }
                }
            }
            match self.caches[a].reserve_slots(new_blocks) {
                Some(evs) => {
                    for stripe in &plan.stripes {
                        // Full-stripe *and* reconstruct writes compute the
                        // actual parity, writable without the old-parity
                        // pre-read.
                        let full = stripe.mode != StripeMode::Rmw;
                        for p in &stripe.parity {
                            for b in 0..p.nblocks as u64 {
                                self.spools[a].add(p.block + b, full);
                            }
                        }
                    }
                    for ev in evs {
                        self.issue_writeback(None, array, ev);
                    }
                }
                None => {
                    self.spool_stalls += 1;
                    self.caches[a].destage_abort(&group);
                    return;
                }
            }
        }

        let data_ops: u32 = plan.stripes.iter().map(|s| s.data.len() as u32).sum();
        if data_ops == 0 {
            // Degraded mode: every dirty block of the group lived on the
            // failed disk. The parity/reconstruct work still runs below,
            // but there is no data write to wait for — settle the cache
            // now so the destage loop terminates.
            self.caches[a].destage_complete(&group);
        }
        let dg = (data_ops > 0).then(|| {
            self.dgroups.insert(DestageJob {
                group,
                remaining: data_ops,
            })
        });

        for stripe in plan.stripes {
            let rmw_needed = has_parity && !self.parity_cached && stripe.mode != StripeMode::Full;
            // A job couples background parity RMWs to their feeder reads.
            let feeders = if stripe.mode == StripeMode::Reconstruct {
                stripe.extra_reads.len()
            } else if !group.has_old {
                stripe.data.len()
            } else {
                0
            };
            let job = (rmw_needed && feeders > 0).then(|| {
                self.jobs.insert(ParityJob {
                    data_not_started: feeders as u32,
                    ready: SimTime::ZERO,
                    pending_parity: Vec::new(),
                    rule: EnqueueRule::AtReady,
                    refs: (feeders + stripe.parity.len()) as u32,
                })
            });

            let mut feeders = Vec::new();
            if stripe.mode == StripeMode::Reconstruct && has_parity && !self.parity_cached {
                for r in &stripe.extra_reads {
                    let t = self.new_op(DiskOp {
                        role: OpRole::ExtraRead,
                        req: None,
                        job,
                        dgroup: None,
                        gdisk: self.gdisk(array, r.disk),
                        block: r.block,
                        nblocks: r.nblocks,
                        kind: AccessKind::Read,
                        band: Band::Background,
                        feeds: true,
                        read_end: SimTime::ZERO,
                        transfer_ns: 0,
                        attempts: 0,
                        marks: OpMarks::default(),
                    });
                    feeders.push(t);
                }
            }

            // Data writes: plain when the old contents are cached or no
            // parity RMW is needed; pre-reading otherwise.
            let data_kind = if rmw_needed && stripe.mode == StripeMode::Rmw && !group.has_old {
                AccessKind::RmwData
            } else {
                AccessKind::Write
            };
            // RAID4 without cached old data must still pre-read to form the
            // spool delta.
            let data_kind =
                if self.parity_cached && !group.has_old && stripe.mode == StripeMode::Rmw {
                    AccessKind::RmwData
                } else {
                    data_kind
                };
            for r in &stripe.data {
                let is_feeder = data_kind == AccessKind::RmwData && !self.parity_cached;
                let t = self.new_op(DiskOp {
                    role: OpRole::DestageData,
                    req: None,
                    job: if is_feeder { job } else { None },
                    dgroup: dg,
                    gdisk: self.gdisk(array, r.disk),
                    block: r.block,
                    nblocks: r.nblocks,
                    kind: data_kind,
                    band: Band::Background,
                    feeds: is_feeder && job.is_some(),
                    read_end: SimTime::ZERO,
                    transfer_ns: 0,
                    attempts: 0,
                    marks: OpMarks::default(),
                });
                feeders.push(t);
            }

            if !has_parity || self.parity_cached {
                for t in feeders {
                    self.enqueue_op(t);
                }
                continue; // RAID4 parity went to the spool above
            }
            for p in &stripe.parity {
                let kind = if stripe.mode == StripeMode::Rmw {
                    AccessKind::RmwParityRead
                } else {
                    AccessKind::Write
                };
                let t = self.new_op(DiskOp {
                    role: OpRole::DestageParity,
                    req: None,
                    job,
                    dgroup: None,
                    gdisk: self.gdisk(array, p.disk),
                    block: p.block,
                    nblocks: p.nblocks,
                    kind,
                    band: Band::Background,
                    feeds: false,
                    read_end: SimTime::ZERO,
                    transfer_ns: 0,
                    attempts: 0,
                    marks: OpMarks::default(),
                });
                match job {
                    None => self.enqueue_op(t),
                    Some(j) => self.jobs.pending_parity[j as usize].push(t),
                }
            }
            // Enqueue feeders only after the parity ops are registered.
            for t in feeders {
                self.enqueue_op(t);
            }
        }
    }

    /// Keep the RAID4 parity disk fed from the spool whenever it is idle.
    pub(super) fn try_drain_spool(&mut self, array: u32) {
        if !self.parity_cached {
            return;
        }
        let a = array as usize;
        let pdisk = self.gdisk(array, self.n);
        if self.in_service[pdisk as usize].is_some()
            || !self.queues[pdisk as usize].is_empty()
            || self.spools[a].is_empty()
        {
            return;
        }
        // Two tracks' worth per sweep step keeps individual ops short.
        let Some(run) = self.spools[a].pop_run(12) else {
            return;
        };
        let t = self.new_op(DiskOp {
            role: OpRole::SpoolDrain,
            req: None,
            job: None,
            dgroup: None,
            gdisk: pdisk,
            block: run.block,
            nblocks: run.nblocks,
            kind: if run.full {
                AccessKind::Write
            } else {
                AccessKind::RmwParityRead
            },
            band: Band::Background,
            feeds: false,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        });
        self.enqueue_op(t);
    }
}
