//! Deterministic intra-run parallelism: partitioned execution with an
//! exact streaming commit-order merge.
//!
//! Arrays interact only through the shared trace (Section 3.2): no disk,
//! channel, buffer pool, cache, or spool is shared between redundancy
//! groups, and a request touches exactly one array. That makes the event
//! timeline *partitionable*: split the arrays into contiguous groups and
//! give each group to a thread running a full [`Simulator`] over **its own
//! share of the arrival stream**. The trace is pre-split once at setup
//! ([`tracegen::ArrivalSplit`]) into per-partition index lists, so a
//! partition feeds exactly the records it owns — it never scans, stubs, or
//! even touches a foreign arrival, and its work is proportional to its own
//! event count rather than the whole trace. This works because the serial
//! event loop itself consumes arrivals from a time-sorted feed rather than
//! the event queue ([`Simulator::next_step`]): the interleaving rule
//! ("arrival fires before queue events at the same instant") is a pure
//! function of the arrival time and the partition's own queue, identical
//! whether the feed holds the global stream or one partition's slice of
//! it. This is conservative parallel discrete-event simulation where the
//! partitioning argument is structural, so no synchronization is ever
//! needed during execution.
//!
//! Determinism is not assumed — it is *replayed and checked*. Each
//! partition records an [`ExecFrame`] (child schedule times, cancels) plus
//! a [`ParNote`] (statistics pushes, in-flight delta) per executed event,
//! flat-encoded into column chunks ([`simkit::FrameChunk`] /
//! [`journal::NoteChunk`]) and **streamed over a channel while the
//! partition is still running**. The merge, running concurrently on the
//! calling thread, reconstructs the serial run's global event order
//! symbolically: a priority queue keyed by `(time, global schedule seq)`
//! holds partition-internal events, interleaved against the global arrival
//! stream by the same tie rule the serial loop uses; each step consumes
//! the owning partition's next journal frame (asserting the times agree —
//! a desync is a bug, not a tolerance) and turns the frame's children into
//! new symbolic events with serial-order sequence numbers. Statistics
//! pushes are replayed into fresh accumulators in merged order, so every
//! order-sensitive accumulator (Welford, histogram) receives bit-identical
//! operands in the serial sequence and the final report serializes
//! byte-for-byte equal to the serial run's.
//!
//! One asymmetry needs care: **destage ticks** reschedule themselves while
//! *global* work remains, but a partition only sees its own arrivals and
//! in-flight count, so its local chain can end while the serial chain
//! would keep ticking (idle ticks that schedule nothing but their
//! successor — once a partition's chain ends, its arrays receive no new
//! dirty blocks, so the serial ticks it skipped were provably idle). The
//! merge extends such chains *virtually*, reproducing the serial run's
//! trailing ticks — and its final clock value, which the report's
//! utilization denominators use.
//!
//! Runs that observe global state mid-run (periodic sampler, event log)
//! or couple arrays through the controller (battery failover flushes every
//! cache; transient-error escalation consults the global health gate) are
//! not partitionable and fall back to the serial path. Injected disk
//! failures, latent sector errors, background scrubbing, and the whole
//! multi-failure lifecycle *are* partitionable: every consequence (aborts,
//! degraded planning, rebuild, spare-pool draws, data-loss transitions) is
//! confined to the affected array's partition, and the fault counters the
//! report sums are grafted per-array at merge time.

mod journal;
mod merge;

use super::*;
use crate::report::PhaseSample as Phase;
use journal::{NoteChunk, ParMsg, PartFinal, PartStream, CHUNK_FRAMES};
use simkit::FrameChunk;
use std::sync::mpsc;

/// Partition-mode state hung off the [`Simulator`]: the owned array range,
/// the pre-split arrival feed, and the journal note for the event
/// currently executing.
pub(super) struct ParState {
    /// First owned array.
    pub(super) lo: u32,
    /// One past the last owned array.
    pub(super) hi: u32,
    /// Global trace indices of the arrivals this partition owns, ascending
    /// (one slice of the [`tracegen::ArrivalSplit`]).
    pub(super) own: Vec<u32>,
    /// Feed cursor into `own`.
    pub(super) pos: usize,
    pub(super) note: ParNote,
}

/// What one executed event did at the simulation layer (the engine-level
/// [`ExecFrame`] covers schedules/cancels): every statistics push, the
/// in-flight delta, and the markers the merge keys off.
#[derive(Default)]
pub(super) struct ParNote {
    pub(super) pushes: Vec<StatPush>,
    pub(super) inflight_delta: i32,
    /// This event was a trace-arrival event.
    pub(super) is_arrive: bool,
    /// This event was a destage tick; the payload is whether it rescheduled
    /// itself (its local work-left decision).
    pub(super) tick_resched: Option<bool>,
}

/// One order-sensitive statistics push, journaled with the exact operands
/// so the merge can replay it bit-identically in merged order.
pub(super) enum StatPush {
    /// A request finished: response-time, histogram, per-window, and phase
    /// pushes all derive from these four values in a fixed sequence.
    Complete {
        ms: f64,
        is_read: bool,
        window: u8,
        phase: Phase,
    },
    /// Per-band queue depths observed at one dispatch decision.
    QDepth([f64; 3]),
    /// Arm travel of one dispatched op.
    Seek(f64),
}

impl<'t> Simulator<'t> {
    /// Run to completion, executing the arrays' timelines on up to
    /// `threads` worker threads when the configuration permits, and
    /// produce a report byte-identical to [`Simulator::run`]'s.
    ///
    /// Falls back to the serial path (identical results, one thread) when
    /// `threads <= 1` or the run is not partitionable — see
    /// [`Simulator::partitionable`].
    pub fn run_par(self, threads: usize) -> SimReport {
        self.run_par_instrumented(threads).0
    }

    /// [`Simulator::run_par`] plus engine counters and whether the run
    /// actually executed in parallel. For a parallel run the [`RunStats`]
    /// carry per-partition instrumentation: arrival share, events
    /// executed, journal frames/bytes, and the replay-amplification factor
    /// (events executed across partitions ÷ merged serial-order events —
    /// at most 1.0 with the pre-split feed, since the only serial events
    /// no partition executes are trailing idle destage ticks).
    pub fn run_par_instrumented(self, threads: usize) -> (SimReport, RunStats, bool) {
        if threads <= 1 || !self.partitionable() {
            let (report, stats) = self.run_instrumented();
            return (report, stats, false);
        }
        let nparts = threads.min(self.arrays as usize);
        let ranges = partition_ranges(self.arrays, nparts);
        let trace = self.trace;
        let n = self.n;
        let mut owner_of = vec![0usize; self.arrays as usize];
        for (p, &(lo, hi)) in ranges.iter().enumerate() {
            for a in lo..hi {
                owner_of[a as usize] = p;
            }
        }
        // Pre-split the arrival stream: each partition gets exactly its own
        // records' indices, in global trace order.
        let mut split = trace.split_arrivals(nparts, |r| owner_of[(r.disk / n) as usize]);
        // Partitions warm-start from this simulator's already-built disk
        // models instead of re-deriving phases per drive per partition; the
        // parent's own disks are later overwritten by the merge's hardware
        // graft, so the clone here is the only per-run copy.
        let warm = WarmDisks {
            seed: self.cfg.seed,
            geometry: self.cfg.geometry.clone(),
            seek: self.cfg.seek,
            disks: self.disks.clone(),
        };
        let (report, stats) = std::thread::scope(|s| {
            let warm = &warm;
            let mut streams = Vec::with_capacity(nparts);
            for (p, &(lo, hi)) in ranges.iter().enumerate() {
                let cfg = self.cfg.clone();
                let own = split.take_group(p);
                let (tx, rx) = mpsc::channel::<ParMsg>();
                s.spawn(move || {
                    let scope = PartScope {
                        lo,
                        hi,
                        own_arrivals: own.len(),
                    };
                    // The parent simulator already validated this exact
                    // configuration, so construction cannot fail.
                    Simulator::try_new_inner(cfg, trace, Some(&scope), Some(warm))
                        // simlint::allow(panic-policy): a partition panic must propagate — a partial merge would fabricate results
                        .expect("partition rebuilds a validated config")
                        .run_as_partition(lo, hi, own, tx);
                });
                streams.push(PartStream::new(rx));
            }
            // Merge on this thread, concurrently with the partitions: each
            // journal chunk is replayed as soon as its producer sends it.
            self.merge(&ranges, streams)
        });
        (report, stats, true)
    }

    /// Whether this run can be split into per-array-group partitions with
    /// identical results. Disqualifiers are the features that observe or
    /// mutate *global* state mid-run; each falls back to serial rather
    /// than silently diverging.
    fn partitionable(&self) -> bool {
        self.arrays > 1
            && !self.trace.records.is_empty()
            // The sampler and event log observe all arrays at global times.
            && self.sample_period_ns == 0
            && self.event_log.is_none()
            // Class pushes are not journaled: a tagged run stays serial
            // rather than silently dropping per-class statistics. (The
            // fleet layer parallelizes across virtual arrays instead.)
            && self.classes.is_none()
            && self.fault.as_ref().is_none_or(|f| {
                // Transient errors can escalate to a failure through a
                // *global* health gate; battery failover flushes every
                // array's cache from one event. Injected disk failures
                // (any number), latent errors, and scrubbing are wholly
                // owned by their array's partition.
                f.fcfg.transient_error_prob == 0.0
                    && f.fcfg.battery_fail_at_ms.is_none()
                    && f.fcfg.battery_restore_at_ms.is_none()
            })
    }

    /// Execute this simulator as the partition owning arrays `lo..hi` and
    /// the pre-split arrival indices `own`, streaming the journal over
    /// `tx` in flat chunks as it is produced and the final hardware state
    /// at the end.
    fn run_as_partition(mut self, lo: u32, hi: u32, own: Vec<u32>, tx: mpsc::Sender<ParMsg>) {
        let arrivals_owned = own.len() as u64;
        self.par = Some(Box::new(ParState {
            lo,
            hi,
            own,
            pos: 0,
            note: ParNote::default(),
        }));
        self.engine.set_recording(true);
        // Roots in the serial scheduling order, filtered to what this
        // partition owns: its destage ticks, then its fault events. No
        // arrival root — arrivals come from the pre-split feed.
        if self.cfg.cache.is_some() {
            for a in lo..hi {
                self.engine
                    .schedule_after(self.destage_period_ns, Ev::DestageTick { array: a });
            }
        }
        let fault_evs: Vec<(SimTime, FaultKind)> = match self.fault.as_ref() {
            Some(fs) => fs
                .plan
                .events()
                .iter()
                .filter_map(|e| match *e {
                    FaultEvent::DiskFail { array, disk, at } if (lo..hi).contains(&array) => {
                        Some((
                            at,
                            FaultKind::DiskFail {
                                gdisk: array * self.dpa + disk,
                            },
                        ))
                    }
                    FaultEvent::LatentError {
                        array,
                        disk,
                        block,
                        at,
                    } if (lo..hi).contains(&array) => Some((
                        at,
                        FaultKind::LatentError {
                            gdisk: array * self.dpa + disk,
                            block,
                        },
                    )),
                    // Foreign faults belong to their own partition; battery
                    // events are excluded by `partitionable`.
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for (at, kind) in fault_evs {
            self.engine.schedule_at(at, Ev::Fault(kind));
        }
        // Scrub roots last, in array order — the same relative order the
        // serial loop uses.
        if self
            .fault
            .as_ref()
            .is_some_and(|f| f.fcfg.scrub_rate_mbps > 0)
        {
            for a in lo..hi {
                self.engine
                    .schedule_at(SimTime::ZERO, Ev::ScrubStep { array: a });
            }
        }
        // A send only fails when the merge dropped its receiver, which it
        // does solely while panicking; the partition just finishes quietly
        // then — the scope join propagates the merge's panic.
        let _ = tx.send(ParMsg::Roots(self.engine.take_frame()));

        let mut frames = FrameChunk::default();
        let mut notes = NoteChunk::default();
        let mut journal_frames = 0u64;
        let mut journal_bytes = 0u64;
        while let Some(ev) = self.next_step() {
            self.dispatch(ev);
            self.engine.flush_frame(&mut frames);
            // simlint::allow(panic-policy): partition mode was set above; losing it is unreachable
            notes.push_note(&mut self.par.as_deref_mut().expect("partition mode").note);
            if frames.len() >= CHUNK_FRAMES {
                journal_frames += frames.len() as u64;
                journal_bytes += (frames.bytes() + notes.bytes()) as u64;
                let _ = tx.send(ParMsg::Chunk(
                    std::mem::take(&mut frames),
                    std::mem::take(&mut notes),
                ));
            }
        }
        debug_assert!(!self.arrivals_remaining(), "partition feed not drained");
        debug_assert_eq!(self.inflight, 0, "partition left requests in flight");
        debug_assert_eq!(self.ops.len(), 0, "partition leaked disk ops");
        if !frames.is_empty() {
            journal_frames += frames.len() as u64;
            journal_bytes += (frames.bytes() + notes.bytes()) as u64;
            let _ = tx.send(ParMsg::Chunk(frames, notes));
        }

        let Simulator {
            engine,
            disks,
            channels,
            caches,
            spools,
            disk_counts,
            disk_ops,
            buffer_waits,
            spool_stalls,
            fault,
            failed_local,
            dataloss,
            ..
        } = self;
        let _ = tx.send(ParMsg::Done(Box::new(PartFinal {
            disks,
            channels,
            caches,
            spools,
            disk_counts,
            disk_ops,
            buffer_waits,
            spool_stalls,
            fault,
            failed_local,
            dataloss,
            events_processed: engine.events_processed(),
            peak_pending: engine.peak_pending(),
            arrivals_owned,
            journal_frames,
            journal_bytes,
        })));
    }
}

/// Split `arrays` into `nparts` contiguous, maximally balanced ranges.
fn partition_ranges(arrays: u32, nparts: usize) -> Vec<(u32, u32)> {
    let nparts = nparts as u32;
    let base = arrays / nparts;
    let rem = arrays % nparts;
    let mut out = Vec::with_capacity(nparts as usize);
    let mut lo = 0;
    for i in 0..nparts {
        let hi = lo + base + u32::from(i < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::partition_ranges;

    #[test]
    fn ranges_cover_everything_contiguously() {
        for arrays in 1..40u32 {
            for nparts in 1..=arrays as usize {
                let r = partition_ranges(arrays, nparts);
                assert_eq!(r.len(), nparts);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, arrays);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap between partitions");
                }
                let sizes: Vec<u32> = r.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced split: {sizes:?}");
            }
        }
    }
}
