//! Discrete samplers used by the workload generator.

use rand::Rng;

/// Zipf-like sampler over `0..n` via inverse-CDF table lookup.
///
/// Item `i` gets weight `1 / (i+1)^theta`; `theta = 0` degenerates to
/// uniform, larger values concentrate probability on low indices. A caller
/// wanting skew over *arbitrary* items applies its own permutation of the
/// index space (hot items should not always be item 0).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "empty support");
        assert!(theta >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end (the table
        // is never empty: `n > 0` is asserted above).
        if let Some(top) = cdf.last_mut() {
            *top = 1.0;
        }
        Zipf { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Probability mass of index `i` (for calibration tests).
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Exponential interarrival sampler returning integer nanoseconds.
#[inline]
pub fn exp_ns<R: Rng>(rng: &mut R, mean_ns: f64) -> u64 {
    debug_assert!(mean_ns > 0.0);
    // Inverse transform; clamp u away from 0 to avoid ln(0).
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-mean_ns * u.ln()).round().min(u64::MAX as f64) as u64
}

/// Geometric sampler over `1..=max` (number of trials until first success),
/// truncated; used for multiblock request lengths and LRU stack distances.
#[inline]
pub fn geometric_trunc<R: Rng>(rng: &mut R, p: f64, max: u32) -> u32 {
    debug_assert!(p > 0.0 && p <= 1.0);
    let mut k = 1;
    while k < max && rng.gen::<f64>() >= p {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_low_indices() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > 10.0 * z.pmf(99));
        let flat = Zipf::new(100, 0.2);
        assert!(z.pmf(0) > flat.pmf(0), "higher theta ⇒ hotter head");
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let z = Zipf::new(10, 0.8);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u64; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "index {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn exp_ns_mean_close() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean = 1_000_000.0;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| exp_ns(&mut rng, mean)).sum();
        let emp = total as f64 / n as f64;
        assert!((emp - mean).abs() < mean * 0.02, "empirical mean {emp}");
    }

    #[test]
    fn geometric_respects_truncation() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let k = geometric_trunc(&mut rng, 0.1, 32);
            assert!((1..=32).contains(&k));
        }
        // p=1 always returns 1.
        assert_eq!(geometric_trunc(&mut rng, 1.0, 32), 1);
    }

    proptest! {
        /// The sampler always returns a valid index.
        #[test]
        fn prop_zipf_in_range(n in 1usize..500, theta in 0.0f64..2.0, seed in any::<u64>()) {
            let z = Zipf::new(n, theta);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        /// PMF sums to one.
        #[test]
        fn prop_pmf_normalized(n in 1usize..200, theta in 0.0f64..2.0) {
            let z = Zipf::new(n, theta);
            let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
