//! RAID4 parity-update spool (Section 3.4, "Parity Caching").
//!
//! Parity updates are buffered in the controller cache instead of being
//! written through to the dedicated parity disk. Entries are kept sorted by
//! target block ("sorted by cylinder number") and drained with a SCAN
//! (elevator) sweep when the parity disk is free. Each entry records whether
//! it holds *full* parity — a full-stripe write computed the parity outright,
//! so it can be written without reading the old parity — or an XOR *delta*
//! (`old data ⊕ new data`), in which case "the old parity must be read to
//! compute the new parity" at spool-drain time.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One buffered parity update for a single parity block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpoolEntry {
    /// Full parity (write without pre-read) vs delta (RMW at the parity
    /// disk).
    pub full: bool,
}

/// A run of consecutive spooled parity blocks drained as one disk op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpoolRun {
    pub block: u64,
    pub nblocks: u32,
    pub full: bool,
}

/// Sorted buffer of pending parity-disk updates with an elevator cursor.
#[derive(Clone, Debug, Default)]
pub struct ParitySpool {
    entries: BTreeMap<u64, SpoolEntry>,
    cursor: u64,
    upward: bool,
    merges: u64,
    inserts: u64,
    peak: usize,
}

impl ParitySpool {
    pub fn new() -> ParitySpool {
        ParitySpool {
            entries: BTreeMap::new(),
            cursor: 0,
            upward: true,
            merges: 0,
            inserts: 0,
            peak: 0,
        }
    }

    /// Buffer a parity update. Returns `true` if a new cache slot was
    /// consumed, `false` if it merged into an existing entry. Merging a
    /// delta into held parity keeps it current, so `full` is sticky.
    pub fn add(&mut self, parity_block: u64, full: bool) -> bool {
        self.inserts += 1;
        match self.entries.get_mut(&parity_block) {
            Some(e) => {
                e.full = e.full || full;
                self.merges += 1;
                false
            }
            None => {
                self.entries.insert(parity_block, SpoolEntry { full });
                self.peak = self.peak.max(self.entries.len());
                true
            }
        }
    }

    /// Whether an update for `parity_block` is already buffered (a further
    /// update would merge without consuming a slot).
    pub fn contains(&self, parity_block: u64) -> bool {
        self.entries.contains_key(&parity_block)
    }

    /// Slots currently occupied.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Updates that merged into an already-buffered entry (write
    /// absorption on the parity disk).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// High-water mark of occupancy (the paper's "the parity disk queue
    /// becomes large enough to occupy the entire cache" check).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Drain the next run under the SCAN sweep: up to `max` *consecutive*
    /// blocks of the same kind (full/delta), starting at the nearest entry
    /// in the sweep direction; the sweep reverses at the ends.
    pub fn pop_run(&mut self, max: u32) -> Option<SpoolRun> {
        if self.entries.is_empty() {
            return None;
        }
        let start = if self.upward {
            match self.entries.range(self.cursor..).next() {
                Some((&b, _)) => b,
                None => {
                    self.upward = false;
                    *self
                        .entries
                        .range(..self.cursor)
                        .next_back()
                        .map(|(b, _)| b)?
                }
            }
        } else {
            match self.entries.range(..=self.cursor).next_back() {
                Some((&b, _)) => b,
                None => {
                    self.upward = true;
                    *self.entries.range(self.cursor..).next().map(|(b, _)| b)?
                }
            }
        };

        // Collect a consecutive same-kind run ascending from `start` (runs
        // are written in ascending block order regardless of sweep
        // direction; the sweep only picks where to go next).
        let full = self.entries[&start].full;
        let mut nblocks = 1u32;
        while nblocks < max {
            let next = start + nblocks as u64;
            match self.entries.get(&next) {
                Some(e) if e.full == full => nblocks += 1,
                _ => break,
            }
        }
        for b in 0..nblocks as u64 {
            self.entries.remove(&(start + b));
        }
        self.cursor = if self.upward {
            start + nblocks as u64
        } else {
            start.saturating_sub(1)
        };
        Some(SpoolRun {
            block: start,
            nblocks,
            full,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_slot_accounting() {
        let mut s = ParitySpool::new();
        assert!(s.add(10, false), "first update takes a slot");
        assert!(!s.add(10, false), "second merges");
        assert_eq!(s.len(), 1);
        assert_eq!(s.merges(), 1);
        assert_eq!(s.inserts(), 2);
    }

    #[test]
    fn full_parity_is_sticky_under_merge() {
        let mut s = ParitySpool::new();
        s.add(5, true);
        s.add(5, false); // delta folded into held full parity
        let run = s.pop_run(8).unwrap();
        assert!(run.full);

        let mut s = ParitySpool::new();
        s.add(6, false);
        s.add(6, true); // full replaces delta
        assert!(s.pop_run(8).unwrap().full);
    }

    #[test]
    fn pop_run_groups_consecutive_same_kind() {
        let mut s = ParitySpool::new();
        for b in [3u64, 4, 5, 9] {
            s.add(b, false);
        }
        s.add(6, true); // breaks the run: different kind
        let r = s.pop_run(16).unwrap();
        assert_eq!(
            r,
            SpoolRun {
                block: 3,
                nblocks: 3,
                full: false
            }
        );
        let r = s.pop_run(16).unwrap();
        assert_eq!(
            r,
            SpoolRun {
                block: 6,
                nblocks: 1,
                full: true
            }
        );
        let r = s.pop_run(16).unwrap();
        assert_eq!(
            r,
            SpoolRun {
                block: 9,
                nblocks: 1,
                full: false
            }
        );
        assert!(s.pop_run(16).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn pop_run_respects_max() {
        let mut s = ParitySpool::new();
        for b in 0..10u64 {
            s.add(b, false);
        }
        assert_eq!(s.pop_run(4).unwrap().nblocks, 4);
        assert_eq!(s.pop_run(4).unwrap().block, 4);
    }

    #[test]
    fn scan_sweeps_up_then_down() {
        let mut s = ParitySpool::new();
        s.add(100, false);
        s.add(50, false);
        s.add(200, false);
        // Cursor starts at 0 going up: services 50, 100, 200.
        assert_eq!(s.pop_run(1).unwrap().block, 50);
        assert_eq!(s.pop_run(1).unwrap().block, 100);
        s.add(10, false); // behind the cursor: picked up on the way back
        assert_eq!(s.pop_run(1).unwrap().block, 200);
        assert_eq!(s.pop_run(1).unwrap().block, 10, "sweep reversed");
        assert_eq!(s.peak(), 3);
    }

    #[test]
    fn empty_spool_pops_none() {
        let mut s = ParitySpool::new();
        assert!(s.pop_run(8).is_none());
        assert_eq!(s.len(), 0);
    }
}
