//! Deterministic fleet trace router: per-tenant substreams merged into one
//! fleet arrival stream.
//!
//! Each tenant gets its own [`SynthSpec`]-generated substream (own seed,
//! own skew, own mix) over the logical disk span of the virtual array it
//! was placed on. The router merges the substreams into one time-sorted
//! *master* trace in fleet-global logical disk numbering, tagging every
//! record with its tenant.
//!
//! **Tie rule.** Records carrying the same arrival timestamp merge in
//! stream order: the tenant listed earlier in the `streams` slice wins,
//! and within one stream records keep their generated order. The rule is
//! arbitrary but *fixed* — the fleet's serial and partitioned runs both
//! consume the identical master stream, which is what keeps them
//! byte-identical.
//!
//! Downstream, the fleet runner pre-splits the master by virtual array
//! through [`Trace::split_arrivals`], so each VA partition sees exactly
//! its own arrivals: every routed record lands in exactly one VA's feed
//! (zero replay amplification carries over from the single-array design).

use crate::record::Trace;
use crate::synth::SynthSpec;

/// One tenant's substream: a synthetic workload placed at a fleet-global
/// logical disk offset.
#[derive(Clone, Debug)]
pub struct TenantStream {
    /// Stable tenant index — becomes the request class downstream.
    pub tenant: u16,
    /// First fleet-global logical disk of the tenant's placement (the
    /// start of its virtual array's span).
    pub base_disk: u32,
    /// The tenant's workload over `spec.n_disks` logical disks starting at
    /// `base_disk`. The spec's seed makes the substream deterministic.
    pub spec: SynthSpec,
}

/// The routed fleet arrival stream: one merged, time-sorted trace over the
/// fleet's global logical disk space, plus a per-record tenant tag.
#[derive(Clone, Debug)]
pub struct RoutedTrace {
    pub master: Trace,
    /// `tenant_of[i]` is the tenant of `master.records[i]`.
    pub tenant_of: Vec<u16>,
    pub n_tenants: u16,
}

/// Generate every tenant's substream and merge them into one fleet trace.
///
/// `total_disks` is the fleet's logical disk count (the sum of the VA
/// spans); `blocks_per_disk` must be at least every stream's own
/// `blocks_per_disk` so the master's addresses validate (per-VA traces are
/// re-bounded to their own geometry when the fleet runner materializes
/// them).
pub fn route(
    total_disks: u32,
    blocks_per_disk: u64,
    streams: &[TenantStream],
) -> Result<RoutedTrace, String> {
    for (i, s) in streams.iter().enumerate() {
        if streams[..i].iter().any(|p| p.tenant == s.tenant) {
            return Err(format!("duplicate tenant id {}", s.tenant));
        }
        let end = s.base_disk as u64 + s.spec.n_disks as u64;
        if end > total_disks as u64 {
            return Err(format!(
                "tenant {} spans disks {}..{} but the fleet has {}",
                s.tenant, s.base_disk, end, total_disks
            ));
        }
        if s.spec.blocks_per_disk > blocks_per_disk {
            return Err(format!(
                "tenant {} addresses {} blocks/disk but the fleet caps at {}",
                s.tenant, s.spec.blocks_per_disk, blocks_per_disk
            ));
        }
    }

    // Generate each substream in fleet-global disk numbering.
    let subs: Vec<Trace> = streams
        .iter()
        .map(|s| {
            let mut t = s.spec.generate();
            for r in &mut t.records {
                r.disk += s.base_disk;
            }
            t
        })
        .collect();

    // K-way merge on (arrival time, stream order). `pos[k]` is the cursor
    // into substream `k`; ties pick the smallest stream index, so equal
    // timestamps resolve by the documented stream-order rule.
    let total: usize = subs.iter().map(Trace::len).sum();
    let mut master = Trace::new(total_disks, blocks_per_disk);
    master.records.reserve(total);
    let mut tenant_of = Vec::with_capacity(total);
    let mut pos = vec![0usize; subs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (k, t) in subs.iter().enumerate() {
            let Some(r) = t.records.get(pos[k]) else {
                continue;
            };
            let better = match best {
                None => true,
                Some(b) => r.at < subs[b].records[pos[b]].at,
            };
            if better {
                best = Some(k);
            }
        }
        let Some(k) = best else {
            break;
        };
        master.records.push(subs[k].records[pos[k]]);
        tenant_of.push(streams[k].tenant);
        pos[k] += 1;
    }
    debug_assert_eq!(master.len(), total);

    Ok(RoutedTrace {
        master,
        tenant_of,
        n_tenants: streams.iter().map(|s| s.tenant + 1).max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64, n_disks: u32, n_requests: usize) -> SynthSpec {
        let mut s = SynthSpec::trace2();
        s.seed = seed;
        s.n_disks = n_disks;
        s.n_requests = n_requests;
        s.duration_secs = n_requests as f64 * 0.01;
        s
    }

    #[test]
    fn merge_is_time_sorted_and_complete() {
        let streams = vec![
            TenantStream {
                tenant: 0,
                base_disk: 0,
                spec: tiny_spec(1, 4, 200),
            },
            TenantStream {
                tenant: 1,
                base_disk: 4,
                spec: tiny_spec(2, 6, 300),
            },
        ];
        let routed = route(10, 226_800, &streams).unwrap();
        assert_eq!(routed.master.len(), 500);
        assert_eq!(routed.tenant_of.len(), 500);
        assert!(routed.master.validate().is_ok());
        // Every record stays inside its tenant's span.
        for (r, &t) in routed.master.records.iter().zip(&routed.tenant_of) {
            match t {
                0 => assert!(r.disk < 4),
                _ => assert!((4..10).contains(&r.disk)),
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let streams = vec![
            TenantStream {
                tenant: 0,
                base_disk: 0,
                spec: tiny_spec(7, 3, 150),
            },
            TenantStream {
                tenant: 1,
                base_disk: 3,
                spec: tiny_spec(8, 3, 150),
            },
        ];
        let a = route(6, 226_800, &streams).unwrap();
        let b = route(6, 226_800, &streams).unwrap();
        assert_eq!(a.master, b.master);
        assert_eq!(a.tenant_of, b.tenant_of);
    }

    #[test]
    fn rejects_bad_streams() {
        let s = |tenant, base_disk, nd| TenantStream {
            tenant,
            base_disk,
            spec: tiny_spec(1, nd, 10),
        };
        let e = route(4, 226_800, &[s(0, 0, 2), s(0, 2, 2)]).unwrap_err();
        assert!(e.contains("duplicate tenant id"), "{e}");
        let e = route(4, 226_800, &[s(0, 2, 4)]).unwrap_err();
        assert!(e.contains("spans disks"), "{e}");
        let mut big = s(0, 0, 2);
        big.spec.blocks_per_disk = 1 << 40;
        let e = route(4, 226_800, &[big]).unwrap_err();
        assert!(e.contains("caps at"), "{e}");
    }
}
