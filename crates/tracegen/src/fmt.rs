//! Plain-text trace format, compatible with the paper's description of the
//! original trace entries.
//!
//! Each line is one *block-run* entry:
//!
//! ```text
//! <delta_ns> <disk> <block> <nblocks> <R|W>
//! ```
//!
//! `delta_ns` is the time since the previous entry in nanoseconds; as in
//! the paper's traces, "the time field is set to zero when both accesses are
//! part of the same multiblock request" — the parser coalesces a zero-delta
//! entry that continues the previous run (same disk, same type, contiguous
//! blocks) into one multiblock record, and the writer can emit either the
//! coalesced or the exploded form. Lines starting with `#` are comments.

use crate::record::{AccessType, Trace, TraceRecord};
use simkit::SimTime;
use std::fmt::Write as _;

/// Parse error with 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace. With `explode_multiblock`, each block of a multiblock
/// request becomes its own zero-delta line (the paper's original format);
/// otherwise one line per request.
pub fn write_trace(trace: &Trace, explode_multiblock: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# raidtp trace: disks={} blocks_per_disk={}",
        trace.n_disks, trace.blocks_per_disk
    );
    let mut prev = SimTime::ZERO;
    for r in &trace.records {
        let delta_ns = r.at.as_ns() - prev.as_ns();
        prev = r.at;
        let kind = if r.is_read() { 'R' } else { 'W' };
        if explode_multiblock && r.nblocks > 1 {
            let _ = writeln!(out, "{} {} {} 1 {}", delta_ns, r.disk, r.block, kind);
            for i in 1..r.nblocks as u64 {
                let _ = writeln!(out, "0 {} {} 1 {}", r.disk, r.block + i, kind);
            }
        } else {
            let _ = writeln!(
                out,
                "{} {} {} {} {}",
                delta_ns, r.disk, r.block, r.nblocks, kind
            );
        }
    }
    out
}

/// Parse a trace, coalescing zero-delta continuations of the same run.
pub fn parse_trace(input: &str) -> Result<Trace, ParseError> {
    let mut header: Option<(u32, u64)> = None;
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut now = SimTime::ZERO;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if header.is_none() {
                header = parse_header(rest);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = |name: &str| {
            it.next().ok_or_else(|| ParseError {
                line: lineno,
                message: format!("missing field `{name}`"),
            })
        };
        let delta_ns: u64 = parse_num(field("delta_ns")?, lineno)?;
        let disk: u32 = parse_num(field("disk")?, lineno)?;
        let block: u64 = parse_num(field("block")?, lineno)?;
        let nblocks: u32 = parse_num(field("nblocks")?, lineno)?;
        let kind = match field("kind")? {
            "R" | "r" => AccessType::Read,
            "W" | "w" => AccessType::Write,
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("bad access type `{other}` (expected R or W)"),
                })
            }
        };
        if nblocks == 0 {
            return Err(ParseError {
                line: lineno,
                message: "nblocks must be ≥ 1".into(),
            });
        }
        if it.next().is_some() {
            return Err(ParseError {
                line: lineno,
                message: "trailing fields after access type".into(),
            });
        }
        // With a header, bounds-check each run where it appears so the
        // error names the offending line instead of failing in the final
        // whole-trace validation.
        if let Some((n_disks, bpd)) = header {
            if disk >= n_disks {
                return Err(ParseError {
                    line: lineno,
                    message: format!("disk {disk} out of range (header declares {n_disks} disks)"),
                });
            }
            if block.saturating_add(nblocks as u64) > bpd {
                return Err(ParseError {
                    line: lineno,
                    message: format!(
                        "run [{block}, {}) past the end of the disk ({bpd} blocks)",
                        block.saturating_add(nblocks as u64)
                    ),
                });
            }
        }
        now += delta_ns;

        // Coalesce a zero-delta contiguous continuation.
        if delta_ns == 0 {
            if let Some(last) = records.last_mut() {
                if last.disk == disk
                    && last.kind == kind
                    && last.block + last.nblocks as u64 == block
                {
                    last.nblocks += nblocks;
                    continue;
                }
            }
        }
        records.push(TraceRecord {
            at: now,
            disk,
            block,
            nblocks,
            kind,
        });
    }

    let (n_disks, blocks_per_disk) = header.unwrap_or_else(|| {
        // Infer bounds when no header is present.
        let disks = records.iter().map(|r| r.disk + 1).max().unwrap_or(1);
        let blocks = records
            .iter()
            .map(|r| r.block + r.nblocks as u64)
            .max()
            .unwrap_or(1);
        (disks, blocks)
    });
    let trace = Trace {
        n_disks,
        blocks_per_disk,
        records,
    };
    trace
        .validate()
        .map_err(|message| ParseError { line: 0, message })?;
    Ok(trace)
}

fn parse_header(rest: &str) -> Option<(u32, u64)> {
    let mut disks = None;
    let mut blocks = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("disks=") {
            disks = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix("blocks_per_disk=") {
            blocks = v.parse().ok();
        }
    }
    Some((disks?, blocks?))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError {
        line,
        message: format!("bad number `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthSpec;

    #[test]
    fn round_trip_compact_form() {
        let t = SynthSpec::trace2().scaled(0.02).generate();
        let text = write_trace(&t, false);
        let back = parse_trace(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_exploded_form() {
        let t = SynthSpec::trace2().scaled(0.02).generate();
        let text = write_trace(&t, true);
        let back = parse_trace(&text).unwrap();
        // Exploding then coalescing restores the exact multiblock structure.
        assert_eq!(t, back);
    }

    #[test]
    fn zero_delta_noncontiguous_stays_separate() {
        let text = "# disks=2 blocks_per_disk=100\n5 0 10 1 R\n0 1 20 1 R\n0 0 11 1 W\n";
        let t = parse_trace(text).unwrap();
        // Same time, different disk / different type: three records.
        assert_eq!(t.len(), 3);
        assert_eq!(t.records[0].at, t.records[1].at);
    }

    #[test]
    fn header_inferred_when_missing() {
        let t = parse_trace("5 3 99 1 R\n").unwrap();
        assert_eq!(t.n_disks, 4);
        assert_eq!(t.blocks_per_disk, 100);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("1 0 0 1 R\nbogus line here x\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_trace("1 0 0 1 Q\n").unwrap_err();
        assert!(e.message.contains("bad access type"));
        let e = parse_trace("1 0 0 0 R\n").unwrap_err();
        assert!(e.message.contains("nblocks"));
        let e = parse_trace("1 0\n").unwrap_err();
        assert!(e.message.contains("missing field"));
    }

    #[test]
    fn rejects_out_of_range_runs_against_header() {
        let e = parse_trace("# disks=2 blocks_per_disk=100\n1 2 0 1 R\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("disk 2 out of range"), "{}", e.message);
        let e = parse_trace("# disks=2 blocks_per_disk=100\n1 0 99 2 W\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("past the end"), "{}", e.message);
        // Exactly filling the disk is fine.
        assert!(parse_trace("# disks=2 blocks_per_disk=100\n1 0 98 2 W\n").is_ok());
    }

    #[test]
    fn rejects_overlong_lines() {
        let e = parse_trace("1 0 0 1 R extra\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("trailing"), "{}", e.message);
    }

    #[test]
    fn malformed_input_never_panics() {
        for bad in [
            "99999999999999999999999999 0 0 1 R",
            "1 0 0 1",
            "R W R W R",
            "# disks=0 blocks_per_disk=0\n1 0 0 1 R",
            "-1 0 0 1 R",
            "1 0 0 -1 R",
            "\u{0} \u{0}",
        ] {
            let _ = parse_trace(bad);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = parse_trace("# hello\n\n# disks=1 blocks_per_disk=10\n1 0 0 1 R\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.n_disks, 1);
    }
}
