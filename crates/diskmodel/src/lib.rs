//! # diskmodel — parametric magnetic disk drive model
//!
//! Implements the disk the paper simulates (Table 1): a 5400 rpm, ~0.93 GB
//! drive with 1260 cylinders, 48 sectors/track, 512-byte sectors and 15
//! platters (30 recording surfaces), attached to a 10 MB/s channel.
//!
//! The model provides:
//!
//! * [`DiskGeometry`] — static geometry and derived constants (rotation
//!   period, block transfer time, block ↔ cylinder/sector mapping).
//! * [`SeekCurve`] — the paper's seek-time function
//!   `a·√(x−1) + b·(x−1) + c`, with [`SeekCurve::calibrate`] solving `a`, `b`
//!   so that the average seek over uniformly random seeks and the full-stroke
//!   seek match the Table 1 figures (11.2 ms / 28 ms).
//! * [`Disk`] — per-drive dynamic state: arm position, rotational phase,
//!   busy-until horizon, utilization accounting, and service-time computation
//!   for plain reads/writes and read-modify-write accesses.
//! * [`OpQueue`] — a three-band (priority / normal / background) FIFO queue
//!   used for pending operations at each drive.
//! * [`DiskScheduler`] — the pluggable service-discipline seam over those
//!   bands: [`Fcfs`] (the paper's discipline and the default), [`Sstf`],
//!   and [`Scan`], selected by [`Discipline`].
//!
//! Simplifications, documented here once: head-switch and track-crossing
//! overheads inside a multi-block transfer are folded into the linear
//! transfer time; sector servo/settle time is part of the seek-curve constant
//! `c`. Both are below the fidelity the paper itself models.

pub mod disk;
pub mod geometry;
pub mod opqueue;
pub mod scheduler;
pub mod seek;

pub use disk::{rmw_write_complete, AccessKind, AccessTiming, Disk};
pub use geometry::{BlockNo, Cylinder, DiskGeometry};
pub use opqueue::{Band, OpQueue};
pub use scheduler::{Discipline, DiskScheduler, Fcfs, Scan, SchedulerQueue, Sstf};
pub use seek::SeekCurve;
