//! Comments mention HashMap and thread_rng, but comment text is not code.
/* outer /* nested HashMap block comment */ still commented thread_rng */

pub fn demo() -> String {
    let plain = "// not a comment: HashMap<K, V> and thread_rng()";
    let raw = r#"raw "string" with // HashMap and simlint::allow(panic-policy): spoofed"#;
    let hashy = r##"ends with one hash: "# and keeps going"##;
    let escaped = "quote \" then // HashMap";
    format!("{plain}{raw}{hashy}{escaped}")
}
