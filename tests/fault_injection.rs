//! End-to-end fault-injection scenarios: a disk dies mid-run, the array
//! runs degraded, an online rebuild sweeps the lost blocks onto a hot
//! spare, and service returns to healthy — plus transient-error retry and
//! NVRAM battery failover.
//!
//! The paper observes that "large arrays are less reliable and have worse
//! performance during reconstruction following a disk failure"
//! (Section 4.2.1); these tests exercise the machinery that makes that
//! claim measurable. A deliberately small disk geometry keeps whole-disk
//! rebuilds inside a few simulated seconds.

use diskmodel::DiskGeometry;
use raidsim::{CacheConfig, DiskFailure, FaultConfig, Organization, SimConfig, Simulator};
use tracegen::{SynthSpec, Trace};

/// Tiny disk (2 cylinders → 360 blocks) so a full rebuild completes well
/// inside the trace.
fn small_geometry() -> DiskGeometry {
    DiskGeometry {
        cylinders: 2,
        ..DiskGeometry::default()
    }
}

fn small_trace() -> Trace {
    SynthSpec {
        name: "fault-small".into(),
        seed: 0xFA17,
        n_disks: 4,
        blocks_per_disk: small_geometry().blocks_per_disk(),
        n_requests: 400,
        duration_secs: 8.0,
        // Steady arrivals: trace2's 6× busy bursts would dominate the
        // healthy-vs-degraded comparison below.
        busy_speedup: 1.0,
        ..SynthSpec::trace2()
    }
    .generate()
}

fn fault_cfg(org: Organization, fault: FaultConfig) -> SimConfig {
    let mut cfg = SimConfig::with_organization(org);
    cfg.geometry = small_geometry();
    cfg.data_disks_per_array = 4;
    cfg.fault = Some(fault);
    cfg
}

fn fail_disk_at(at_ms: u64) -> FaultConfig {
    FaultConfig {
        disk_failure: Some(DiskFailure {
            array: 0,
            disk: 1,
            at_ms,
        }),
        spare: true,
        rebuild_rate_mbps: 0, // unthrottled: bounded by the disks themselves
        ..FaultConfig::default()
    }
}

#[test]
fn mid_run_failure_rebuilds_onto_spare_and_returns_to_healthy() {
    let trace = small_trace();
    let cfg = fault_cfg(Organization::Raid5 { striping_unit: 1 }, fail_disk_at(1000));
    let report = Simulator::new(cfg, &trace).run();

    // Every request completes despite the mid-run failure.
    assert_eq!(report.requests_completed, trace.len() as u64);

    let f = report.faults.as_ref().expect("fault engine was configured");
    assert!(f.degraded_window_ms > 0.0, "no degraded window recorded");
    assert!(f.rebuild_ms > 0.0, "rebuild took no time");
    assert_eq!(
        f.rebuild_blocks,
        small_geometry().blocks_per_disk(),
        "rebuild must sweep the whole failed disk"
    );
    // The degraded window closes when the rebuild does: the array returned
    // to healthy well before the end of the (5 s + drain) run.
    assert!(
        f.degraded_window_ms >= f.rebuild_ms,
        "window {} ms < rebuild {} ms",
        f.degraded_window_ms,
        f.rebuild_ms
    );
    assert!(
        f.degraded_window_ms < 6000.0,
        "array did not return to healthy while traffic still flowed ({} ms window)",
        f.degraded_window_ms
    );
    // Requests served while degraded/rebuilding pay reconstruction and
    // interference costs the healthy phases do not.
    assert!(f.response_healthy_ms.count() > 0);
    assert!(
        f.response_degraded_ms.count() + f.response_rebuilding_ms.count() > 0,
        "no request was served during the degraded window"
    );
    assert!(
        f.degraded_mean_ms() > f.response_healthy_ms.mean(),
        "degraded mean {:.3} ms not above healthy mean {:.3} ms",
        f.degraded_mean_ms(),
        f.response_healthy_ms.mean()
    );
}

#[test]
fn mirror_rebuilds_faster_than_raid5() {
    let trace = small_trace();
    let raid5 = Simulator::new(
        fault_cfg(Organization::Raid5 { striping_unit: 1 }, fail_disk_at(1000)),
        &trace,
    )
    .run();
    let mirror = Simulator::new(fault_cfg(Organization::Mirror, fail_disk_at(1000)), &trace).run();
    let (r5, mi) = (raid5.faults.unwrap(), mirror.faults.unwrap());
    assert!(r5.rebuild_ms > 0.0 && mi.rebuild_ms > 0.0);
    // Mirror rebuild copies from one surviving partner; RAID5 must read
    // every surviving member of each stripe and XOR — strictly more work
    // and a max-of-N critical path per batch (paper Section 4.2.1).
    assert!(
        mi.rebuild_ms < r5.rebuild_ms,
        "Mirror rebuild ({:.1} ms) not faster than RAID5 ({:.1} ms)",
        mi.rebuild_ms,
        r5.rebuild_ms
    );
    // Under unthrottled rebuild interference, both organizations serve
    // the degraded window slower than healthy traffic.
    for (name, f) in [("RAID5", &r5), ("Mirror", &mi)] {
        assert!(
            f.degraded_mean_ms() > f.response_healthy_ms.mean(),
            "{name}: degraded mean {:.3} ms not above healthy mean {:.3} ms",
            f.degraded_mean_ms(),
            f.response_healthy_ms.mean()
        );
    }
}

#[test]
fn transient_errors_are_retried_and_recovered() {
    let trace = small_trace();
    let cfg = fault_cfg(
        Organization::Raid5 { striping_unit: 1 },
        FaultConfig {
            transient_error_prob: 0.02,
            max_retries: 4,
            ..FaultConfig::default()
        },
    );
    let report = Simulator::new(cfg, &trace).run();
    assert_eq!(report.requests_completed, trace.len() as u64);
    let f = report.faults.unwrap();
    assert!(f.transient_errors > 0, "no transient error was ever drawn");
    assert!(f.retries > 0, "errors were drawn but never retried");
    assert!(
        f.retries <= f.transient_errors,
        "every retry must be driven by an error"
    );
    // At p = 0.02 a run of 5 consecutive failures (~3e-9) cannot happen in
    // a few thousand draws: nothing escalates, no disk fails.
    assert_eq!(f.escalations, 0);
    assert_eq!(f.degraded_window_ms, 0.0);
}

#[test]
fn battery_failure_degrades_cache_to_write_through_and_back() {
    let trace = small_trace();
    let mut cfg = fault_cfg(
        Organization::Raid5 { striping_unit: 1 },
        FaultConfig {
            battery_fail_at_ms: Some(500),
            battery_restore_at_ms: Some(2500),
            ..FaultConfig::default()
        },
    );
    cfg.cache = Some(CacheConfig::default());
    let report = Simulator::new(cfg, &trace).run();
    assert_eq!(report.requests_completed, trace.len() as u64);
    let f = report.faults.unwrap();
    assert!(
        (f.battery_window_ms - 2000.0).abs() < 1e-6,
        "battery outage window {} ms, expected 2000",
        f.battery_window_ms
    );
    assert!(
        f.writes_written_through > 0,
        "no write was forced through during the outage"
    );
}
