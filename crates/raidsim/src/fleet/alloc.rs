//! Allocation planner: tenant demands → virtual array placements.
//!
//! A single-pass best-fit on **bandwidth and capacity**, after Thomasian &
//! Xu's heterogeneous disk array allocation: tenants are considered in
//! declaration order; each is placed on the candidate VA whose residual
//! bandwidth fits tightest (ties: tightest capacity, then lowest VA index).
//! Single-pass keeps the plan a trivially deterministic function of the
//! spec — no backtracking, no randomized restarts — which the fleet's
//! byte-identical serial/parallel contract depends on.
//!
//! The bandwidth model is deliberately first-order: a drive sustains
//! `1 / (third-stroke seek + half rotation + one-block transfer)` random
//! accesses per second, a VA sustains that times its physical drive count,
//! and a tenant *costs* its IOPS weighted by the organization's access
//! amplification (mirrored writes cost 2 physical accesses, parity
//! read-modify-writes cost 4). The simulator then measures what the plan
//! actually delivers — the planner only has to be sane, monotone, and
//! deterministic.

use super::config::{DiskClass, FleetConfig, TenantSpec, VirtualArraySpec};
use crate::config::{CacheConfig, Organization, SimConfig};

/// One planned virtual array: its spec resolved against the disk pool,
/// pinned to a contiguous span of fleet-global logical disks.
#[derive(Clone, Debug)]
pub struct VaPlan {
    pub name: String,
    pub organization: Organization,
    pub disk_class: String,
    /// First fleet-global logical disk of this VA's span.
    pub base_disk: u32,
    /// Span width = logical data disks.
    pub data_disks: u32,
    /// Ready-to-run simulator configuration (shared fleet seed, class
    /// geometry and seek, per-VA cache and fault plan).
    pub config: SimConfig,
    /// Tenant indices placed here, in placement order.
    pub tenants: Vec<usize>,
}

/// The resolved fleet: placements plus the logical-disk geometry the trace
/// router needs.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    pub vas: Vec<VaPlan>,
    /// `placement[t]` is the VA index hosting tenant `t`.
    pub placement: Vec<usize>,
    /// Sum of the VA spans — the master trace's disk count.
    pub total_logical_disks: u32,
    /// Largest `blocks_per_disk` across the classes in use — the master
    /// trace's address cap.
    pub max_blocks_per_disk: u64,
}

/// Nominal random-access rate of one drive of `class`, accesses/second:
/// third-stroke seek + half a rotation + a one-block transfer.
pub fn disk_access_rate(class: &DiskClass) -> f64 {
    let seek_ns = class.seek.seek_ms(class.geometry.cylinders.max(3) / 3) * 1e6;
    let service_ns = seek_ns
        + class.geometry.rotation_ns() as f64 / 2.0
        + class.geometry.block_transfer_ns() as f64;
    1e9 / service_ns
}

/// A tenant's bandwidth cost on a VA of organization `org`, physical
/// accesses per second: reads cost one, writes cost the organization's
/// amplification.
fn tenant_load(t: &TenantSpec, org: Organization) -> f64 {
    t.demand_iops * ((1.0 - t.write_fraction) + t.write_fraction * org.write_amplification())
}

/// Build the per-VA simulator configuration. Shared with
/// [`FleetConfig::validate`] so the spec rejects exactly what the engine
/// would.
pub(super) fn va_sim_config(
    fleet: &FleetConfig,
    va: &VirtualArraySpec,
    class: &DiskClass,
) -> SimConfig {
    SimConfig {
        organization: va.organization,
        data_disks_per_array: va.data_disks,
        geometry: class.geometry.clone(),
        seek: class.seek,
        cache: va.cache_mb.map(|mb| CacheConfig {
            size_mb: mb,
            ..CacheConfig::default()
        }),
        // One seed for the whole fleet: disk models become a pure function
        // of (class, index), so VAs of the same class share a warm pool.
        seed: fleet.seed,
        fault: va.fault,
        ..SimConfig::default()
    }
}

/// Resolve the fleet spec into a plan: validate, pin VA spans, place every
/// tenant by best fit. Errors name the offending tenant and the exhausted
/// resource.
pub fn allocate(fleet: &FleetConfig) -> Result<FleetPlan, String> {
    fleet.validate()?;

    let mut vas = Vec::with_capacity(fleet.arrays.len());
    let mut base = 0u32;
    let mut max_bpd = 0u64;
    // Residual capability per VA: physical accesses/sec and blocks.
    let mut resid_bw = Vec::with_capacity(fleet.arrays.len());
    let mut resid_cap = Vec::with_capacity(fleet.arrays.len());
    for va in &fleet.arrays {
        // simlint::allow(panic-policy): validate() resolved every class name above
        let class = fleet.class(&va.disk_class).expect("validated class");
        let bpd = class.geometry.blocks_per_disk();
        max_bpd = max_bpd.max(bpd);
        resid_bw
            .push(disk_access_rate(class) * va.organization.disks_per_array(va.data_disks) as f64);
        resid_cap.push(va.data_disks as u64 * bpd);
        vas.push(VaPlan {
            name: va.name.clone(),
            organization: va.organization,
            disk_class: va.disk_class.clone(),
            base_disk: base,
            data_disks: va.data_disks,
            config: va_sim_config(fleet, va, class),
            tenants: Vec::new(),
        });
        base += va.data_disks;
    }

    let mut placement = Vec::with_capacity(fleet.tenants.len());
    for (t_idx, t) in fleet.tenants.iter().enumerate() {
        // Best fit: among VAs with room on both axes, the tightest
        // bandwidth fit; ties fall to tightest capacity, then lowest index.
        let mut best: Option<(usize, f64, u64)> = None;
        let mut any_capacity = false;
        for (v, va) in vas.iter().enumerate() {
            if resid_cap[v] < t.capacity_blocks {
                continue;
            }
            any_capacity = true;
            let load = tenant_load(t, va.organization);
            if resid_bw[v] < load {
                continue;
            }
            let slack_bw = resid_bw[v] - load;
            let slack_cap = resid_cap[v] - t.capacity_blocks;
            let tighter = match best {
                None => true,
                Some((_, bw, cap)) => slack_bw < bw || (slack_bw == bw && slack_cap < cap),
            };
            if tighter {
                best = Some((v, slack_bw, slack_cap));
            }
        }
        let Some((v, ..)) = best else {
            let axis = if any_capacity {
                format!(
                    "demand_iops {} exceeds every candidate's residual bandwidth",
                    t.demand_iops
                )
            } else {
                format!(
                    "capacity_blocks {} exceeds every virtual array's residual capacity",
                    t.capacity_blocks
                )
            };
            return Err(format!("tenant {:?}: {axis}", t.id));
        };
        resid_bw[v] -= tenant_load(t, vas[v].organization);
        resid_cap[v] -= t.capacity_blocks;
        vas[v].tenants.push(t_idx);
        placement.push(v);
    }

    Ok(FleetPlan {
        vas,
        placement,
        total_logical_disks: base,
        max_blocks_per_disk: max_bpd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_deterministic_and_covers_every_tenant() {
        let fleet = FleetConfig::demo();
        let a = allocate(&fleet).unwrap();
        let b = allocate(&fleet).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.placement.len(), fleet.tenants.len());
        // Spans are contiguous and disjoint in declaration order.
        let mut expect = 0;
        for va in &a.vas {
            assert_eq!(va.base_disk, expect);
            expect += va.data_disks;
        }
        assert_eq!(a.total_logical_disks, expect);
        // Every placed tenant is recorded on its VA.
        for (t, &v) in a.placement.iter().enumerate() {
            assert!(a.vas[v].tenants.contains(&t));
        }
    }

    #[test]
    fn best_fit_prefers_the_tighter_array() {
        // Two Base VAs on the same class, one half the size: a small tenant
        // must land on the smaller (tighter bandwidth) one.
        let mut fleet = FleetConfig::small();
        fleet.arrays.truncate(2);
        for va in &mut fleet.arrays {
            va.organization = Organization::Base;
            va.disk_class = "t1".into();
            va.fault = None;
            va.cache_mb = None;
        }
        fleet.arrays[0].data_disks = 8;
        fleet.arrays[1].data_disks = 4;
        fleet.tenants.truncate(1);
        fleet.tenants[0].demand_iops = 20.0;
        fleet.tenants[0].capacity_blocks = 10_000;
        let plan = allocate(&fleet).unwrap();
        assert_eq!(
            plan.placement,
            vec![1],
            "small tenant belongs on the tight VA"
        );
    }

    #[test]
    fn exhaustion_errors_name_the_tenant_and_axis() {
        let mut fleet = FleetConfig::small();
        fleet.tenants[0].capacity_blocks = u64::MAX / 2;
        let e = allocate(&fleet).unwrap_err();
        assert!(e.contains("capacity_blocks"), "{e}");
        assert!(e.contains(&fleet.tenants[0].id), "{e}");

        let mut fleet = FleetConfig::small();
        fleet.tenants[0].demand_iops = 1e9;
        let e = allocate(&fleet).unwrap_err();
        assert!(e.contains("demand_iops"), "{e}");
    }

    #[test]
    fn access_rate_orders_disk_classes_sanely() {
        let fleet = FleetConfig::demo();
        let t1 = disk_access_rate(fleet.class("t1").unwrap());
        let fast = disk_access_rate(fleet.class("fast").unwrap());
        assert!(t1 > 10.0 && t1 < 500.0, "t1 rate implausible: {t1}");
        assert!(fast > t1, "the faster class must out-rate Table 1 drives");
    }
}
