//! The cross-file (workspace) rules. Each pass takes the parsed
//! [`crate::WsConfig`], the file units, and the extracted function graph,
//! and returns raw matches as `(file index, rule, line, col)` — directive
//! suppression and level handling happen later in the shared
//! `finish_file` phase, so the escape hatches work identically for
//! per-file and cross-file findings.

pub(crate) mod journal_effect;
pub(crate) mod layer_boundary;

/// A cross-file raw match: (file index, rule, line, col).
pub(crate) type FileMatch = (usize, crate::Rule, u32, u32);
