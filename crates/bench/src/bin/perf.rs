//! `perf` — self-measuring throughput harness for the simulation core.
//!
//! Times the five organizations of the paper, cached and non-cached, on a
//! fixed-seed synthetic workload; reports events/second, wall time, and
//! peak future-event-list depth per run; and writes the result as a
//! `BENCH_N.json` baseline. `--check` replays the measurement and fails
//! when throughput regressed beyond the tolerance — the guard that keeps
//! future PRs from quietly slowing the hot path.
//!
//! ```text
//! perf                          # measure, write BENCH_10.json
//! perf --scale 0.05 --reps 3    # smaller workload, best-of-3 timing
//! perf --check BENCH_10.json    # measure, then gate against a baseline
//! perf --check BENCH_10.json --tolerance 0.5  # cross-machine smoke gate
//! perf --sweep-grid 24          # time sweep::run_all on a mixed grid
//! perf --par-run 8              # add the partitioned-run axis at 8 threads
//! perf --par-run 4 --min-speedup 2.0          # multi-core CI speedup gate
//! perf --fleet-run 4            # fleet axis at 4 VA-level threads
//! perf --fleet-run 0            # disable the fleet axis (on by default)
//! ```
//!
//! `--par-run T` adds a second axis on a *multi-array* Trace 1 workload
//! (13 redundancy groups at the default `--par-scale`): each organization
//! is timed serial and then partitioned across `T` intra-run threads, and
//! the two reports are compared **byte for byte** — any divergence aborts
//! the harness, so every BENCH_8.json row doubles as a determinism proof.
//! Parallel rows report events/sec as *serial-equivalent* events over
//! parallel wall time, plus two instrumentation columns: replay
//! amplification (partition events ÷ merged serial-order events — the
//! pre-split arrival feed keeps it ≤ 1.0, and the harness hard-fails above
//! 1.1) and the flat-encoded journal bytes streamed to the merge.
//! `--min-speedup F` additionally fails the run when no organization's
//! partitioned wall-clock speedup reaches `F` — for CI on multi-core
//! hosts; 1-CPU hosts should omit it and gate on amplification alone.
//!
//! The **fleet axis** (on by default, `--fleet-run T` to set the thread
//! count, `0` to disable) times the 16-VA heterogeneous demo fleet serial
//! and VA-parallel, byte-compares the two fleet reports, and hard-fails if
//! the fleet's replay amplification exceeds 1.1 — the router's pre-split
//! guarantees exactly 1.0 (every routed arrival is owned by one VA feed),
//! so anything above it means the fleet layer started re-executing work.
//!
//! All simulated results (mean response times) are independent of this
//! harness: it times the same deterministic runs the science binaries use.

use bench::perf::{check, PerfReport, PerfRun};
use raidsim::{
    run_all, run_fleet, CacheConfig, FleetConfig, NamedRun, Organization, ParityPlacement,
    SimConfig, Simulator,
};
use std::time::Instant;
use tracegen::SynthSpec;

const BENCH_ID: u64 = 10;

struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for {name}: {v}"))),
            None => default,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: perf [--scale F] [--reps N] [--seed N] [--out PATH]\n\
         \t[--check BASELINE.json] [--tolerance F] [--sweep-grid N] [--threads N]\n\
         \t[--par-run T] [--par-scale F] [--min-speedup F] [--fleet-run T|0]"
    );
    std::process::exit(2)
}

fn organizations() -> [Organization; 5] {
    [
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ]
}

fn config(org: Organization, cached: bool, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::with_organization(org);
    if cached {
        cfg.cache = Some(CacheConfig::default());
    }
    cfg.seed = seed;
    cfg
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.flag("--help") || args.flag("-h") {
        die("help requested");
    }
    let scale: f64 = args.parse("--scale", 1.0);
    if !(scale > 0.0 && scale <= 1.0) {
        die(&format!("--scale {scale} out of range (0, 1]"));
    }
    let reps: usize = args.parse("--reps", 1).max(1);
    let seed: u64 = args.parse("--seed", 7);
    let out_path = args.get("--out").unwrap_or("BENCH_10.json").to_string();
    let tolerance: f64 = args.parse("--tolerance", 0.15);
    let par_threads: usize = args.parse("--par-run", 0);
    let fleet_threads: usize = args.parse("--fleet-run", 2);
    let par_scale: f64 = args.parse("--par-scale", 0.02);
    let min_speedup: f64 = args.parse("--min-speedup", 0.0);
    if !(par_scale > 0.0 && par_scale <= 1.0) {
        die(&format!("--par-scale {par_scale} out of range (0, 1]"));
    }

    eprintln!("generating workload (trace2 @ scale {scale}, seed {seed})…");
    let trace = SynthSpec::trace2().scaled(scale).generate();
    eprintln!("{} requests\n", trace.len());

    if let Some(n) = args.get("--sweep-grid") {
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| die(&format!("bad value for --sweep-grid: {n}")));
        let threads: usize = args.parse("--threads", 0);
        sweep_grid(&trace, n, threads, seed);
        return;
    }

    let mut runs = Vec::new();
    let mut total_events: u64 = 0;
    let mut total_wall = 0.0f64;
    eprintln!(
        "{:<10} {:>6} {:>10} {:>9} {:>12} {:>6} {:>10}",
        "org", "cache", "events", "wall s", "events/s", "peakq", "mean ms"
    );
    for org in organizations() {
        for cached in [false, true] {
            // Best-of-`reps`: the fastest repetition is the least-perturbed
            // measurement of the same deterministic computation.
            let mut best: Option<(f64, raidsim::RunStats, f64)> = None;
            for _ in 0..reps {
                let sim = match Simulator::try_new(config(org, cached, seed), &trace) {
                    Ok(sim) => sim,
                    Err(e) => die(&format!("{} cached={cached}: {e}", org.label())),
                };
                let t0 = Instant::now();
                let (report, stats) = sim.run_instrumented();
                let wall = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(w, _, _)| wall < *w) {
                    best = Some((wall, stats, report.mean_response_ms()));
                }
            }
            let Some((wall, stats, mean_ms)) = best else {
                unreachable!("reps >= 1")
            };
            let eps = stats.events_processed as f64 / wall;
            eprintln!(
                "{:<10} {:>6} {:>10} {:>9.3} {:>12.0} {:>6} {:>10.2}",
                org.label(),
                cached,
                stats.events_processed,
                wall,
                eps,
                stats.peak_pending,
                mean_ms
            );
            total_events += stats.events_processed;
            total_wall += wall;
            runs.push(PerfRun {
                label: org.label().to_string(),
                cached,
                requests: trace.len() as u64,
                events: stats.events_processed,
                wall_secs: wall,
                events_per_sec: eps,
                peak_queue_depth: stats.peak_pending as u64,
                mean_response_ms: mean_ms,
                replay_amplification: 1.0,
                journal_bytes: 0,
            });
        }
    }
    if par_threads > 0 {
        par_axis(
            par_threads,
            par_scale,
            reps,
            seed,
            min_speedup,
            &mut runs,
            &mut total_events,
            &mut total_wall,
        );
    }
    if fleet_threads > 0 {
        fleet_axis(
            fleet_threads,
            reps,
            &mut runs,
            &mut total_events,
            &mut total_wall,
        );
    }

    let report = PerfReport {
        bench_id: BENCH_ID,
        workload: "trace2".to_string(),
        scale,
        runs,
        total_events,
        total_wall_secs: total_wall,
        total_events_per_sec: total_events as f64 / total_wall,
    };
    eprintln!(
        "\nTOTAL: {} events in {:.3} s = {:.0} events/s",
        report.total_events, report.total_wall_secs, report.total_events_per_sec
    );

    // Read the baseline *before* writing the new report: `--check` against
    // the default `--out` path must gate on the committed numbers, not on
    // the file this run just replaced them with.
    let baseline = args.get("--check").map(|baseline_path| {
        let src = match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => die(&format!("cannot read baseline {baseline_path}: {e}")),
        };
        match PerfReport::from_json(&src) {
            Ok(b) => b,
            Err(e) => die(&format!("cannot parse baseline {baseline_path}: {e}")),
        }
    });

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    eprintln!("wrote {out_path}");

    if let Some(baseline) = baseline {
        let baseline_path = args.get("--check").unwrap_or_default();
        match check(&report, &baseline, tolerance) {
            Ok(table) => {
                eprintln!(
                    "\n--check vs {baseline_path} (tolerance {:.0}%): OK",
                    tolerance * 100.0
                );
                eprint!("{table}");
            }
            Err(e) => {
                eprintln!("\n--check vs {baseline_path} FAILED:\n{e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `--par-run T` axis: serial vs partitioned execution of a
/// multi-array Trace 1 workload (13 redundancy groups). Every partitioned
/// run is compared byte-for-byte against its serial reference; any
/// divergence aborts the harness. Parallel rows count *serial-equivalent*
/// events (the useful work) over parallel wall time, and carry the
/// partitioned-path instrumentation: replay amplification (partition
/// events ÷ merged serial-order events; the pre-split arrival feed keeps
/// it ≤ 1.0, and anything above 1.1 aborts) and the flat-encoded journal
/// bytes streamed to the merge. With `min_speedup > 0`, the axis fails
/// unless some organization's wall-clock speedup reaches it.
#[allow(clippy::too_many_arguments)]
fn par_axis(
    threads: usize,
    scale: f64,
    reps: usize,
    seed: u64,
    min_speedup: f64,
    runs: &mut Vec<PerfRun>,
    total_events: &mut u64,
    total_wall: &mut f64,
) {
    eprintln!("\npartitioned-run axis (trace1 @ scale {scale}, {threads} intra-run threads)…");
    let trace = SynthSpec::trace1().scaled(scale).generate();
    eprintln!("{} requests\n", trace.len());
    eprintln!(
        "{:<16} {:>6} {:>10} {:>9} {:>12} {:>8} {:>6} {:>10}",
        "run", "cache", "events", "wall s", "events/s", "speedup", "amp", "journal B"
    );
    let mut best_speedup = 0.0f64;
    for org in organizations() {
        for cached in [false, true] {
            // Serial reference: the timing baseline *and* the byte-identity
            // oracle for the partitioned run.
            let mut serial: Option<(f64, raidsim::RunStats, f64)> = None;
            let mut serial_bytes = String::new();
            for _ in 0..reps {
                let sim = match Simulator::try_new(config(org, cached, seed), &trace) {
                    Ok(sim) => sim,
                    Err(e) => die(&format!("{} cached={cached}: {e}", org.label())),
                };
                let t0 = Instant::now();
                let (report, stats) = sim.run_instrumented();
                let wall = t0.elapsed().as_secs_f64();
                if serial.as_ref().is_none_or(|(w, _, _)| wall < *w) {
                    serial = Some((wall, stats, report.mean_response_ms()));
                    serial_bytes = format!("{report:#?}");
                }
            }
            let Some((s_wall, s_stats, s_mean)) = serial else {
                unreachable!("reps >= 1")
            };
            let mut par: Option<(f64, raidsim::RunStats)> = None;
            for _ in 0..reps {
                let sim = match Simulator::try_new(config(org, cached, seed), &trace) {
                    Ok(sim) => sim,
                    Err(e) => die(&format!("{} cached={cached}: {e}", org.label())),
                };
                let t0 = Instant::now();
                let (report, stats, partitioned) = sim.run_par_instrumented(threads);
                let wall = t0.elapsed().as_secs_f64();
                if !partitioned {
                    die(&format!(
                        "{} cached={cached}: a 13-array run fell back to serial",
                        org.label()
                    ));
                }
                if format!("{report:#?}") != serial_bytes {
                    die(&format!(
                        "{} cached={cached}: parallel report diverged from serial — \
                         determinism violation",
                        org.label()
                    ));
                }
                if par.as_ref().is_none_or(|(w, _)| wall < *w) {
                    par = Some((wall, stats));
                }
            }
            let Some((p_wall, p_stats)) = par else {
                unreachable!("reps >= 1")
            };
            if p_stats.replay_amplification > 1.1 {
                die(&format!(
                    "{} cached={cached}: replay amplification {:.3} exceeds the 1.1 budget — \
                     partitions are executing events the merge does not account for",
                    org.label(),
                    p_stats.replay_amplification
                ));
            }
            best_speedup = best_speedup.max(s_wall / p_wall);
            let events = s_stats.events_processed;
            for (label, wall, stats, speedup) in [
                (format!("{}@ma", org.label()), s_wall, &s_stats, 1.0),
                (
                    format!("{}@par{threads}", org.label()),
                    p_wall,
                    &p_stats,
                    s_wall / p_wall,
                ),
            ] {
                let eps = events as f64 / wall;
                eprintln!(
                    "{:<16} {:>6} {:>10} {:>9.3} {:>12.0} {:>7.2}x {:>6.3} {:>10}",
                    label,
                    cached,
                    events,
                    wall,
                    eps,
                    speedup,
                    stats.replay_amplification,
                    stats.journal_bytes
                );
                // Per-partition breakdown (arrival ownership, journal
                // volume): the direct view of whether the pre-split kept
                // partition work proportional to partition events.
                for (i, p) in stats.partitions.iter().enumerate() {
                    eprintln!(
                        "  └ p{i} arrays {}..{}: {} arrivals, {} events, {} frames, {} journal B",
                        p.arrays.0,
                        p.arrays.1,
                        p.arrivals_owned,
                        p.events_processed,
                        p.journal_frames,
                        p.journal_bytes
                    );
                }
                *total_events += events;
                *total_wall += wall;
                runs.push(PerfRun {
                    label,
                    cached,
                    requests: trace.len() as u64,
                    events,
                    wall_secs: wall,
                    events_per_sec: eps,
                    peak_queue_depth: stats.peak_pending as u64,
                    mean_response_ms: s_mean,
                    replay_amplification: stats.replay_amplification,
                    journal_bytes: stats.journal_bytes,
                });
            }
        }
    }
    if min_speedup > 0.0 && best_speedup < min_speedup {
        die(&format!(
            "best partitioned speedup {best_speedup:.2}x is below the --min-speedup \
             {min_speedup:.2}x gate at {threads} threads"
        ));
    }
}

/// The fleet axis: the 16-VA heterogeneous demo fleet, serial and
/// VA-parallel at `threads` workers. The parallel report must be
/// byte-identical to the serial one, and the fleet's replay amplification
/// is gated at ≤ 1.1 (the router's pre-split makes it exactly 1.0; any
/// excess means VA feeds started overlapping). Rows count serial events
/// over each mode's wall time.
fn fleet_axis(
    threads: usize,
    reps: usize,
    runs: &mut Vec<PerfRun>,
    total_events: &mut u64,
    total_wall: &mut f64,
) {
    let fleet = FleetConfig::demo();
    eprintln!(
        "\nfleet axis ({} VAs, {} tenants, {threads} VA-level threads)…",
        fleet.arrays.len(),
        fleet.tenants.len()
    );
    let timed = |threads: usize| -> (f64, raidsim::FleetReport, raidsim::RunStats) {
        let mut best: Option<(f64, raidsim::FleetReport, raidsim::RunStats)> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (report, stats) =
                run_fleet(&fleet, threads).unwrap_or_else(|e| die(&format!("fleet: {e}")));
            let wall = t0.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(w, ..)| wall < *w) {
                best = Some((wall, report, stats));
            }
        }
        // simlint::allow(panic-policy): reps >= 1, so a best run exists
        best.expect("reps >= 1")
    };
    let (s_wall, s_report, s_stats) = timed(1);
    let (p_wall, p_report, p_stats) = timed(threads);
    if format!("{s_report:#?}") != format!("{p_report:#?}") {
        die("fleet: parallel report diverged from serial — determinism violation");
    }
    if p_stats.replay_amplification > 1.1 {
        die(&format!(
            "fleet: replay amplification {:.3} exceeds the 1.1 budget — \
             VA arrival feeds are overlapping",
            p_stats.replay_amplification
        ));
    }
    let requests: u64 = s_report.requests_completed;
    let events = s_stats.events_processed;
    // Fleet-wide mean response: completion-weighted across VAs.
    let mean_ms = s_report
        .vas
        .iter()
        .map(|v| v.report.mean_response_ms() * v.report.requests_completed as f64)
        .sum::<f64>()
        / requests.max(1) as f64;
    eprintln!(
        "{:<16} {:>6} {:>10} {:>9} {:>12} {:>8} {:>6}",
        "run", "cache", "events", "wall s", "events/s", "speedup", "amp"
    );
    for (label, wall, stats, speedup) in [
        ("fleet@serial".to_string(), s_wall, &s_stats, 1.0),
        (
            format!("fleet@par{threads}"),
            p_wall,
            &p_stats,
            s_wall / p_wall,
        ),
    ] {
        let eps = events as f64 / wall;
        eprintln!(
            "{:<16} {:>6} {:>10} {:>9.3} {:>12.0} {:>7.2}x {:>6.3}",
            label, false, events, wall, eps, speedup, stats.replay_amplification
        );
        *total_events += events;
        *total_wall += wall;
        runs.push(PerfRun {
            label,
            cached: false,
            requests,
            events,
            wall_secs: wall,
            events_per_sec: eps,
            peak_queue_depth: stats.peak_pending as u64,
            mean_response_ms: mean_ms,
            replay_amplification: stats.replay_amplification,
            journal_bytes: stats.journal_bytes,
        });
    }
}

/// Time `sweep::run_all` on a mixed Base/RAID5 grid — the workload shape
/// where static chunking used to idle workers behind a straggler chunk of
/// slow RAID5 runs.
fn sweep_grid(trace: &tracegen::Trace, n: usize, threads: usize, seed: u64) {
    let orgs = [Organization::Base, Organization::Raid5 { striping_unit: 1 }];
    // Front-load the slow RAID5 runs in blocks, the adversarial layout for
    // static chunking: whole chunks of nothing-but-RAID5.
    let runs: Vec<NamedRun<'_>> = (0..n)
        .map(|i| {
            let org = orgs[usize::from(i < n / 2)];
            NamedRun::new(
                format!("{}#{i}", org.label()),
                config(org, false, seed),
                trace,
            )
        })
        .collect();
    let t0 = Instant::now();
    let out = run_all(&runs, threads);
    let wall = t0.elapsed().as_secs_f64();
    let mean: f64 = out
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().map(|r| r.mean_response_ms()))
        .sum::<f64>()
        / out.len() as f64;
    println!(
        "sweep-grid: {} runs ({} Base + {} RAID5), threads={} -> {:.3} s wall (mean resp {:.2} ms)",
        n,
        n - n / 2,
        n / 2,
        threads,
        wall,
        mean
    );
}
