//! RAID5 (rotated parity) and RAID4 (dedicated parity disk) mapping.

use super::{push_merged, Run, StripeMode, StripeWrite, WritePlan};

/// Striped mapping over `n + 1` disks with parity either rotated
/// (left-symmetric RAID5) or pinned to disk `n` (RAID4).
///
/// Stripe `s` holds `n` data units of `su` blocks plus one parity unit; the
/// physical block of any unit of stripe `s` is `s·su + off`, so every disk
/// contributes exactly one unit per stripe and carries `blocks_per_disk`
/// physical blocks total — the `(N+1)/N` capacity overhead of Section 3.2.
#[derive(Clone, Debug)]
pub struct RaidMap {
    pub n: u32,
    pub blocks_per_disk: u64,
    pub su: u32,
    pub rotated: bool,
    /// Whole stripes per disk; a striping unit that does not divide the
    /// disk leaves a sliver (< su blocks) unused at the inner edge.
    pub stripes: u64,
}

impl RaidMap {
    pub fn new(n: u32, blocks_per_disk: u64, striping_unit: u32, rotated: bool) -> RaidMap {
        assert!(striping_unit >= 1);
        let stripes = blocks_per_disk / striping_unit as u64;
        assert!(stripes > 0, "striping unit larger than the disk");
        RaidMap {
            n,
            blocks_per_disk,
            su: striping_unit,
            rotated,
            stripes,
        }
    }

    /// Logical blocks the array can hold (`n` data units per stripe).
    pub fn logical_capacity(&self) -> u64 {
        self.n as u64 * self.stripes * self.su as u64
    }

    #[inline]
    fn stripe_data_blocks(&self) -> u64 {
        self.n as u64 * self.su as u64
    }

    /// Parity disk of stripe `s`.
    #[inline]
    pub fn parity_disk(&self, s: u64) -> u32 {
        if self.rotated {
            self.n - (s % (self.n as u64 + 1)) as u32
        } else {
            self.n
        }
    }

    /// Physical disk of data unit `u` in stripe `s` (left-symmetric layout:
    /// unit 0 sits just after the parity disk, wrapping around).
    #[inline]
    pub fn data_disk(&self, s: u64, u: u32) -> u32 {
        if self.rotated {
            (self.parity_disk(s) + 1 + u) % (self.n + 1)
        } else {
            u
        }
    }

    /// Map one logical array address to (disk, physical block).
    #[inline]
    pub fn locate(&self, laddr: u64) -> (u32, u64) {
        debug_assert!(laddr < self.logical_capacity());
        let s = laddr / self.stripe_data_blocks();
        let w = laddr % self.stripe_data_blocks();
        let u = (w / self.su as u64) as u32;
        let off = w % self.su as u64;
        (self.data_disk(s, u), s * self.su as u64 + off)
    }

    /// Physical data runs of `[laddr, laddr + n)`.
    pub fn data_runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        let mut runs = Vec::with_capacity(2);
        for a in laddr..laddr + n as u64 {
            let (disk, block) = self.locate(a);
            push_merged(&mut runs, disk, block);
        }
        runs
    }

    /// Decompose a write into per-stripe work (Section 2.1's small-write
    /// rule plus the full-stripe and reconstruct fast paths of Section 3.3).
    pub fn write_plan(&self, laddr: u64, n: u32) -> WritePlan {
        let sdb = self.stripe_data_blocks();
        let mut plan = WritePlan::default();
        let end = laddr + n as u64;
        let mut a = laddr;
        while a < end {
            let s = a / sdb;
            let stripe_end = (s + 1) * sdb;
            let chunk_end = end.min(stripe_end);
            plan.stripes.push(self.stripe_write(s, a, chunk_end));
            a = chunk_end;
        }
        plan
    }

    /// Build the stripe-`s` share covering logical `[from, to)` (within the
    /// stripe).
    fn stripe_write(&self, s: u64, from: u64, to: u64) -> StripeWrite {
        let sdb = self.stripe_data_blocks();
        let su = self.su as u64;
        let covered = to - from;
        let mode = if covered == sdb {
            StripeMode::Full
        } else if covered > sdb / 2 {
            StripeMode::Reconstruct
        } else {
            StripeMode::Rmw
        };

        let mut data = Vec::with_capacity(2);
        // Offsets within the striping unit touched by any covered unit.
        let mut off_covered = vec![false; self.su as usize];
        // (unit, off) coverage for reconstruct's complement computation.
        let mut unit_off = vec![false; (self.n as usize) * self.su as usize];
        for a in from..to {
            let (disk, block) = self.locate(a);
            push_merged(&mut data, disk, block);
            let w = a % sdb;
            let u = (w / su) as usize;
            let off = (w % su) as usize;
            off_covered[off] = true;
            unit_off[u * self.su as usize + off] = true;
        }

        let pdisk = self.parity_disk(s);
        let mut parity = Vec::with_capacity(1);
        match mode {
            StripeMode::Full => {
                parity.push(Run {
                    disk: pdisk,
                    block: s * su,
                    nblocks: self.su,
                });
            }
            _ => {
                for (off, &cov) in off_covered.iter().enumerate() {
                    if cov {
                        push_merged(&mut parity, pdisk, s * su + off as u64);
                    }
                }
            }
        }

        let mut extra_reads = Vec::new();
        if mode == StripeMode::Reconstruct {
            // Read every uncovered block at a parity-affected offset.
            for u in 0..self.n {
                let disk = self.data_disk(s, u);
                for (off, &cov) in off_covered.iter().enumerate() {
                    if cov && !unit_off[u as usize * self.su as usize + off] {
                        push_merged(&mut extra_reads, disk, s * su + off as u64);
                    }
                }
            }
        }

        StripeWrite {
            mode,
            data,
            extra_reads,
            parity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn raid5(n: u32, su: u32) -> RaidMap {
        RaidMap::new(n, 240, su, true)
    }

    #[test]
    fn parity_rotates_over_all_disks() {
        let m = raid5(4, 1);
        let pdisks: Vec<u32> = (0..5).map(|s| m.parity_disk(s)).collect();
        assert_eq!(pdisks, vec![4, 3, 2, 1, 0]);
        assert_eq!(m.parity_disk(5), 4, "period N+1");
    }

    #[test]
    fn raid4_parity_is_pinned() {
        let m = RaidMap::new(4, 240, 1, false);
        for s in 0..10 {
            assert_eq!(m.parity_disk(s), 4);
            for u in 0..4 {
                assert_eq!(m.data_disk(s, u), u);
            }
        }
    }

    #[test]
    fn left_symmetric_unit_placement() {
        let m = raid5(4, 1);
        // Stripe 0: parity on disk 4, units on 0,1,2,3.
        assert_eq!(
            (0..4).map(|u| m.data_disk(0, u)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Stripe 1: parity on disk 3, units wrap 4,0,1,2.
        assert_eq!(
            (0..4).map(|u| m.data_disk(1, u)).collect::<Vec<_>>(),
            vec![4, 0, 1, 2]
        );
    }

    #[test]
    fn locate_is_injective_and_avoids_parity() {
        let m = raid5(4, 2);
        let mut seen = std::collections::HashSet::new();
        for laddr in 0..4 * 240u64 {
            let (disk, block) = m.locate(laddr);
            assert!(seen.insert((disk, block)), "collision at laddr {laddr}");
            let s = block / 2;
            assert_ne!(disk, m.parity_disk(s), "data on parity disk");
            assert!(block < 240);
        }
    }

    #[test]
    fn single_block_write_is_rmw_with_one_parity_block() {
        let m = raid5(10, 1);
        let plan = m.write_plan(37, 1);
        assert_eq!(plan.stripes.len(), 1);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Rmw);
        assert_eq!(s.data.len(), 1);
        assert_eq!(s.data[0].nblocks, 1);
        assert_eq!(s.parity.len(), 1);
        assert_eq!(s.parity[0].nblocks, 1);
        // Stripe 3 (37/10): parity block 3 on the stripe's parity disk.
        assert_eq!(s.parity[0].block, 3);
        assert_eq!(s.parity[0].disk, m.parity_disk(3));
        assert!(s.extra_reads.is_empty());
    }

    #[test]
    fn full_stripe_write_needs_no_reads() {
        let m = raid5(4, 2);
        let plan = m.write_plan(16, 8); // stripe 2 exactly (8 data blocks)
        assert_eq!(plan.stripes.len(), 1);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Full);
        assert!(s.extra_reads.is_empty());
        assert_eq!(
            s.parity,
            vec![Run {
                disk: m.parity_disk(2),
                block: 4,
                nblocks: 2
            }]
        );
        let total: u32 = s.data.iter().map(|r| r.nblocks).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn majority_write_reconstructs() {
        let m = raid5(4, 1);
        // Stripe 0 holds laddr 0..4; write 3 of 4 blocks.
        let plan = m.write_plan(0, 3);
        let s = &plan.stripes[0];
        assert_eq!(s.mode, StripeMode::Reconstruct);
        // The single uncovered unit must be read.
        assert_eq!(s.extra_reads.len(), 1);
        assert_eq!(
            s.extra_reads[0],
            Run {
                disk: m.data_disk(0, 3),
                block: 0,
                nblocks: 1
            }
        );
        assert_eq!(s.parity.len(), 1);
    }

    #[test]
    fn exactly_half_write_uses_rmw() {
        let m = raid5(4, 1);
        let plan = m.write_plan(0, 2); // half of 4: "less than half" rule ⇒ RMW
        assert_eq!(plan.stripes[0].mode, StripeMode::Rmw);
    }

    #[test]
    fn multi_stripe_write_splits_per_stripe() {
        let m = raid5(4, 1);
        let plan = m.write_plan(2, 6); // stripe 0 blocks 2..4, stripe 1 blocks 4..8
        assert_eq!(plan.stripes.len(), 2);
        assert_eq!(plan.stripes[0].mode, StripeMode::Rmw);
        assert_eq!(plan.stripes[1].mode, StripeMode::Full);
    }

    #[test]
    fn large_striping_unit_keeps_small_requests_on_one_disk() {
        // The paper's point: with a multi-block striping unit, most small
        // requests are serviced by a single disk.
        let m = raid5(10, 8);
        for laddr in [0u64, 5, 13, 77, 400] {
            let runs = m.data_runs(laddr, 2);
            if laddr % 8 <= 6 {
                assert_eq!(runs.len(), 1, "2-block read split at laddr {laddr}");
            }
        }
    }

    proptest! {
        /// Every write plan covers exactly the written blocks, parity lands
        /// only on the stripe's parity disk, and reconstruct reads never
        /// overlap written data.
        #[test]
        fn prop_write_plan_consistency(
            n in 2u32..12,
            su in proptest::sample::select(vec![1u32, 2, 4, 8]),
            laddr in 0u64..2000,
            len in 1u32..64,
        ) {
            let m = RaidMap::new(n, 7200, su, true);
            prop_assume!(laddr + len as u64 <= n as u64 * 7200);
            let plan = m.write_plan(laddr, len);
            let total: u32 = plan
                .stripes
                .iter()
                .flat_map(|s| s.data.iter())
                .map(|r| r.nblocks)
                .sum();
            prop_assert_eq!(total, len);
            for sw in &plan.stripes {
                // All parity runs on one disk, and none of the data runs
                // touch it.
                let stripe = sw.parity.first().map(|p| p.block / su as u64);
                if let Some(s) = stripe {
                    let pdisk = m.parity_disk(s);
                    for p in &sw.parity {
                        prop_assert_eq!(p.disk, pdisk);
                    }
                    for d in &sw.data {
                        prop_assert_ne!(d.disk, pdisk);
                    }
                    for r in &sw.extra_reads {
                        prop_assert_ne!(r.disk, pdisk);
                        // Extra reads never overlap written data.
                        for d in &sw.data {
                            let overlap = r.disk == d.disk
                                && r.block < d.block + d.nblocks as u64
                                && d.block < r.block + r.nblocks as u64;
                            prop_assert!(!overlap);
                        }
                    }
                }
                match sw.mode {
                    StripeMode::Full => prop_assert!(sw.extra_reads.is_empty()),
                    StripeMode::Rmw => prop_assert!(sw.extra_reads.is_empty()),
                    StripeMode::Reconstruct => {}
                }
            }
        }

        /// locate() round-trips through distinct physical locations.
        #[test]
        fn prop_locate_injective(
            n in 2u32..8,
            su in proptest::sample::select(vec![1u32, 2, 4]),
        ) {
            let bpd = 240u64;
            let m = RaidMap::new(n, bpd, su, true);
            let mut seen = std::collections::HashSet::new();
            for laddr in 0..n as u64 * bpd {
                prop_assert!(seen.insert(m.locate(laddr)));
            }
        }
    }
}
