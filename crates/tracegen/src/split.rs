//! Group-indexed views over a trace's arrival stream.
//!
//! The parallel simulator partitions a run by redundancy group: each
//! partition owns a contiguous range of arrays and must consume exactly the
//! arrivals addressed to it, in global trace order, without scanning the
//! arrivals it does not own. [`Trace::split_arrivals`] computes that view
//! once, up front: for every group, the (sorted, therefore order-preserving)
//! list of indices into `trace.records` whose record the group owns.
//!
//! The split is a *view* — indices, not copied records — so the parsed
//! trace itself stays shared and immutable behind a borrow or `Arc`.

use crate::record::{Trace, TraceRecord};

/// Per-group index lists produced by [`Trace::split_arrivals`]: `groups[g]`
/// holds the indices of every record assigned to group `g`, ascending.
///
/// Invariant (property-tested): the lists are pairwise disjoint and their
/// union is exactly `0..trace.len()` — no record is lost, duplicated, or
/// reordered relative to the global stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalSplit {
    groups: Vec<Vec<u32>>,
}

impl ArrivalSplit {
    /// Index list for one group, ascending trace order.
    #[inline]
    pub fn group(&self, g: usize) -> &[u32] {
        &self.groups[g]
    }

    /// Number of groups the trace was split into.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Move one group's index list out (leaves it empty) — lets each
    /// partition take ownership of its own list without cloning.
    #[inline]
    pub fn take_group(&mut self, g: usize) -> Vec<u32> {
        std::mem::take(&mut self.groups[g])
    }

    /// Per-group record counts, in group order.
    pub fn counts(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }
}

impl Trace {
    /// Split the arrival stream into `n_groups` disjoint, order-preserving
    /// index lists using `group_of` to assign each record to a group.
    ///
    /// `group_of` must return a value `< n_groups` for every record; out of
    /// range is a caller bug and panics. A single forward pass, so the
    /// per-group lists are ascending by construction and the concatenation
    /// of all lists sorted by index reproduces `0..len` exactly.
    pub fn split_arrivals<F>(&self, n_groups: usize, mut group_of: F) -> ArrivalSplit
    where
        F: FnMut(&TraceRecord) -> usize,
    {
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
        // Records spread roughly evenly; reserving the mean avoids most
        // regrowth without overcommitting on skewed groupings.
        if let Some(per) = self.records.len().checked_div(n_groups) {
            for g in &mut groups {
                g.reserve(per + 1);
            }
        }
        for (i, r) in self.records.iter().enumerate() {
            let g = group_of(r);
            assert!(
                g < n_groups,
                "group_of returned {g} for n_groups {n_groups}"
            );
            groups[g].push(i as u32);
        }
        ArrivalSplit { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessType;
    use simkit::SimTime;

    fn toy_trace(n_disks: u32, n_records: usize) -> Trace {
        let mut t = Trace::new(n_disks, 1_000);
        for i in 0..n_records {
            t.records.push(TraceRecord {
                at: SimTime::from_ns(i as u64 * 17),
                // Deterministic pseudo-scatter across disks.
                disk: ((i as u32).wrapping_mul(2_654_435_761)) % n_disks,
                block: (i as u64 * 37) % 1_000,
                nblocks: 1 + (i as u32 % 4),
                kind: if i % 3 == 0 {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
            });
        }
        t
    }

    /// The split is an exact partition: disjoint, exhaustive, ascending.
    #[test]
    fn split_partitions_exactly() {
        let t = toy_trace(12, 500);
        let split = t.split_arrivals(5, |r| (r.disk as usize) % 5);
        assert_eq!(split.n_groups(), 5);
        let mut all: Vec<u32> = Vec::new();
        for g in 0..5 {
            let idx = split.group(g);
            assert!(
                idx.windows(2).all(|w| w[0] < w[1]),
                "group {g} not ascending"
            );
            assert!(idx
                .iter()
                .all(|&i| (t.records[i as usize].disk as usize) % 5 == g));
            all.extend_from_slice(idx);
        }
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<u32>>());
    }

    #[test]
    fn single_group_gets_everything_in_order() {
        let t = toy_trace(3, 40);
        let mut split = t.split_arrivals(1, |_| 0);
        assert_eq!(split.take_group(0), (0..40).collect::<Vec<u32>>());
        assert!(
            split.group(0).is_empty(),
            "take_group leaves the list empty"
        );
    }

    #[test]
    fn empty_trace_splits_into_empty_groups() {
        let t = Trace::new(4, 100);
        let split = t.split_arrivals(3, |r| r.disk as usize % 3);
        assert_eq!(split.counts(), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "group_of returned")]
    fn out_of_range_group_panics() {
        let t = toy_trace(4, 4);
        let _ = t.split_arrivals(2, |r| r.disk as usize);
    }
}
