//! Offline stand-in for the slice of `serde` this workspace touches.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer is
//! ever invoked — there is no `serde_json` in the tree), so the traits are
//! markers with blanket impls and the derives are no-ops. Swapping the real
//! serde back in requires only restoring the registry dependency.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
