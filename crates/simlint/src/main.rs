//! CLI for the simlint determinism pass.
//!
//! ```text
//! cargo run -p simlint -- --deny                 # CI gate: everything denied
//! cargo run -p simlint -- --warn hash-collection # demote one rule
//! cargo run -p simlint -- --format json          # machine-readable output
//! cargo run -p simlint -- path/to/file.rs        # explicit targets
//! ```

use simlint::{analyze_paths, exit_code, to_json, Config, Level, Rule, RULES};
use std::path::PathBuf;

/// The sim-core crates: the determinism surface of the workspace. The
/// experiment harness (`bench`), the stats crate, and the vendored stand-ins
/// are driver/reporting code and may use wall clocks freely.
const SIM_CORE: [&str; 6] = [
    "crates/simkit/src",
    "crates/raidsim/src",
    "crates/diskmodel/src",
    "crates/nvcache/src",
    "crates/iochannel/src",
    "crates/tracegen/src",
];

const USAGE: &str = "\
simlint — determinism & invariant lints for the sim-core crates

USAGE:
    cargo run -p simlint -- [OPTIONS] [PATHS…]

OPTIONS:
    --deny [RULE]     enforce every rule (or just RULE) as an error
    --warn [RULE]     report every rule (or just RULE) without failing
    --allow RULE      disable RULE entirely
    --format FMT      `text` (default) or `json`
    --root DIR        workspace root (default: autodetected)
    --list-rules      print the rules and their default levels
    -h, --help        this help

With no PATHS, the six sim-core crates are linted. A site opts out with
`// simlint::allow(<rule>): <reason>` on the offending or preceding line.";

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("simlint: error: {e}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<i32, String> {
    let mut cfg = Config::default();
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" | "--warn" | "--allow" => {
                let level = match arg.as_str() {
                    "--deny" => Level::Deny,
                    "--warn" => Level::Warn,
                    _ => Level::Allow,
                };
                // An immediately following rule name scopes the flag; plain
                // `--deny`/`--warn` applies to every rule.
                let scoped = args.peek().and_then(|next| Rule::from_name(next));
                if scoped.is_some() {
                    args.next();
                }
                match scoped {
                    Some(rule) => cfg.set_level(rule, level),
                    None if level == Level::Allow => {
                        return Err("--allow requires a rule name (refusing to disable \
                                    every rule at once)"
                            .into());
                    }
                    None => cfg.set_all(level),
                }
            }
            "--format" => {
                let fmt = args.next().ok_or("--format requires `text` or `json`")?;
                match fmt.as_str() {
                    "json" => format_json = true,
                    "text" => format_json = false,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ));
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:<16} (default: {})", r.name(), r.default_level().name());
                    println!("    {}", r.hint());
                }
                return Ok(0);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    // Workspace root: the parent of this crate's `crates/` directory, so
    // the tool works from any invocation directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives at <root>/crates/simlint")
            .to_path_buf()
    });
    let roots: Vec<PathBuf> = if paths.is_empty() {
        SIM_CORE.iter().map(|p| root.join(p)).collect()
    } else {
        paths
    };

    let diags = analyze_paths(&roots, &root, &cfg).map_err(|e| e.to_string())?;

    if format_json {
        println!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}\n");
        }
        let denies = diags.iter().filter(|d| d.level == Level::Deny).count();
        let warns = diags.len() - denies;
        eprintln!(
            "simlint: {} file root(s) checked — {denies} error(s), {warns} warning(s)",
            roots.len()
        );
    }
    Ok(exit_code(&diags))
}
