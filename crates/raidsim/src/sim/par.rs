//! Deterministic intra-run parallelism: partitioned execution with an
//! exact commit-order replay merge.
//!
//! Arrays interact only through the shared trace (Section 3.2): no disk,
//! channel, buffer pool, cache, or spool is shared between redundancy
//! groups, and a request touches exactly one array. That makes the event
//! timeline *partitionable*: split the arrays into contiguous groups, give
//! each group to a thread running a full [`Simulator`] over the whole
//! trace, and have each partition execute foreign arrivals as *stubs* that
//! advance the trace cursor and the arrival chain but touch nothing else.
//! Every partition then schedules its own events in exactly the relative
//! order the serial run would have, because the only cross-partition
//! coupling — the arrival chain — is replicated identically everywhere.
//! This is conservative parallel discrete-event simulation with a
//! replicated input stream: each partition's lookahead is the entire
//! trace, so no synchronization is ever needed during execution.
//!
//! Determinism is not assumed — it is *replayed and checked*. Each
//! partition records an [`ExecFrame`] (child schedule times, cancels) plus
//! a [`ParNote`] (statistics pushes, in-flight delta) per executed event.
//! The merge then reconstructs the serial run's global event order
//! symbolically: a priority queue keyed by `(time, global schedule seq)`
//! pops symbolic events; each pop consumes the owning partition's next
//! journal frame (asserting the times agree — a desync is a bug, not a
//! tolerance) and turns the frame's children into new symbolic events with
//! serial-order sequence numbers. Statistics pushes are replayed into
//! fresh accumulators in merged order, so every order-sensitive
//! accumulator (Welford, histogram) receives bit-identical operands in the
//! serial sequence and the final report serializes byte-for-byte equal to
//! the serial run's.
//!
//! Two asymmetries need care:
//!
//! * **Arrivals** exist in every partition. A global arrival consumes one
//!   frame from *each* partition; only the owner's children become
//!   symbolic events (stub children are discarded — they do not exist in
//!   the serial run — but still consume the stub partition's schedule
//!   ordinals so cancel bookkeeping stays aligned).
//! * **Destage ticks** reschedule themselves while *global* work remains,
//!   but a partition only sees its own in-flight count, so its local chain
//!   can end while the serial chain would keep ticking (idle ticks that
//!   schedule nothing but their successor). The merge extends such chains
//!   *virtually*, reproducing the serial run's trailing ticks — and its
//!   final clock value, which the report's utilization denominators use.
//!
//! Runs that observe global state mid-run (periodic sampler, event log)
//! or couple arrays through the controller (battery failover flushes every
//! cache; transient-error escalation consults the global failed-disk
//! gate) are not partitionable and fall back to the serial path — with
//! one exception: a single injected disk failure is fine, because every
//! consequence (aborts, degraded planning, rebuild) is confined to the
//! failed array's partition.

use super::*;
use crate::report::PhaseSample as Phase;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Partition-mode state hung off the [`Simulator`]: the owned array range
/// and the journal note for the event currently executing.
pub(super) struct ParState {
    /// First owned array.
    pub(super) lo: u32,
    /// One past the last owned array.
    pub(super) hi: u32,
    pub(super) note: ParNote,
}

/// What one executed event did at the simulation layer (the engine-level
/// [`ExecFrame`] covers schedules/cancels): every statistics push, the
/// in-flight delta, and the markers the merge keys off.
#[derive(Default)]
pub(super) struct ParNote {
    pub(super) pushes: Vec<StatPush>,
    pub(super) inflight_delta: i32,
    /// This event was the trace-arrival event (real or stub).
    pub(super) is_arrive: bool,
    /// This event was a destage tick; the payload is whether it rescheduled
    /// itself (its local work-left decision).
    pub(super) tick_resched: Option<bool>,
}

/// One order-sensitive statistics push, journaled with the exact operands
/// so the merge can replay it bit-identically in merged order.
pub(super) enum StatPush {
    /// A request finished: response-time, histogram, per-window, and phase
    /// pushes all derive from these four values in a fixed sequence.
    Complete {
        ms: f64,
        is_read: bool,
        window: u8,
        phase: Phase,
    },
    /// Per-band queue depths observed at one dispatch decision.
    QDepth([f64; 3]),
    /// Arm travel of one dispatched op.
    Seek(f64),
}

/// Everything a finished partition hands to the merge: its journal and the
/// final state of the hardware it owned.
struct PartOut {
    roots: simkit::ExecFrame,
    journal: Vec<(simkit::ExecFrame, ParNote)>,
    disks: Vec<Disk>,
    channels: Vec<Channel>,
    caches: Vec<NvCache>,
    spools: Vec<ParitySpool>,
    disk_counts: DiskCounters,
    disk_ops: u64,
    buffer_waits: u64,
    spool_stalls: u64,
    fault: Option<FaultState>,
    events_processed: u64,
    peak_pending: usize,
}

/// A symbolic event in the merge's replayed global order. Ordering is
/// `(at, gseq)` — exactly the event queue's `(time, schedule seq)` tie
/// rule — inverted so a max-heap pops the earliest.
struct Sym {
    at: SimTime,
    gseq: u64,
    kind: SymKind,
}

enum SymKind {
    /// A global trace arrival: consumes one frame from every partition.
    Arrive,
    /// An event owned by one partition, tagged with its schedule ordinal
    /// there (for cancel matching).
    Local { part: usize, ord: u64 },
    /// A serial-only trailing destage tick (see module docs): consumes no
    /// frame, schedules nothing but its successor.
    VirtualTick,
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        self.at == other.at && self.gseq == other.gseq
    }
}
impl Eq for Sym {}
impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest.
        (other.at, other.gseq).cmp(&(self.at, self.gseq))
    }
}

impl<'t> Simulator<'t> {
    /// Run to completion, executing the arrays' timelines on up to
    /// `threads` worker threads when the configuration permits, and
    /// produce a report byte-identical to [`Simulator::run`]'s.
    ///
    /// Falls back to the serial path (identical results, one thread) when
    /// `threads <= 1` or the run is not partitionable — see
    /// [`Simulator::partitionable`].
    pub fn run_par(self, threads: usize) -> SimReport {
        self.run_par_instrumented(threads).0
    }

    /// [`Simulator::run_par`] plus engine counters and whether the run
    /// actually executed in parallel. In a parallel run
    /// `events_processed` sums every partition's events — stub arrivals
    /// included, so it slightly exceeds the serial count.
    pub fn run_par_instrumented(self, threads: usize) -> (SimReport, RunStats, bool) {
        if threads <= 1 || !self.partitionable() {
            let (report, stats) = self.run_instrumented();
            return (report, stats, false);
        }
        let nparts = threads.min(self.arrays as usize);
        let ranges = partition_ranges(self.arrays, nparts);
        let trace = self.trace;
        let parts: Vec<PartOut> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let cfg = self.cfg.clone();
                    s.spawn(move || {
                        // The parent simulator already validated this exact
                        // configuration, so construction cannot fail.
                        Simulator::try_new(cfg, trace)
                            // simlint::allow(panic-policy): a partition panic must propagate — a partial merge would fabricate results
                            .expect("partition rebuilds a validated config")
                            .run_as_partition(lo, hi)
                    })
                })
                .collect();
            handles
                .into_iter()
                // simlint::allow(panic-policy): a partition panic must propagate — a partial merge would fabricate results
                .map(|h| h.join().expect("partition thread panicked"))
                .collect()
        });
        let (report, stats) = self.merge(&ranges, parts);
        (report, stats, true)
    }

    /// Whether this run can be split into per-array-group partitions with
    /// identical results. Disqualifiers are the features that observe or
    /// mutate *global* state mid-run; each falls back to serial rather
    /// than silently diverging.
    fn partitionable(&self) -> bool {
        self.arrays > 1
            && !self.trace.records.is_empty()
            // The sampler and event log observe all arrays at global times.
            && self.sample_period_ns == 0
            && self.event_log.is_none()
            && self.fault.as_ref().is_none_or(|f| {
                // Transient errors can escalate to a failure through a
                // *global* single-failure gate; battery failover flushes
                // every array's cache from one event. A single injected
                // disk failure, by contrast, is wholly owned by the failed
                // array's partition.
                f.fcfg.transient_error_prob == 0.0
                    && f.fcfg.battery_fail_at_ms.is_none()
                    && f.fcfg.battery_restore_at_ms.is_none()
            })
    }

    /// Execute this simulator as the partition owning arrays `lo..hi`,
    /// journaling every event, and return the journal plus final state.
    fn run_as_partition(mut self, lo: u32, hi: u32) -> PartOut {
        self.par = Some(Box::new(ParState {
            lo,
            hi,
            note: ParNote::default(),
        }));
        self.engine.set_recording(true);
        // Roots in the serial order, filtered to what this partition owns.
        // The arrival chain is replicated in *every* partition.
        if let Some(first) = self.trace.records.first() {
            self.engine.schedule_at(first.at, Ev::Arrive);
        }
        if self.cfg.cache.is_some() {
            for a in lo..hi {
                self.engine
                    .schedule_after(self.destage_period_ns, Ev::DestageTick { array: a });
            }
        }
        let fault_evs: Vec<(SimTime, FaultKind)> = match self.fault.as_ref() {
            Some(fs) => fs
                .plan
                .events()
                .iter()
                .filter_map(|e| match *e {
                    FaultEvent::DiskFail { array, disk, at } if (lo..hi).contains(&array) => {
                        Some((
                            at,
                            FaultKind::DiskFail {
                                gdisk: array * self.dpa + disk,
                            },
                        ))
                    }
                    // Foreign disk failures belong to their own partition;
                    // battery events are excluded by `partitionable`.
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for (at, kind) in fault_evs {
            self.engine.schedule_at(at, Ev::Fault(kind));
        }
        let roots = self.engine.take_frame();

        let mut journal = Vec::new();
        while let Some(ev) = self.engine.next_event() {
            self.dispatch(ev);
            let frame = self.engine.take_frame();
            // simlint::allow(panic-policy): partition mode was set five lines up; losing it is unreachable
            let note = std::mem::take(&mut self.par.as_deref_mut().expect("partition mode").note);
            journal.push((frame, note));
        }
        debug_assert_eq!(self.inflight, 0, "partition left requests in flight");
        debug_assert_eq!(self.ops.len(), 0, "partition leaked disk ops");

        let Simulator {
            engine,
            disks,
            channels,
            caches,
            spools,
            disk_counts,
            disk_ops,
            buffer_waits,
            spool_stalls,
            fault,
            ..
        } = self;
        PartOut {
            roots,
            journal,
            disks,
            channels,
            caches,
            spools,
            disk_counts,
            disk_ops,
            buffer_waits,
            spool_stalls,
            fault,
            events_processed: engine.events_processed(),
            peak_pending: engine.peak_pending(),
        }
    }

    /// Replay the partitions' journals in the serial global order, graft
    /// their final hardware state onto this (never-run) simulator, and
    /// assemble the report.
    fn merge(mut self, ranges: &[(u32, u32)], mut parts: Vec<PartOut>) -> (SimReport, RunStats) {
        let nparts = parts.len();
        let records = &self.trace.records;
        let part_of = |array: u32| -> usize {
            ranges
                .iter()
                .position(|&(lo, hi)| (lo..hi).contains(&array))
                // simlint::allow(panic-policy): every array is covered by construction of `ranges`
                .expect("array not covered by any partition")
        };

        // --- Symbolic roots, in the serial scheduling order -------------
        let mut heap: BinaryHeap<Sym> = BinaryHeap::new();
        let mut gseq: u64 = 0;
        // Next schedule ordinal per partition. Every partition journaled
        // the arrival root as its ordinal 0.
        let mut ordc: Vec<u64> = vec![1; nparts];
        heap.push(Sym {
            at: records[0].at,
            gseq,
            kind: SymKind::Arrive,
        });
        gseq += 1;
        let has_cache = self.cfg.cache.is_some();
        if has_cache {
            let tick0 = SimTime::from_ns(self.destage_period_ns);
            for a in 0..self.arrays {
                let p = part_of(a);
                heap.push(Sym {
                    at: tick0,
                    gseq,
                    kind: SymKind::Local {
                        part: p,
                        ord: ordc[p],
                    },
                });
                gseq += 1;
                ordc[p] += 1;
            }
        }
        if let Some(fs) = self.fault.as_ref() {
            for e in fs.plan.events() {
                if let FaultEvent::DiskFail { array, at, .. } = *e {
                    let p = part_of(array);
                    heap.push(Sym {
                        at,
                        gseq,
                        kind: SymKind::Local {
                            part: p,
                            ord: ordc[p],
                        },
                    });
                    gseq += 1;
                    ordc[p] += 1;
                }
            }
        }
        for (p, out) in parts.iter().enumerate() {
            assert_eq!(
                out.roots.children.len() as u64,
                ordc[p],
                "partition {p} scheduled an unexpected root set"
            );
        }

        // --- Replay -----------------------------------------------------
        let mut cursor = vec![0usize; nparts];
        let mut cancelled: std::collections::BTreeSet<(usize, u64)> = Default::default();
        let mut arrive_idx = 0usize;
        let mut global_inflight: i64 = 0;
        let mut last_time = SimTime::ZERO;
        let period = self.destage_period_ns;

        while let Some(sym) = heap.pop() {
            if let SymKind::Local { part, ord } = sym.kind {
                if cancelled.remove(&(part, ord)) {
                    continue; // never executed, in serial or in the partition
                }
            }
            last_time = sym.at;
            match sym.kind {
                SymKind::Arrive => {
                    let rec = records[arrive_idx];
                    let owner = part_of(rec.disk / self.n);
                    let chain = arrive_idx + 1 < records.len();
                    for p in 0..nparts {
                        let (frame, note) = &parts[p].journal[cursor[p]];
                        cursor[p] += 1;
                        assert!(
                            note.is_arrive && frame.at == sym.at,
                            "partition {p} desynced at arrival {arrive_idx}: \
                             frame at {:?}, expected arrival at {:?}",
                            frame.at,
                            sym.at
                        );
                        if p == owner {
                            global_inflight += note.inflight_delta as i64;
                            for push in &note.pushes {
                                self.apply_push(push);
                            }
                            for (i, &child_at) in frame.children.iter().enumerate() {
                                let ord = ordc[p];
                                ordc[p] += 1;
                                let kind = if i == 0 && chain {
                                    // The chain's next arrival is always the
                                    // handler's first schedule.
                                    SymKind::Arrive
                                } else {
                                    SymKind::Local { part: p, ord }
                                };
                                heap.push(Sym {
                                    at: child_at,
                                    gseq,
                                    kind,
                                });
                                gseq += 1;
                            }
                            for &c in &frame.cancels {
                                cancelled.insert((p, c));
                            }
                        } else {
                            // Stub: its only child is its copy of the chain,
                            // which does not exist in the serial order. It
                            // still consumed schedule ordinals.
                            debug_assert!(frame.cancels.is_empty());
                            ordc[p] += frame.children.len() as u64;
                        }
                    }
                    arrive_idx += 1;
                }
                SymKind::Local { part: p, .. } => {
                    let (frame, note) = &parts[p].journal[cursor[p]];
                    cursor[p] += 1;
                    assert!(
                        !note.is_arrive && frame.at == sym.at,
                        "partition {p} desynced: frame at {:?}, expected {:?}",
                        frame.at,
                        sym.at
                    );
                    global_inflight += note.inflight_delta as i64;
                    for push in &note.pushes {
                        self.apply_push(push);
                    }
                    for &child_at in &frame.children {
                        let ord = ordc[p];
                        ordc[p] += 1;
                        heap.push(Sym {
                            at: child_at,
                            gseq,
                            kind: SymKind::Local { part: p, ord },
                        });
                        gseq += 1;
                    }
                    for &c in &frame.cancels {
                        cancelled.insert((p, c));
                    }
                    // A tick that ended its local chain while global work
                    // remains: the serial run would have kept ticking idly.
                    if note.tick_resched == Some(false)
                        && (arrive_idx < records.len() || global_inflight > 0)
                    {
                        heap.push(Sym {
                            at: SimTime::from_ns(sym.at.as_ns() + period),
                            gseq,
                            kind: SymKind::VirtualTick,
                        });
                        gseq += 1;
                    }
                }
                SymKind::VirtualTick => {
                    // The serial tick at this time finds nothing dirty (its
                    // array went idle when its partition's chain ended) and
                    // reschedules while arrivals or in-flight work remain.
                    if arrive_idx < records.len() || global_inflight > 0 {
                        heap.push(Sym {
                            at: SimTime::from_ns(sym.at.as_ns() + period),
                            gseq,
                            kind: SymKind::VirtualTick,
                        });
                        gseq += 1;
                    }
                }
            }
        }
        for (p, out) in parts.iter().enumerate() {
            assert_eq!(
                cursor[p],
                out.journal.len(),
                "partition {p} journaled events the merge never consumed"
            );
        }
        assert_eq!(global_inflight, 0, "merged run left requests in flight");

        // --- Graft final hardware state ---------------------------------
        let mut events_processed = 0;
        let mut peak_pending = 0;
        for (p, part) in parts.iter_mut().enumerate() {
            let (lo, hi) = ranges[p];
            for a in lo..hi {
                let ai = a as usize;
                std::mem::swap(&mut self.channels[ai], &mut part.channels[ai]);
                if !self.caches.is_empty() {
                    std::mem::swap(&mut self.caches[ai], &mut part.caches[ai]);
                }
                if !self.spools.is_empty() {
                    std::mem::swap(&mut self.spools[ai], &mut part.spools[ai]);
                }
            }
            for g in (lo * self.dpa)..(hi * self.dpa) {
                let gi = g as usize;
                std::mem::swap(&mut self.disks[gi], &mut part.disks[gi]);
                self.disk_counts.add(gi, part.disk_counts.counts()[gi]);
            }
            self.disk_ops += part.disk_ops;
            self.buffer_waits += part.buffer_waits;
            self.spool_stalls += part.spool_stalls;
            events_processed += part.events_processed;
            peak_pending = peak_pending.max(part.peak_pending);
        }
        // Fault counters live with the partition that owned the failure
        // (only it aborted, re-planned, or rebuilt anything); the per-window
        // response accumulators were already replayed above.
        if let Some(dst) = self.fault.as_mut() {
            let src = parts
                .iter()
                .filter_map(|p| p.fault.as_ref())
                .find(|f| f.failed_at.is_some());
            if let Some(f) = src {
                dst.failed_at = f.failed_at;
                dst.healthy_at = f.healthy_at;
                dst.rebuild_started = f.rebuild_started;
                dst.rebuild_done = f.rebuild_done;
                dst.rebuild_active = f.rebuild_active;
                dst.rebuild_cursor = f.rebuild_cursor;
                dst.step_started = f.step_started;
                dst.rebuild_blocks = f.rebuild_blocks;
                dst.transient_errors = f.transient_errors;
                dst.retries = f.retries;
                dst.escalations = f.escalations;
                dst.ops_aborted = f.ops_aborted;
                dst.ops_replayed = f.ops_replayed;
                dst.writes_written_through = f.writes_written_through;
            }
        }
        self.engine.fast_forward(last_time);
        let stats = RunStats {
            events_processed,
            peak_pending,
        };
        (self.report(), stats)
    }

    /// Replay one journaled statistics push — the same sequence of
    /// accumulator operations `finalize_request` / `try_start` performed,
    /// with the same operands, now in merged order.
    fn apply_push(&mut self, push: &StatPush) {
        match *push {
            StatPush::Complete {
                ms,
                is_read,
                window,
                ref phase,
            } => {
                self.resp_all.push(ms);
                self.hist.record(ms);
                self.completed += 1;
                if let Some(f) = self.fault.as_mut() {
                    match window {
                        0 => f.resp_healthy.push(ms),
                        1 => f.resp_degraded.push(ms),
                        _ => f.resp_rebuilding.push(ms),
                    }
                }
                if is_read {
                    self.resp_reads.push(ms);
                    self.completed_reads += 1;
                    self.phase_reads.push(phase);
                } else {
                    self.resp_writes.push(ms);
                    self.completed_writes += 1;
                    self.phase_writes.push(phase);
                }
            }
            StatPush::QDepth(depths) => {
                for (i, &d) in depths.iter().enumerate() {
                    self.sched_qdepth[i].push(d);
                }
            }
            StatPush::Seek(d) => self.sched_seek_cyl.push(d),
        }
    }
}

/// Split `arrays` into `nparts` contiguous, maximally balanced ranges.
fn partition_ranges(arrays: u32, nparts: usize) -> Vec<(u32, u32)> {
    let nparts = nparts as u32;
    let base = arrays / nparts;
    let rem = arrays % nparts;
    let mut out = Vec::with_capacity(nparts as usize);
    let mut lo = 0;
    for i in 0..nparts {
        let hi = lo + base + u32::from(i < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::partition_ranges;

    #[test]
    fn ranges_cover_everything_contiguously() {
        for arrays in 1..40u32 {
            for nparts in 1..=arrays as usize {
                let r = partition_ranges(arrays, nparts);
                assert_eq!(r.len(), nparts);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, arrays);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap between partitions");
                }
                let sizes: Vec<u32> = r.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced split: {sizes:?}");
            }
        }
    }
}
