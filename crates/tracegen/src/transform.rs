//! Transforms over existing traces (synthetic or parsed).

use crate::record::Trace;
use simkit::SimTime;

/// Scale arrival intensity by `factor` (> 1 speeds the trace up, < 1 slows
/// it down), exactly the experiment of Sections 4.2.4 and 4.4.3. Addresses,
/// mix and ordering are untouched; arrival times are divided by `factor`.
pub fn at_speed(trace: &Trace, factor: f64) -> Trace {
    assert!(factor > 0.0);
    let mut out = trace.clone();
    for r in &mut out.records {
        out_time(r, factor);
    }
    out
}

fn out_time(r: &mut crate::record::TraceRecord, factor: f64) {
    r.at = SimTime::from_ns((r.at.as_ns() as f64 / factor).round() as u64);
}

/// Keep only the first `n` requests.
pub fn truncate(trace: &Trace, n: usize) -> Trace {
    let mut out = trace.clone();
    out.records.truncate(n);
    out
}

/// Keep only requests arriving in `[from, to)`, re-based so the window
/// starts at time zero.
pub fn window(trace: &Trace, from: SimTime, to: SimTime) -> Trace {
    let mut out = Trace::new(trace.n_disks, trace.blocks_per_disk);
    for r in &trace.records {
        if r.at >= from && r.at < to {
            let mut r = *r;
            r.at = SimTime::from_ns(r.at.as_ns() - from.as_ns());
            out.records.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AccessType, TraceRecord};

    fn toy() -> Trace {
        let mut t = Trace::new(1, 1000);
        for i in 0..10u64 {
            t.records.push(TraceRecord {
                at: SimTime::from_ms(i * 10),
                disk: 0,
                block: i,
                nblocks: 1,
                kind: AccessType::Read,
            });
        }
        t
    }

    #[test]
    fn at_speed_halves_gaps() {
        let fast = at_speed(&toy(), 2.0);
        assert_eq!(fast.records[1].at, SimTime::from_ms(5));
        assert_eq!(fast.records[9].at, SimTime::from_ms(45));
        assert_eq!(fast.len(), 10);
        fast.validate().unwrap();
    }

    #[test]
    fn at_speed_half_slows_down() {
        let slow = at_speed(&toy(), 0.5);
        assert_eq!(slow.records[1].at, SimTime::from_ms(20));
    }

    #[test]
    fn truncate_keeps_prefix() {
        let t = truncate(&toy(), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records[2].block, 2);
    }

    #[test]
    fn window_rebases_times() {
        let w = window(&toy(), SimTime::from_ms(20), SimTime::from_ms(50));
        assert_eq!(w.len(), 3); // arrivals at 20, 30, 40
        assert_eq!(w.records[0].at, SimTime::ZERO);
        assert_eq!(w.records[2].at, SimTime::from_ms(20));
        w.validate().unwrap();
    }
}
