//! Future-event list: a binary-heap priority queue keyed on
//! ([`SimTime`], insertion sequence) with tombstone cancellation.
//!
//! Ties are broken by insertion order so that two events scheduled for the
//! same instant fire in the order they were scheduled. This determinism
//! matters: disk-array response times are sensitive to who wins a
//! simultaneous arrival at a queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Min-heap ordering: earliest time first, then lowest sequence number.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events.
///
/// `pop` returns events in nondecreasing time order; events with equal
/// timestamps come out in scheduling order. `cancel` is O(log n): the
/// entry stays in the heap but is skipped when popped.
///
/// The bookkeeping sets are `BTreeSet`s, not `HashSet`s: sim-core bans
/// hash collections outright (see `simlint`) so that nondeterministic
/// iteration order can never leak into results, even through a future
/// refactor that starts iterating one of these.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: BTreeSet<u64>,
    /// Sequence numbers scheduled but not yet popped or cancelled. Cancel
    /// consults this so that a stale `EventId` (already fired) is rejected
    /// instead of planting a tombstone nothing will ever consume.
    live: BTreeSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            cancelled: BTreeSet::new(),
            live: BTreeSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or already cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Remove and return the earliest pending event, skipping tombstones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain leading tombstones so the peeked time is a live event.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5), "c");
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    /// Regression: cancelling an id that already fired used to insert a
    /// tombstone that nothing could consume, making `len()` underflow.
    #[test]
    fn cancel_of_fired_event_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a), "cancel of a fired event must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue remains fully usable afterwards.
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert_eq!(q.pop(), None);
    }

    /// Regression: the same stale-cancel scenario with another event still
    /// pending; `len()` must not drift as the tombstone is never consumed.
    #[test]
    fn stale_cancel_does_not_corrupt_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(9), "b")));
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// Popped timestamps are nondecreasing, and every scheduled,
        /// non-cancelled event comes out exactly once.
        #[test]
        fn prop_time_order_and_completeness(
            times in proptest::collection::vec(0u64..10_000, 1..200),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                ids.push((q.schedule(SimTime::from_ns(t), i), t));
            }
            let mut live = Vec::new();
            for (i, (id, t)) in ids.into_iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(id));
                } else {
                    live.push((t, i));
                }
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((at, idx)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
                out.push((at.as_ns(), idx));
            }
            live.sort();
            out.sort();
            prop_assert_eq!(live, out);
        }
    }
}
