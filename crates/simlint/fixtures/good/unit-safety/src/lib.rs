pub fn eta(service_ns: u64, seek_ns: u64) -> u64 {
    service_ns + seek_ns
}

pub fn transfer_ns(queued_blocks: u64, ns_per_block: u64) -> u64 {
    queued_blocks * ns_per_block
}

pub fn grace(deadline_ms: u64, blocks: u64) -> u64 {
    // simlint::allow(unit-safety): fixture demonstrates the inline escape
    deadline_ms + blocks
}
