//! Fixed-width-bin histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Histogram over `[0, bin_width × bins)` with an overflow bucket.
///
/// Used for response-time distributions: values are in milliseconds with a
/// default resolution of 0.1 ms up to 2 s, which comfortably covers the
/// paper's response-time range (10–100 ms).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    invalid: u64,
    total: u64,
}

impl Histogram {
    pub fn new(bin_width: f64, bins: usize) -> Histogram {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            invalid: 0,
            total: 0,
        }
    }

    /// 0.1 ms bins up to 2000 ms.
    pub fn response_time_ms() -> Histogram {
        Histogram::new(0.1, 20_000)
    }

    /// Record one observation. NaN and negative values cannot be binned
    /// (`(value / width) as usize` silently maps NaN to bin 0): they are
    /// counted in `invalid()` and excluded from `count()` and quantiles, in
    /// release builds as well as debug.
    ///
    /// Bin edges are the products `idx × bin_width` evaluated in f64: a value
    /// equal to an edge opens the bin above it. Division alone misclassifies
    /// such values when `bin_width` is not a power of two (`0.3 / 0.1` is
    /// `2.999…`, yet `0.3 < 3 × 0.1`), so the quotient is snapped to the
    /// canonical edges after the cast. `u64::MAX`-adjacent and infinite
    /// values saturate into the overflow bucket.
    #[inline]
    pub fn record(&mut self, value: f64) {
        if value.is_nan() || value < 0.0 {
            self.invalid += 1;
            return;
        }
        // The f64→usize cast saturates, so ±huge and +∞ land in overflow.
        let mut idx = (value / self.bin_width) as usize;
        if idx <= self.counts.len() {
            if (idx + 1) as f64 * self.bin_width <= value {
                idx += 1;
            } else if idx as f64 * self.bin_width > value {
                idx = idx.saturating_sub(1);
            }
        }
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations rejected by `record` (NaN or negative).
    #[inline]
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// Value at quantile `q ∈ [0, 1]`, reported as the upper edge of the bin
    /// containing the q-th observation. Returns 0 for an empty histogram and
    /// the overflow threshold if the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i + 1) as f64 * self.bin_width;
            }
        }
        self.counts.len() as f64 * self.bin_width
    }

    /// Merge another histogram with identical shape.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.invalid += other.invalid;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_of_uniform_fill() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        // Median: the 50th observation sits in bin 49 ⇒ upper edge 50.
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // q=0 returns the bin of the first observation.
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn overflow_bucket() {
        let mut h = Histogram::new(1.0, 10);
        h.record(5.0);
        h.record(1e9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), 10.0, "overflow reports the threshold");
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new(0.5, 4);
        let mut b = Histogram::new(0.5, 4);
        a.record(0.1);
        b.record(0.1);
        b.record(1.9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quantile(1.0), 2.0);
    }

    #[test]
    fn nan_is_rejected_not_binned() {
        let mut h = Histogram::new(1.0, 10);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0, "NaN must not be counted");
        assert_eq!(h.invalid(), 1);
        assert_eq!(h.quantile(0.5), 0.0, "histogram still empty");
        h.record(3.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 4.0, "NaN left bin 0 untouched");
    }

    #[test]
    fn negative_is_rejected() {
        let mut h = Histogram::new(1.0, 10);
        h.record(-0.001);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.invalid(), 2);
    }

    #[test]
    fn exact_bin_edges_round_down() {
        let mut h = Histogram::new(1.0, 10);
        // 0.0 is a valid observation landing in bin 0.
        h.record(0.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.invalid(), 0);
        assert_eq!(h.quantile(1.0), 1.0);
        // An exact interior edge belongs to the bin it opens: 1.0 → bin 1,
        // upper edge 2.0.
        let mut h = Histogram::new(1.0, 10);
        h.record(1.0);
        assert_eq!(h.quantile(1.0), 2.0);
        // The exact top edge of the last bin overflows.
        let mut h = Histogram::new(1.0, 10);
        h.record(10.0);
        assert_eq!(h.overflow(), 1);
    }

    /// Regression: with the 0.1 ms response-time width, plain division
    /// misclassifies values that sit exactly on (or one ulp below) a float
    /// bin edge. `1.7` is strictly below `17 × 0.1` yet `1.7 / 0.1 == 17.0`;
    /// `4.3` equals `43 × 0.1` yet `4.3 / 0.1` floors to 42. Both directions
    /// must snap to the canonical product edges.
    #[test]
    fn boundary_values_snap_to_canonical_edges() {
        // 1.7 < 17 × 0.1 (= 1.7000000000000002): belongs in bin 16, whose
        // upper edge is exactly that product.
        let mut h = Histogram::new(0.1, 100);
        h.record(1.7);
        assert_eq!(
            h.quantile(1.0),
            17.0 * 0.1,
            "1.7 must land below the 17×0.1 edge"
        );
        // 4.3 == 43 × 0.1 exactly: an edge opens the bin above it, so the
        // upper edge reported is 44 × 0.1, not 43 × 0.1.
        let mut h = Histogram::new(0.1, 100);
        h.record(4.3);
        assert_eq!(h.quantile(1.0), 44.0 * 0.1, "4.3 opens bin 43");
    }

    /// The snap must also govern the in-range/overflow boundary: one ulp
    /// below the float top edge stays in the last bin; the edge overflows.
    #[test]
    fn boundary_snap_at_overflow_threshold() {
        // 1.7 with 17 bins of 0.1: top edge is 17 × 0.1 = 1.7000000000000002,
        // and 1.7 / 0.1 == 17.0 would overflow without the snap.
        let mut h = Histogram::new(0.1, 17);
        h.record(1.7);
        assert_eq!(h.overflow(), 0, "1.7 is below the 17×0.1 top edge");
        // 4.3 with 43 bins: 4.3 == 43 × 0.1 is the exact top edge and must
        // overflow even though division floors to 42.
        let mut h = Histogram::new(0.1, 43);
        h.record(4.3);
        assert_eq!(h.overflow(), 1, "the exact top edge overflows");
    }

    /// `u64::MAX`-adjacent durations (and worse) must deterministically land
    /// in the overflow bucket rather than wrapping or panicking.
    #[test]
    fn huge_durations_overflow_deterministically() {
        let mut h = Histogram::new(0.1, 20_000);
        h.record(u64::MAX as f64); // a u64::MAX-nanosecond span in ms-ish units
        h.record(u64::MAX as f64 / 1e6);
        h.record(f64::MAX);
        h.record(f64::INFINITY);
        assert_eq!(h.overflow(), 4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.invalid(), 0);
        assert_eq!(h.quantile(1.0), 20_000.0 * 0.1);
    }

    #[test]
    fn merge_carries_invalid_counts() {
        let mut a = Histogram::new(1.0, 10);
        let mut b = Histogram::new(1.0, 10);
        b.record(f64::NAN);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.invalid(), 1);
        assert_eq!(a.count(), 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_shape() {
        let mut a = Histogram::new(0.5, 4);
        let b = Histogram::new(1.0, 4);
        a.merge(&b);
    }

    proptest! {
        /// Every in-range observation satisfies the canonical edge relation
        /// `idx × w ≤ v < (idx + 1) × w` (edges evaluated as f64 products),
        /// observed through the quantile upper edge.
        #[test]
        fn prop_bin_edges_are_canonical(
            v in 0.0f64..1000.0,
            w in proptest::sample::select(vec![0.1f64, 0.3, 0.7, 1.0, 2.2]),
        ) {
            let mut h = Histogram::new(w, 1 << 14);
            h.record(v);
            if h.overflow() == 0 {
                let upper = h.quantile(1.0);
                let idx = (upper / w).round() as usize - 1;
                prop_assert!(idx as f64 * w <= v, "lower edge above value");
                prop_assert!(v < (idx + 1) as f64 * w, "value at/above upper edge");
            }
        }

        /// Histogram quantiles bracket exact sample quantiles to bin width.
        #[test]
        fn prop_quantile_accuracy(
            mut xs in proptest::collection::vec(0.0f64..100.0, 1..500),
            q in 0.01f64..1.0,
        ) {
            let mut h = Histogram::new(0.1, 2000);
            for &x in &xs { h.record(x); }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * xs.len() as f64).ceil() as usize).max(1) - 1;
            let exact = xs[rank];
            let est = h.quantile(q);
            prop_assert!(est >= exact - 1e-9, "estimate {est} below exact {exact}");
            prop_assert!(est <= exact + 0.1 + 1e-9, "estimate {est} above bin bound of {exact}");
        }
    }
}
