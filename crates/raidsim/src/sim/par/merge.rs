//! The streaming commit-order merge: replays partition journals in the
//! exact serial global order, grafts final hardware state, and assembles
//! the report (see the module docs in `par/mod.rs` for the full argument).

use super::journal::{FrameRef, PartStream};
use super::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A symbolic partition-internal event in the merge's replayed global
/// order. Ordering is `(at, gseq)` — exactly the event queue's
/// `(time, schedule seq)` tie rule — inverted so a max-heap pops the
/// earliest. Arrivals are *not* heap entries: the merge interleaves the
/// global arrival stream against the heap with the same comparison the
/// serial loop's `next_step` uses.
struct Sym {
    at: SimTime,
    gseq: u64,
    kind: SymKind,
}

#[derive(Clone, Copy)]
enum SymKind {
    /// An event owned by one partition, tagged with its schedule ordinal
    /// there (for cancel matching).
    Local { part: usize, ord: u64 },
    /// A serial-only trailing destage tick (see module docs): consumes no
    /// frame, schedules nothing but its successor.
    VirtualTick,
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        self.at == other.at && self.gseq == other.gseq
    }
}
impl Eq for Sym {}
impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest.
        (other.at, other.gseq).cmp(&(self.at, self.gseq))
    }
}

impl<'t> Simulator<'t> {
    /// Replay the partitions' journal streams in the serial global order
    /// (consuming each chunk as its producer sends it), graft their final
    /// hardware state onto this (never-run) simulator, and assemble the
    /// report.
    pub(super) fn merge(
        mut self,
        ranges: &[(u32, u32)],
        mut streams: Vec<PartStream>,
    ) -> (SimReport, RunStats) {
        let nparts = streams.len();
        let records = &self.trace.records;
        let part_of = |array: u32| -> usize {
            ranges
                .iter()
                .position(|&(lo, hi)| (lo..hi).contains(&array))
                // simlint::allow(panic-policy): every array is covered by construction of `ranges`
                .expect("array not covered by any partition")
        };

        // --- Symbolic roots, in the serial scheduling order -------------
        // Arrivals are fed, not scheduled, so the roots are the destage
        // ticks (global array order) then the injected fault events —
        // identical to the serial loop and, filtered per owner, to each
        // partition's own root frame (asserted below).
        let mut heap: BinaryHeap<Sym> = BinaryHeap::new();
        let mut gseq: u64 = 0;
        // Next schedule ordinal per partition.
        let mut ordc: Vec<u64> = vec![0; nparts];
        let has_cache = self.cfg.cache.is_some();
        if has_cache {
            let tick0 = SimTime::from_ns(self.destage_period_ns);
            for a in 0..self.arrays {
                let p = part_of(a);
                heap.push(Sym {
                    at: tick0,
                    gseq,
                    kind: SymKind::Local {
                        part: p,
                        ord: ordc[p],
                    },
                });
                gseq += 1;
                ordc[p] += 1;
            }
        }
        if let Some(fs) = self.fault.as_ref() {
            for e in fs.plan.events() {
                let owner = match *e {
                    FaultEvent::DiskFail { array, .. } | FaultEvent::LatentError { array, .. } => {
                        Some((e.at(), part_of(array)))
                    }
                    // Battery events are excluded by `partitionable`.
                    _ => None,
                };
                if let Some((at, p)) = owner {
                    heap.push(Sym {
                        at,
                        gseq,
                        kind: SymKind::Local {
                            part: p,
                            ord: ordc[p],
                        },
                    });
                    gseq += 1;
                    ordc[p] += 1;
                }
            }
            // Scrub roots last, in global array order — mirroring the serial
            // loop and each partition's own root schedule.
            if fs.fcfg.scrub_rate_mbps > 0 {
                for a in 0..self.arrays {
                    let p = part_of(a);
                    heap.push(Sym {
                        at: SimTime::ZERO,
                        gseq,
                        kind: SymKind::Local {
                            part: p,
                            ord: ordc[p],
                        },
                    });
                    gseq += 1;
                    ordc[p] += 1;
                }
            }
        }
        for (p, stream) in streams.iter_mut().enumerate() {
            let roots = stream.recv_roots();
            assert_eq!(
                roots.children.len() as u64,
                ordc[p],
                "partition {p} scheduled an unexpected root set"
            );
        }

        // --- Replay -----------------------------------------------------
        let mut cancelled: std::collections::BTreeSet<(usize, u64)> = Default::default();
        let mut arrive_idx = 0usize;
        let mut global_inflight: i64 = 0;
        let mut last_time = SimTime::ZERO;
        let mut merged_events = 0u64;
        let period = self.destage_period_ns;

        loop {
            // Cancelled symbolic events never executed, serially or in
            // their partition; drain them off the top so the feed/queue
            // comparison below sees the next *live* queue time.
            while let Some(sym) = heap.peek() {
                let SymKind::Local { part, ord } = sym.kind else {
                    break;
                };
                if !cancelled.remove(&(part, ord)) {
                    break;
                }
                heap.pop();
            }
            // The serial loop's interleaving rule (`Simulator::next_step`):
            // the arrival feed's head fires before queue events at the same
            // instant.
            let arrival = records.get(arrive_idx).map(|r| r.at);
            let queued = heap.peek().map(|s| s.at);
            let take_arrival = match (arrival, queued) {
                (Some(a), Some(q)) => a <= q,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            merged_events += 1;
            if take_arrival {
                // simlint::allow(panic-policy): guarded by `take_arrival`
                let at = arrival.expect("arrival head");
                let rec = records[arrive_idx];
                let owner = part_of(rec.disk / self.n);
                let f = streams[owner].next_frame();
                assert!(
                    f.is_arrive && f.at == at,
                    "partition {owner} desynced at arrival {arrive_idx}: \
                     frame at {:?}, expected arrival at {at:?}",
                    f.at,
                );
                global_inflight += f.inflight_delta as i64;
                Self::push_children(f.children, owner, &mut heap, &mut gseq, &mut ordc);
                for &c in f.cancels {
                    cancelled.insert((owner, c));
                }
                let pushes: &[StatPush] = f.pushes;
                for push in pushes {
                    self.apply_push(push);
                }
                last_time = at;
                arrive_idx += 1;
            } else {
                // simlint::allow(panic-policy): guarded by `take_arrival`
                let sym = heap.pop().expect("queued head");
                last_time = sym.at;
                match sym.kind {
                    SymKind::Local { part: p, .. } => {
                        let f = streams[p].next_frame();
                        assert!(
                            !f.is_arrive && f.at == sym.at,
                            "partition {p} desynced: frame at {:?}, expected {:?}",
                            f.at,
                            sym.at
                        );
                        global_inflight += f.inflight_delta as i64;
                        Self::push_children(f.children, p, &mut heap, &mut gseq, &mut ordc);
                        for &c in f.cancels {
                            cancelled.insert((p, c));
                        }
                        let FrameRef {
                            pushes,
                            tick_resched,
                            ..
                        } = f;
                        for push in pushes {
                            self.apply_push(push);
                        }
                        // A tick that ended its local chain while global
                        // work remains: the serial run would have kept
                        // ticking idly.
                        if tick_resched == Some(false)
                            && (arrive_idx < records.len() || global_inflight > 0)
                        {
                            heap.push(Sym {
                                at: SimTime::from_ns(sym.at.as_ns() + period),
                                gseq,
                                kind: SymKind::VirtualTick,
                            });
                            gseq += 1;
                        }
                    }
                    SymKind::VirtualTick => {
                        // The serial tick at this time finds nothing dirty
                        // (its array went idle when its partition's chain
                        // ended) and reschedules while arrivals or
                        // in-flight work remain.
                        if arrive_idx < records.len() || global_inflight > 0 {
                            heap.push(Sym {
                                at: SimTime::from_ns(sym.at.as_ns() + period),
                                gseq,
                                kind: SymKind::VirtualTick,
                            });
                            gseq += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(
            arrive_idx,
            records.len(),
            "merge did not reach every arrival"
        );
        assert_eq!(global_inflight, 0, "merged run left requests in flight");
        for (p, stream) in streams.iter().enumerate() {
            assert!(
                !stream.has_buffered_frames(),
                "partition {p} journaled events the merge never consumed"
            );
        }

        // --- Graft final hardware state ---------------------------------
        let mut events_processed = 0;
        let mut peak_pending = 0;
        let mut journal_bytes = 0;
        let mut partitions = Vec::with_capacity(nparts);
        for (p, stream) in streams.into_iter().enumerate() {
            let mut part = stream.finish();
            let (lo, hi) = ranges[p];
            for a in lo..hi {
                let ai = a as usize;
                std::mem::swap(&mut self.channels[ai], &mut part.channels[ai]);
                if !self.caches.is_empty() {
                    std::mem::swap(&mut self.caches[ai], &mut part.caches[ai]);
                }
                if !self.spools.is_empty() {
                    std::mem::swap(&mut self.spools[ai], &mut part.spools[ai]);
                }
            }
            for g in (lo * self.dpa)..(hi * self.dpa) {
                let gi = g as usize;
                std::mem::swap(&mut self.disks[gi], &mut part.disks[gi]);
                self.disk_counts.add(gi, part.disk_counts.counts()[gi]);
            }
            self.disk_ops += part.disk_ops;
            self.buffer_waits += part.buffer_waits;
            self.spool_stalls += part.spool_stalls;
            events_processed += part.events_processed;
            peak_pending = peak_pending.max(part.peak_pending);
            journal_bytes += part.journal_bytes;
            partitions.push(PartStats {
                arrays: (lo, hi),
                arrivals_owned: part.arrivals_owned,
                events_processed: part.events_processed,
                journal_frames: part.journal_frames,
                journal_bytes: part.journal_bytes,
            });
            // Lifecycle state lives with the partition that owned each
            // array (only it aborted, re-planned, scrubbed, or rebuilt
            // anything there): per-array and per-disk state is grafted by
            // ownership, cross-array counters are summed into the parent's
            // zeroed totals. The per-window response accumulators were
            // already replayed above.
            for a in lo..hi {
                let ai = a as usize;
                self.failed_local[ai] = part.failed_local[ai];
                self.dataloss[ai] = part.dataloss[ai];
            }
            if let (Some(dst), Some(f)) = (self.fault.as_mut(), part.fault.as_ref()) {
                for a in lo..hi {
                    let ai = a as usize;
                    dst.arr[ai] = f.arr[ai].clone();
                    dst.scrub[ai] = f.scrub[ai].clone();
                }
                for g in (lo * self.dpa)..(hi * self.dpa) {
                    dst.latent[g as usize] = f.latent[g as usize].clone();
                }
                dst.disk_failures += f.disk_failures;
                dst.spares_used += f.spares_used;
                dst.rebuild_blocks += f.rebuild_blocks;
                dst.scrub_blocks += f.scrub_blocks;
                dst.latent_errors += f.latent_errors;
                dst.latent_repaired += f.latent_repaired;
                dst.blocks_lost += f.blocks_lost;
                dst.lost_reads += f.lost_reads;
                dst.transient_errors += f.transient_errors;
                dst.retries += f.retries;
                dst.escalations += f.escalations;
                dst.ops_aborted += f.ops_aborted;
                dst.ops_replayed += f.ops_replayed;
                dst.writes_written_through += f.writes_written_through;
            }
        }
        self.engine.fast_forward(last_time);
        let stats = RunStats {
            events_processed,
            peak_pending,
            partitions,
            journal_bytes,
            // The only serial events no partition executed are the virtual
            // trailing ticks, so this is ≤ 1.0 by construction; it is the
            // measured refutation of the old replicated-arrival design's
            // ~nparts× replay cost.
            replay_amplification: if merged_events > 0 {
                events_processed as f64 / merged_events as f64
            } else {
                1.0
            },
        };
        (self.report(), stats)
    }

    /// Turn one frame's children into symbolic heap events with
    /// serial-order sequence numbers (a free function over the merge's
    /// loop state so the `FrameRef` borrow of the stream stays disjoint).
    fn push_children(
        children: &[SimTime],
        part: usize,
        heap: &mut BinaryHeap<Sym>,
        gseq: &mut u64,
        ordc: &mut [u64],
    ) {
        for &child_at in children {
            let ord = ordc[part];
            ordc[part] += 1;
            heap.push(Sym {
                at: child_at,
                gseq: *gseq,
                kind: SymKind::Local { part, ord },
            });
            *gseq += 1;
        }
    }

    /// Replay one journaled statistics push — the same sequence of
    /// accumulator operations `finalize_request` / `try_start` performed,
    /// with the same operands, now in merged order.
    fn apply_push(&mut self, push: &StatPush) {
        match *push {
            StatPush::Complete {
                ms,
                is_read,
                window,
                ref phase,
            } => {
                self.resp_all.push(ms);
                self.hist.record(ms);
                self.completed += 1;
                if let Some(f) = self.fault.as_mut() {
                    match window {
                        0 => f.resp_healthy.push(ms),
                        1 => f.resp_degraded.push(ms),
                        2 => f.resp_rebuilding.push(ms),
                        _ => f.resp_dataloss.push(ms),
                    }
                }
                if is_read {
                    self.resp_reads.push(ms);
                    self.completed_reads += 1;
                    self.phase_reads.push(phase);
                } else {
                    self.resp_writes.push(ms);
                    self.completed_writes += 1;
                    self.phase_writes.push(phase);
                }
            }
            StatPush::QDepth(depths) => {
                for (i, &d) in depths.iter().enumerate() {
                    self.sched_qdepth[i].push(d);
                }
            }
            StatPush::Seek(d) => self.sched_seek_cyl.push(d),
        }
    }
}
