//! Workspace-level analysis: configuration (`simlint.toml`) and the
//! driver that runs the per-file rules over the strict + relaxed surfaces
//! and the cross-file rules over the function graph.

use crate::{
    finish_file, graph, per_file_matches, rules, toml, Config, Diagnostic, FileUnit, Profile,
    RawMatch,
};
use std::path::Path;

/// `[journal-effect]`: the effect-routing contract for partition execution.
#[derive(Clone, Debug)]
pub struct JournalCfg {
    /// Path prefix of the files that participate (the sim layer tree).
    pub scope: String,
    /// Partition-execution entry points (function names).
    pub entries: Vec<String>,
    /// Functions sanctioned to both mutate order-sensitive accumulators
    /// and journal the same effect (verified to reference a journal
    /// marker).
    pub sinks: Vec<String>,
    /// Order-sensitive accumulator fields: mutating `.field` via a record
    /// method or `+=`/`-=` outside a sink is a diagnostic.
    pub stat_fields: Vec<String>,
    /// Method names that count as mutation (`.push(`, `.record(`, …).
    pub record_methods: Vec<String>,
    /// Event-scheduling calls inspected for tick rescheduling.
    pub schedule_calls: Vec<String>,
    /// Event idents whose (re)scheduling must flow through a sink.
    pub tick_markers: Vec<String>,
    /// Idents whose presence in a sink body proves it journals.
    pub journal_markers: Vec<String>,
}

/// `[layer-boundary]`: the declared layer DAG (a chain, hence trivially
/// acyclic) and which files belong to which layer.
#[derive(Clone, Debug)]
pub struct LayerCfg {
    /// Layer names in flow order; calls may only go rightward (or stay).
    pub order: Vec<String>,
    /// layer name → file-path suffixes assigned to it.
    pub modules: Vec<(String, Vec<String>)>,
}

/// `[unit-safety]`: unit vocabularies and the conversion boundary.
#[derive(Clone, Debug)]
pub struct UnitCfg {
    /// `_`-segments that mark a time/duration identifier (plus any
    /// segment containing "time", always).
    pub time_units: Vec<String>,
    /// `_`-segments that mark a block/byte/count identifier.
    pub quantity_units: Vec<String>,
    /// Path suffixes exempt from unit-safety (the conversion helpers).
    pub boundary: Vec<String>,
}

/// Parsed `simlint.toml` (or the built-in defaults, which describe this
/// repository's actual layout so the tool works without a config file).
#[derive(Clone, Debug)]
pub struct WsConfig {
    /// Roots linted under the strict profile (every rule).
    pub strict_roots: Vec<String>,
    /// Roots linted under the relaxed profile (hash-collection +
    /// panic-policy, only in files that pin determinism hashes).
    pub relaxed_roots: Vec<String>,
    /// Identifiers marking a relaxed-profile file as hash-pinning.
    pub hash_pin_markers: Vec<String>,
    /// Ubiquitous method names never followed as call-graph edges.
    pub ignore_calls: Vec<String>,
    pub journal: JournalCfg,
    pub layers: LayerCfg,
    pub units: UnitCfg,
}

fn strs(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

impl Default for WsConfig {
    fn default() -> Self {
        WsConfig {
            strict_roots: strs(&[
                "crates/simkit/src",
                "crates/raidsim/src",
                "crates/diskmodel/src",
                "crates/nvcache/src",
                "crates/iochannel/src",
                "crates/tracegen/src",
            ]),
            relaxed_roots: strs(&["tests", "crates/bench/src"]),
            hash_pin_markers: strs(&["fnv1a"]),
            ignore_calls: strs(&[
                "new",
                "default",
                "clone",
                "len",
                "is_empty",
                "get",
                "get_mut",
                "insert",
                "remove",
                "push",
                "pop",
                "clear",
                "iter",
                "iter_mut",
                "map",
                "filter",
                "fold",
                "min",
                "max",
                "contains",
                "record",
                "extend",
                "drain",
                "take",
                "expect",
                "unwrap",
                "unwrap_or",
                "to_string",
                "into",
                "from",
            ]),
            journal: JournalCfg {
                scope: "crates/raidsim/src/sim".into(),
                entries: strs(&["run_as_partition"]),
                sinks: strs(&[
                    "process_record",
                    "try_start",
                    "start_op",
                    "on_destage_tick",
                    "finalize_request",
                ]),
                stat_fields: strs(&[
                    "inflight",
                    "resp_all",
                    "resp_reads",
                    "resp_writes",
                    "hist",
                    "phase_reads",
                    "phase_writes",
                    "completed",
                    "completed_reads",
                    "completed_writes",
                    "resp_healthy",
                    "resp_degraded",
                    "resp_rebuilding",
                    "sched_seek_cyl",
                    "sched_qdepth",
                ]),
                record_methods: strs(&["push", "record", "observe", "add"]),
                schedule_calls: strs(&["schedule_at", "schedule_after"]),
                tick_markers: strs(&["DestageTick"]),
                journal_markers: strs(&["StatPush", "inflight_delta", "tick_resched", "ExecFrame"]),
            },
            layers: LayerCfg {
                order: strs(&["admission", "planning", "dispatch", "faults", "reporting"]),
                modules: vec![
                    (
                        "admission".into(),
                        strs(&[
                            "crates/raidsim/src/sim/admission.rs",
                            "crates/raidsim/src/sim/cached.rs",
                        ]),
                    ),
                    (
                        "planning".into(),
                        strs(&["crates/raidsim/src/sim/planning.rs"]),
                    ),
                    (
                        "dispatch".into(),
                        strs(&["crates/raidsim/src/sim/dispatch.rs"]),
                    ),
                    ("faults".into(), strs(&["crates/raidsim/src/sim/faults.rs"])),
                    (
                        "reporting".into(),
                        strs(&["crates/raidsim/src/sim/reporting.rs"]),
                    ),
                ],
            },
            units: UnitCfg {
                time_units: strs(&["ns", "us", "ms", "tick", "ticks", "deadline"]),
                quantity_units: strs(&[
                    "block", "blocks", "nblocks", "byte", "bytes", "len", "count", "counts", "cyl",
                    "cyls", "sector", "sectors", "stripe", "stripes", "ops",
                ]),
                boundary: strs(&["crates/simkit/src/time.rs"]),
            },
        }
    }
}

impl WsConfig {
    /// Parse a `simlint.toml`. Every key is optional and overrides the
    /// corresponding default; unknown keys are rejected so typos cannot
    /// silently disable a rule.
    pub fn parse(src: &str) -> Result<WsConfig, String> {
        let root = toml::parse(src)?;
        let mut ws = WsConfig::default();

        let known_tables = [
            "surface",
            "relaxed",
            "graph",
            "journal-effect",
            "layer-boundary",
            "unit-safety",
        ];
        for key in root.keys() {
            if !known_tables.contains(&key.as_str()) {
                return Err(format!("simlint.toml: unknown table `[{key}]`"));
            }
        }
        let check_keys = |table: &str, allowed: &[&str]| -> Result<(), String> {
            if let Some(t) = toml::get_table(&root, table) {
                for k in t.keys() {
                    if !allowed.contains(&k.as_str()) {
                        return Err(format!("simlint.toml: unknown key `{k}` in `[{table}]`"));
                    }
                }
            }
            Ok(())
        };
        check_keys("surface", &["strict", "relaxed"])?;
        check_keys("relaxed", &["hash_pin_markers"])?;
        check_keys("graph", &["ignore_calls"])?;
        check_keys(
            "journal-effect",
            &[
                "scope",
                "entries",
                "sinks",
                "stat_fields",
                "record_methods",
                "schedule_calls",
                "tick_markers",
                "journal_markers",
            ],
        )?;
        check_keys("layer-boundary", &["order", "modules"])?;
        check_keys("unit-safety", &["time_units", "quantity_units", "boundary"])?;

        let arr = |path: &str, dst: &mut Vec<String>| {
            if let Some(a) = toml::get_arr(&root, path) {
                *dst = a.to_vec();
            }
        };
        arr("surface.strict", &mut ws.strict_roots);
        arr("surface.relaxed", &mut ws.relaxed_roots);
        arr("relaxed.hash_pin_markers", &mut ws.hash_pin_markers);
        arr("graph.ignore_calls", &mut ws.ignore_calls);

        if let Some(t) = toml::get_table(&root, "journal-effect") {
            if let Some(s) = t.get("scope").and_then(|v| v.as_str()) {
                ws.journal.scope = s.to_string();
            }
        }
        arr("journal-effect.entries", &mut ws.journal.entries);
        arr("journal-effect.sinks", &mut ws.journal.sinks);
        arr("journal-effect.stat_fields", &mut ws.journal.stat_fields);
        arr(
            "journal-effect.record_methods",
            &mut ws.journal.record_methods,
        );
        arr(
            "journal-effect.schedule_calls",
            &mut ws.journal.schedule_calls,
        );
        arr("journal-effect.tick_markers", &mut ws.journal.tick_markers);
        arr(
            "journal-effect.journal_markers",
            &mut ws.journal.journal_markers,
        );

        arr("layer-boundary.order", &mut ws.layers.order);
        if let Some(mods) = toml::get_table(&root, "layer-boundary.modules") {
            ws.layers.modules = mods
                .iter()
                .map(|(name, v)| {
                    v.as_arr()
                        .map(|files| (name.clone(), files.to_vec()))
                        .ok_or_else(|| {
                            format!("simlint.toml: [layer-boundary.modules] `{name}` must be an array of file suffixes")
                        })
                })
                .collect::<Result<_, _>>()?;
        }

        arr("unit-safety.time_units", &mut ws.units.time_units);
        arr("unit-safety.quantity_units", &mut ws.units.quantity_units);
        arr("unit-safety.boundary", &mut ws.units.boundary);

        // Validate the layer declaration once, up front.
        for (name, _) in &ws.layers.modules {
            if !ws.layers.order.iter().any(|o| o == name) {
                return Err(format!(
                    "simlint.toml: [layer-boundary.modules] layer `{name}` is not in `order`"
                ));
            }
        }
        Ok(ws)
    }

    /// Load from a file path (missing file → defaults).
    pub fn load(path: &Path) -> Result<WsConfig, String> {
        match std::fs::read_to_string(path) {
            Ok(src) => WsConfig::parse(&src),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(WsConfig::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

/// Run the full workspace analysis rooted at `root`: per-file rules over
/// the strict and relaxed surfaces, then the cross-file rules
/// (`journal-effect`, `layer-boundary`) over the function graph of the
/// strict files. Allow-directives and the meta-rules see the union, so a
/// `// simlint::allow(journal-effect): …` works like any other escape.
pub fn analyze_workspace(
    root: &Path,
    ws: &WsConfig,
    cfg: &Config,
) -> Result<Vec<Diagnostic>, String> {
    let mut units: Vec<FileUnit> = Vec::new();
    for (roots, profile) in [
        (&ws.strict_roots, Profile::Strict),
        (&ws.relaxed_roots, Profile::Relaxed),
    ] {
        for rel in roots {
            let dir = root.join(rel);
            if !dir.exists() {
                continue;
            }
            let files = crate::collect_rs_files(&dir).map_err(|e| format!("{rel}: {e}"))?;
            for file in files {
                let display = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                let src = std::fs::read_to_string(&file)
                    .map_err(|e| format!("{}: {e}", file.display()))?;
                units.push(FileUnit::new(display, src, profile));
            }
        }
    }

    // Per-file pass.
    let mut raw: Vec<Vec<RawMatch>> = units.iter().map(|u| per_file_matches(u, ws)).collect();

    // Function graph over the strict files, then the cross-file rules.
    let mut defs = Vec::new();
    for (i, u) in units.iter().enumerate() {
        if u.profile == Profile::Strict {
            defs.extend(graph::extract_fns(u, i));
        }
    }
    for (file, rule, line, col) in rules::journal_effect::run(ws, &units, &defs)?
        .into_iter()
        .chain(rules::layer_boundary::run(ws, &units, &defs)?)
    {
        raw[file].push((rule, line, col));
    }

    let mut diags = Vec::new();
    for (u, mut r) in units.iter_mut().zip(raw) {
        r.sort();
        r.dedup();
        diags.extend(finish_file(u, r, cfg, ws));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_overrides_and_rejects_unknown_keys() {
        let ws = WsConfig::parse(
            "[surface]\nstrict = [\"src\"]\nrelaxed = []\n\
             [journal-effect]\nscope = \"src\"\nentries = [\"go\"]\n",
        )
        .unwrap();
        assert_eq!(ws.strict_roots, vec!["src".to_string()]);
        assert!(ws.relaxed_roots.is_empty());
        assert_eq!(ws.journal.scope, "src");
        assert_eq!(ws.journal.entries, vec!["go".to_string()]);
        // Defaults survive for untouched keys.
        assert_eq!(ws.layers.order.len(), 5);

        assert!(WsConfig::parse("[typo]\nx = 1\n").is_err());
        assert!(WsConfig::parse("[journal-effect]\nsink = [\"a\"]\n").is_err());
        let bad_layer = "[layer-boundary.modules]\nghost = [\"x.rs\"]\n";
        assert!(WsConfig::parse(bad_layer).is_err(), "layer not in order");
    }
}
