//! Pending-operation queue for one drive.
//!
//! Three service bands, FIFO within each:
//!
//! * [`Band::Priority`] — parity accesses under the RF/PR and DF/PR
//!   synchronization policies ("gives the parity access higher priority than
//!   non-parity accesses queued at the same disk", Section 3.3).
//! * [`Band::Normal`] — host reads/writes and ordinary parity accesses.
//! * [`Band::Background`] — destage and parity-spool writes, "scheduled
//!   progressively so that they will cause minimal interference with the
//!   read traffic" (Section 3.4): they are only dispatched when no
//!   foreground work is queued.

use std::collections::VecDeque;

/// Service band of a queued operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Band {
    Priority,
    Normal,
    Background,
}

impl Band {
    /// All bands in service order (highest precedence first).
    pub const ALL: [Band; 3] = [Band::Priority, Band::Normal, Band::Background];

    /// Dense index in service order (`Priority` = 0).
    pub fn index(self) -> usize {
        match self {
            Band::Priority => 0,
            Band::Normal => 1,
            Band::Background => 2,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Band::Priority => "priority",
            Band::Normal => "normal",
            Band::Background => "background",
        }
    }
}

/// Three-band FIFO queue.
#[derive(Clone, Debug)]
pub struct OpQueue<T> {
    priority: VecDeque<T>,
    normal: VecDeque<T>,
    background: VecDeque<T>,
}

impl<T> Default for OpQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OpQueue<T> {
    pub fn new() -> Self {
        OpQueue {
            priority: VecDeque::new(),
            normal: VecDeque::new(),
            background: VecDeque::new(),
        }
    }

    /// Enqueue at the tail of a band.
    pub fn push(&mut self, band: Band, item: T) {
        self.deque_mut(band).push_back(item);
    }

    /// Enqueue at the head of a band (used to put back an operation that
    /// could not be dispatched, e.g. a write waiting for a free buffer).
    ///
    /// **Put-back contract** (shared with `DiskScheduler::put_back`): the
    /// operation re-enters at the head of *its own band* only. Band
    /// precedence remains absolute — a `Priority` operation pushed *after*
    /// the put-back is still popped first, interleaving ahead of the
    /// resumed request. That is intentional, not an inversion hazard:
    /// RF/PR parity accesses must overtake every non-parity access queued
    /// at the disk (Section 3.3), including one that was put back while
    /// waiting for a buffer. Within the band, the put-back precedes all
    /// previously queued work.
    pub fn push_front(&mut self, band: Band, item: T) {
        self.deque_mut(band).push_front(item);
    }

    /// Dequeue the next operation: priority, then normal, then background.
    pub fn pop(&mut self) -> Option<(Band, T)> {
        if let Some(x) = self.priority.pop_front() {
            return Some((Band::Priority, x));
        }
        if let Some(x) = self.normal.pop_front() {
            return Some((Band::Normal, x));
        }
        self.background.pop_front().map(|x| (Band::Background, x))
    }

    /// Dequeue only foreground work (priority or normal).
    pub fn pop_foreground(&mut self) -> Option<(Band, T)> {
        if let Some(x) = self.priority.pop_front() {
            return Some((Band::Priority, x));
        }
        self.normal.pop_front().map(|x| (Band::Normal, x))
    }

    /// Next operation without removing it.
    pub fn peek(&self) -> Option<(Band, &T)> {
        if let Some(x) = self.priority.front() {
            return Some((Band::Priority, x));
        }
        if let Some(x) = self.normal.front() {
            return Some((Band::Normal, x));
        }
        self.background.front().map(|x| (Band::Background, x))
    }

    pub fn len(&self) -> usize {
        self.priority.len() + self.normal.len() + self.background.len()
    }

    pub fn foreground_len(&self) -> usize {
        self.priority.len() + self.normal.len()
    }

    pub fn background_len(&self) -> usize {
        self.background.len()
    }

    /// Operations queued in one band.
    pub fn band_len(&self, band: Band) -> usize {
        match band {
            Band::Priority => self.priority.len(),
            Band::Normal => self.normal.len(),
            Band::Background => self.background.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn deque_mut(&mut self, band: Band) -> &mut VecDeque<T> {
        match band {
            Band::Priority => &mut self.priority,
            Band::Normal => &mut self.normal,
            Band::Background => &mut self.background,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_drain_in_order() {
        let mut q = OpQueue::new();
        q.push(Band::Background, "bg");
        q.push(Band::Normal, "n1");
        q.push(Band::Priority, "p1");
        q.push(Band::Normal, "n2");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((Band::Priority, "p1")));
        assert_eq!(q.pop(), Some((Band::Normal, "n1")));
        assert_eq!(q.pop(), Some((Band::Normal, "n2")));
        assert_eq!(q.pop(), Some((Band::Background, "bg")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_foreground_skips_background() {
        let mut q = OpQueue::new();
        q.push(Band::Background, "bg");
        assert_eq!(q.pop_foreground(), None);
        assert_eq!(q.background_len(), 1);
        q.push(Band::Normal, "n");
        assert_eq!(q.pop_foreground(), Some((Band::Normal, "n")));
        assert_eq!(q.foreground_len(), 0);
    }

    #[test]
    fn push_front_reinserts_at_head() {
        let mut q = OpQueue::new();
        q.push(Band::Normal, 1);
        q.push(Band::Normal, 2);
        let (b, x) = q.pop().unwrap();
        q.push_front(b, x);
        assert_eq!(q.pop(), Some((Band::Normal, 1)));
        assert_eq!(q.pop(), Some((Band::Normal, 2)));
    }

    /// The documented put-back contract: a later `Priority` push
    /// interleaves ahead of a `Normal` put-back (bands stay absolute),
    /// while within the band the put-back precedes all queued work.
    #[test]
    fn put_back_yields_to_later_priority_push() {
        let mut q = OpQueue::new();
        q.push(Band::Normal, "w1"); // e.g. a write waiting for a buffer
        q.push(Band::Normal, "w2");
        let (b, x) = q.pop().unwrap();
        assert_eq!(x, "w1");
        q.push_front(b, x); // put back: buffer still unavailable
        q.push(Band::Priority, "parity"); // RF/PR parity access arrives
        assert_eq!(
            q.pop(),
            Some((Band::Priority, "parity")),
            "priority must overtake the put-back (Section 3.3)"
        );
        assert_eq!(
            q.pop(),
            Some((Band::Normal, "w1")),
            "put-back first in band"
        );
        assert_eq!(q.pop(), Some((Band::Normal, "w2")));
    }

    #[test]
    fn band_helpers_and_labels() {
        assert_eq!(Band::ALL.map(Band::index), [0, 1, 2]);
        assert_eq!(Band::Priority.label(), "priority");
        let mut q = OpQueue::new();
        q.push(Band::Normal, 1);
        q.push(Band::Background, 2);
        assert_eq!(q.band_len(Band::Priority), 0);
        assert_eq!(q.band_len(Band::Normal), 1);
        assert_eq!(q.band_len(Band::Background), 1);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = OpQueue::new();
        assert!(q.peek().is_none());
        q.push(Band::Normal, 7);
        q.push(Band::Priority, 9);
        assert_eq!(q.peek(), Some((Band::Priority, &9)));
        assert_eq!(q.pop(), Some((Band::Priority, 9)));
        assert_eq!(q.peek(), Some((Band::Normal, &7)));
        assert!(!q.is_empty());
    }
}
