//! Planning layer: organization-specific request decomposition.
//!
//! One [`OrgPlanner`] per organization turns logical addresses into
//! per-disk operations — healthy and degraded reads, write plans, mirror
//! and parity-peer lookups — backed by the organization's
//! [`OrgMap`], plus the two policy questions the simulator used to answer
//! by matching on [`Organization`] inline:
//!
//! * [`OrgPlanner::has_redundancy`] — whether an exhausted retry budget can
//!   escalate to a survivable disk failure (everything but `Base`).
//! * [`OrgPlanner::caches_parity`] — whether an NV cache lets the
//!   controller buffer parity updates in a spool instead of updating the
//!   parity disk inline (RAID4's dedicated parity disk only, Section 4.2).
//!
//! [`Planner`] is the concrete dispatcher: one variant per organization,
//! chosen once at construction through [`PLANNER_REGISTRY`] — a constructor
//! table keyed by the organization's stable label, so every caller (the
//! single-array simulator and each fleet virtual array alike) instantiates
//! planners uniformly and adding an organization means adding one registry
//! row. This module holds no `Organization::` dispatch match at all;
//! simlint's `scheduler-seam` rule now rejects one here exactly as it does
//! everywhere outside `config.rs`, `report.rs`, and `mapping/`.

use super::*;
use crate::mapping::{DegradedRead, WritePlan};

/// Read/write/degraded planning for one organization.
pub(super) trait OrgPlanner {
    /// The organization's address map.
    fn map(&self) -> &OrgMap;

    /// Whether the organization survives a disk loss: gates the escalation
    /// of an exhausted retry budget into a permanent failure.
    fn has_redundancy(&self) -> bool;

    /// Whether, given an NV cache, parity updates are buffered in a spool
    /// instead of hitting the parity disk inline.
    fn caches_parity(&self, cache_present: bool) -> bool {
        let _ = cache_present;
        false
    }

    // Delegations to the map, so call sites need only the planner.
    fn disks_per_array(&self) -> u32 {
        self.map().disks_per_array()
    }
    fn logical_capacity(&self) -> u64 {
        self.map().logical_capacity()
    }
    fn read_runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        self.map().read_runs(laddr, n)
    }
    fn degraded_read_runs(&self, laddr: u64, n: u32, failed_disk: u32) -> DegradedRead {
        self.map().degraded_read_runs(laddr, n, failed_disk)
    }
    fn write_plan(&self, laddr: u64, n: u32) -> WritePlan {
        self.map().write_plan(laddr, n)
    }
    fn degraded_write_plan(&self, laddr: u64, n: u32, failed_disk: u32) -> WritePlan {
        self.map().degraded_write_plan(laddr, n, failed_disk)
    }
    fn mirror_of(&self, run: Run) -> Option<Run> {
        self.map().mirror_of(run)
    }
    fn peers_of(&self, failed_disk: u32, block: u64) -> Vec<(u32, u64)> {
        self.map().peers_of(failed_disk, block)
    }
}

pub(super) struct BasePlanner {
    map: OrgMap,
}

impl OrgPlanner for BasePlanner {
    fn map(&self) -> &OrgMap {
        &self.map
    }
    fn has_redundancy(&self) -> bool {
        false
    }
}

pub(super) struct MirrorPlanner {
    map: OrgMap,
}

impl OrgPlanner for MirrorPlanner {
    fn map(&self) -> &OrgMap {
        &self.map
    }
    fn has_redundancy(&self) -> bool {
        true
    }
}

pub(super) struct Raid5Planner {
    map: OrgMap,
}

impl OrgPlanner for Raid5Planner {
    fn map(&self) -> &OrgMap {
        &self.map
    }
    fn has_redundancy(&self) -> bool {
        true
    }
}

pub(super) struct Raid4Planner {
    map: OrgMap,
}

impl OrgPlanner for Raid4Planner {
    fn map(&self) -> &OrgMap {
        &self.map
    }
    fn has_redundancy(&self) -> bool {
        true
    }
    /// The dedicated parity disk is RAID4's bottleneck; with an NV cache
    /// the controller absorbs parity updates into a spool and drains them
    /// as background elevator sweeps (Section 4.2).
    fn caches_parity(&self, cache_present: bool) -> bool {
        cache_present
    }
}

pub(super) struct ParStripPlanner {
    map: OrgMap,
}

impl OrgPlanner for ParStripPlanner {
    fn map(&self) -> &OrgMap {
        &self.map
    }
    fn has_redundancy(&self) -> bool {
        true
    }
}

/// The configured organization's planner, chosen once at construction.
/// Enum dispatch keeps planning monomorphic (no vtable in the hot path)
/// and the simulator free of `dyn`.
pub(super) enum Planner {
    Base(BasePlanner),
    Mirror(MirrorPlanner),
    Raid5(Raid5Planner),
    Raid4(Raid4Planner),
    ParStrip(ParStripPlanner),
}

macro_rules! each_planner {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            Planner::Base($p) => $body,
            Planner::Mirror($p) => $body,
            Planner::Raid5($p) => $body,
            Planner::Raid4($p) => $body,
            Planner::ParStrip($p) => $body,
        }
    };
}

/// One planner constructor, taking the already-built address map.
type PlannerCtor = fn(OrgMap) -> Planner;

/// The constructor table: organization label → planner constructor. The
/// label comes from `Organization::label()` (config's own description of
/// the variant), so this file never matches on the enum itself — lookup is
/// data-driven and uniform for every caller, including fleet virtual
/// arrays that mix organizations within one run.
pub(super) const PLANNER_REGISTRY: &[(&str, PlannerCtor)] = &[
    ("Base", |map| Planner::Base(BasePlanner { map })),
    ("Mirror", |map| Planner::Mirror(MirrorPlanner { map })),
    ("RAID5", |map| Planner::Raid5(Raid5Planner { map })),
    ("RAID4", |map| Planner::Raid4(Raid4Planner { map })),
    ("ParStrip", |map| Planner::ParStrip(ParStripPlanner { map })),
];

impl Planner {
    pub(super) fn new(org: Organization, n: u32, blocks_per_disk: u64) -> Result<Planner, String> {
        let label = org.label();
        let Some((_, ctor)) = PLANNER_REGISTRY.iter().find(|(l, _)| *l == label) else {
            return Err(format!("no planner registered for organization {label}"));
        };
        Ok(ctor(OrgMap::new(org, n, blocks_per_disk)))
    }
}

impl OrgPlanner for Planner {
    fn map(&self) -> &OrgMap {
        each_planner!(self, p => p.map())
    }
    fn has_redundancy(&self) -> bool {
        each_planner!(self, p => p.has_redundancy())
    }
    fn caches_parity(&self, cache_present: bool) -> bool {
        each_planner!(self, p => p.caches_parity(cache_present))
    }
}

impl<'t> Simulator<'t> {
    /// The failed disk's index within `array`, if one is currently failed.
    #[inline]
    pub(super) fn failed_in(&self, array: u32) -> Option<u32> {
        self.failed_local[array as usize]
    }

    /// The organization-appropriate write plan, accounting for a failed
    /// disk in this array.
    pub(super) fn plan_write(&self, array: u32, laddr: u64, n: u32) -> WritePlan {
        match self.failed_in(array) {
            Some(f) => self.planner.degraded_write_plan(laddr, n, f),
            None => self.planner.write_plan(laddr, n),
        }
    }

    /// For mirrors, send a read to the pair member with the shorter queue,
    /// breaking ties by arm distance ("shortest seek optimization") then
    /// disk id.
    pub(super) fn choose_replica(&self, array: u32, run: Run) -> Run {
        let Some(alt) = self.planner.mirror_of(run) else {
            return run;
        };
        // A failed pair member is never selected.
        if self.failed_in(array) == Some(run.disk) {
            return alt;
        }
        if self.failed_in(array) == Some(alt.disk) {
            return run;
        }
        let load = |r: &Run| {
            let g = self.gdisk(array, r.disk) as usize;
            (
                self.queues[g].foreground_len() + self.in_service[g].is_some() as usize,
                self.disks[g].arm_distance(r.block),
                r.disk,
            )
        };
        if load(&alt) < load(&run) {
            alt
        } else {
            run
        }
    }

    /// Create the disk ops (and parity jobs) for a write of
    /// `[laddr, laddr+n)` under the organization's (possibly degraded)
    /// plan; returns the immediately issuable tokens — parity ops gated by
    /// a synchronization rule are issued later by their job.
    pub(super) fn build_write_ops(&mut self, w: WriteOps) -> Vec<u32> {
        let WriteOps {
            req,
            array,
            laddr,
            n,
            band,
            data_role,
            old_known,
            spool,
        } = w;
        let plan = self.plan_write(array, laddr, n);
        let parity_band = if band == Band::Normal && self.cfg.sync.has_priority() {
            Band::Priority
        } else {
            band
        };
        let mut immediate = Vec::new();
        for stripe in plan.stripes {
            if spool && !stripe.parity.is_empty() {
                // RAID4 parity caching: buffer the update instead of
                // touching the parity disk. Full-stripe and reconstruct
                // writes hold real parity; RMW deltas still need the
                // old-parity pre-read at drain time.
                let full = stripe.mode != StripeMode::Rmw;
                for p in &stripe.parity {
                    for b in 0..p.nblocks as u64 {
                        self.spool_parity(array, p.block + b, full, req);
                    }
                }
            }
            match stripe.mode {
                StripeMode::Full => {
                    for r in &stripe.data {
                        let t =
                            self.data_op(req, array, r, data_role, AccessKind::Write, band, None);
                        immediate.push(t);
                    }
                    if !spool {
                        for p in &stripe.parity {
                            let t = self.data_op(
                                req,
                                array,
                                p,
                                OpRole::ParityWrite,
                                AccessKind::Write,
                                parity_band,
                                None,
                            );
                            immediate.push(t);
                        }
                    }
                }
                StripeMode::Reconstruct => {
                    // Parity is recomputed from the surviving reads; when it
                    // is spooled (RAID4) or absent (degraded parity disk),
                    // the helper reads serve no one and are skipped.
                    let job = (!spool && !stripe.parity.is_empty()).then(|| {
                        self.jobs.insert(ParityJob {
                            data_not_started: stripe.extra_reads.len() as u32,
                            ready: SimTime::ZERO,
                            pending_parity: Vec::new(),
                            rule: EnqueueRule::AtReady,
                            refs: (stripe.extra_reads.len() + stripe.parity.len()) as u32,
                        })
                    });
                    if let Some(job) = job {
                        for p in &stripe.parity {
                            let t = self.data_op(
                                req,
                                array,
                                p,
                                OpRole::ParityWrite,
                                AccessKind::Write,
                                parity_band,
                                Some(job),
                            );
                            self.jobs.pending_parity[job as usize].push(t);
                        }
                        if stripe.extra_reads.is_empty() {
                            // Parity computable from new data alone.
                            let pending =
                                std::mem::take(&mut self.jobs.pending_parity[job as usize]);
                            immediate.extend(pending);
                        }
                        for r in &stripe.extra_reads {
                            let t = self.extra_read_op(array, r, job, band);
                            immediate.push(t);
                        }
                    }
                    for r in &stripe.data {
                        let t =
                            self.data_op(req, array, r, data_role, AccessKind::Write, band, None);
                        immediate.push(t);
                    }
                }
                StripeMode::Rmw => {
                    let rule = match self.cfg.sync {
                        SyncPolicy::SimultaneousIssue => EnqueueRule::AlreadyIssued,
                        SyncPolicy::ReadFirst | SyncPolicy::ReadFirstPriority => {
                            EnqueueRule::AtReady
                        }
                        SyncPolicy::DiskFirst | SyncPolicy::DiskFirstPriority => {
                            EnqueueRule::AtAllStarted
                        }
                    };
                    // With the old data cached (writeback of a block whose
                    // old copy was retained) the parity delta is computable
                    // up front: data goes out as a plain write and the
                    // parity RMW needs no feeder. A spooled parity still
                    // wants the pre-read when the old data is unknown, to
                    // form the delta, but nothing waits on it.
                    let pre_read = !stripe.parity.is_empty() && !old_known;
                    let data_kind = if pre_read {
                        AccessKind::RmwData
                    } else {
                        AccessKind::Write
                    };
                    let needs_job = !spool && pre_read;
                    let job = needs_job.then(|| {
                        self.jobs.insert(ParityJob {
                            data_not_started: stripe.data.len() as u32,
                            ready: SimTime::ZERO,
                            pending_parity: Vec::new(),
                            rule,
                            refs: (stripe.data.len() + stripe.parity.len()) as u32,
                        })
                    });
                    for r in &stripe.data {
                        let role = if job.is_some() {
                            OpRole::RmwData
                        } else {
                            data_role
                        };
                        let t = self.data_op(req, array, r, role, data_kind, band, job);
                        immediate.push(t);
                    }
                    if spool {
                        continue;
                    }
                    for p in &stripe.parity {
                        let t = self.data_op(
                            req,
                            array,
                            p,
                            OpRole::ParityRmw,
                            AccessKind::RmwParityRead,
                            parity_band,
                            job,
                        );
                        match job {
                            None => immediate.push(t), // ready immediately
                            Some(j) => {
                                if rule == EnqueueRule::AlreadyIssued {
                                    immediate.push(t);
                                } else {
                                    self.jobs.pending_parity[j as usize].push(t);
                                }
                            }
                        }
                    }
                }
            }
        }
        immediate
    }

    #[allow(clippy::too_many_arguments)] // a plain op builder; a params struct would add noise
    pub(super) fn data_op(
        &mut self,
        req: Option<u32>,
        array: u32,
        run: &Run,
        role: OpRole,
        kind: AccessKind,
        band: Band,
        job: Option<u32>,
    ) -> u32 {
        if let Some(q) = req {
            self.reqs.get_mut(q).pending += 1;
        }
        self.new_op(DiskOp {
            role,
            req,
            job,
            dgroup: None,
            gdisk: self.gdisk(array, run.disk),
            block: run.block,
            nblocks: run.nblocks,
            kind,
            band,
            feeds: kind == AccessKind::RmwData && job.is_some(),
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        })
    }

    /// Reconstruct helper read: feeds its parity job and never counts
    /// toward the request (the parity write it feeds always finishes
    /// later).
    pub(super) fn extra_read_op(&mut self, array: u32, run: &Run, job: u32, band: Band) -> u32 {
        self.new_op(DiskOp {
            role: OpRole::ExtraRead,
            req: None,
            job: Some(job),
            dgroup: None,
            gdisk: self.gdisk(array, run.disk),
            block: run.block,
            nblocks: run.nblocks,
            kind: AccessKind::Read,
            band,
            feeds: true,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParityPlacement;

    /// Every organization resolves to a registered constructor, and the
    /// constructed variant matches the label it was looked up by.
    #[test]
    fn registry_covers_every_organization() {
        let orgs = [
            Organization::Base,
            Organization::Mirror,
            Organization::Raid5 { striping_unit: 1 },
            Organization::Raid4 { striping_unit: 1 },
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
        ];
        assert_eq!(PLANNER_REGISTRY.len(), orgs.len());
        for org in orgs {
            let p = Planner::new(org, 2, 1000).unwrap();
            let constructed = match p {
                Planner::Base(_) => "Base",
                Planner::Mirror(_) => "Mirror",
                Planner::Raid5(_) => "RAID5",
                Planner::Raid4(_) => "RAID4",
                Planner::ParStrip(_) => "ParStrip",
            };
            assert_eq!(constructed, org.label());
        }
    }

    /// Registry rows carry the labels config publishes, in a stable order.
    #[test]
    fn registry_keys_match_config_labels() {
        let keys: Vec<&str> = PLANNER_REGISTRY.iter().map(|(l, _)| *l).collect();
        assert_eq!(keys, ["Base", "Mirror", "RAID5", "RAID4", "ParStrip"]);
    }
}
