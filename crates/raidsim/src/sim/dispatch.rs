//! Dispatch layer: per-drive queues and service.
//!
//! Owns the [`DiskScheduler`] seam: every drive has one
//! [`SchedulerQueue`] running the configured [`Discipline`]. Enqueueing
//! records the op's target cylinder; popping passes the drive's current
//! arm position so position-aware disciplines (SSTF, SCAN) can order
//! service. FCFS — the paper's discipline and the default — ignores both
//! and reproduces the original three-band FIFO byte-for-byte.
//!
//! Also owns service start/completion: media-timing commitment, parity-job
//! feeding, the RMW turnaround hold (Section 3.3), transient-error retry
//! and escalation, and per-role completion bookkeeping. Scheduler
//! statistics (per-band queue depth at each dispatch decision, arm travel
//! per dispatched op) are collected unconditionally — they are pure
//! observation and never touch timing.

use super::*;

impl<'t> Simulator<'t> {
    #[inline]
    pub(super) fn gdisk(&self, array: u32, disk_in_array: u32) -> u32 {
        array * self.dpa + disk_in_array
    }

    pub(super) fn new_op(&mut self, op: DiskOp) -> u32 {
        self.ops.insert(op)
    }

    pub(super) fn enqueue_op(&mut self, token: u32) {
        let now = self.engine.now();
        let t = token as usize;
        let (gdisk, band, role, block) = (
            self.ops.gdisk[t],
            self.ops.band[t],
            self.ops.role[t],
            self.ops.block[t],
        );
        let g = gdisk as usize;
        // Background-busy snapshot, credited with the *remaining* time of a
        // background op currently in service so the interference window
        // counts only overlap with [enqueue, start].
        let snap = self.bg_busy_cum[g] - self.bg_until[g].saturating_since(now);
        self.ops.marks[t].enqueue = now;
        self.ops.marks[t].bg_snap = snap;
        // A disk that failed after this op was planned cannot serve it:
        // abort and (for reads of lost data) re-plan through the degraded
        // path. This catches stragglers staged before the failure — boxed
        // Issue events, gated parity ops, delayed retries. Rebuild writes
        // are exempt: they target the hot spare occupying the failed slot.
        if self.is_failed(gdisk) && role != OpRole::RebuildWrite {
            self.abort_op(token, false);
            return;
        }
        let cyl = self.disks[g].geometry().cylinder_of(block);
        self.queues[g].push(band, token, cyl);
        self.try_start(gdisk);
    }

    pub(super) fn try_start(&mut self, gdisk: u32) {
        let g = gdisk as usize;
        if self.in_service[g].is_some() || self.queues[g].is_empty() {
            return;
        }
        // Queue depths at the dispatch decision, the op about to be served
        // included.
        let mut depths = [0.0f64; 3];
        for band in Band::ALL {
            let d = self.queues[g].band_len(band) as f64;
            self.sched_qdepth[band.index()].push(d);
            depths[band.index()] = d;
        }
        if let Some(p) = self.par.as_deref_mut() {
            p.note.pushes.push(StatPush::QDepth(depths));
        }
        let arm = self.disks[g].current_cylinder();
        let Some((_, token)) = self.queues[g].pop(arm) else {
            return;
        };
        self.start_op(gdisk, token);
    }

    fn start_op(&mut self, gdisk: u32, token: u32) {
        let now = self.engine.now();
        let t = token as usize;
        let (block, nblocks, kind, job, feeds, band, role) = (
            self.ops.block[t],
            self.ops.nblocks[t],
            self.ops.kind[t],
            self.ops.job[t],
            self.ops.feeds[t],
            self.ops.band[t],
            self.ops.role[t],
        );
        let seek_cyl = self.disks[gdisk as usize].arm_distance(block) as f64;
        self.sched_seek_cyl.push(seek_cyl);
        if let Some(p) = self.par.as_deref_mut() {
            p.note.pushes.push(StatPush::Seek(seek_cyl));
        }
        let timing = self.disks[gdisk as usize].plan(now, block, nblocks, kind);
        self.disk_counts.add(gdisk as usize, 1);
        self.disk_ops += 1;
        self.ops.read_end[t] = timing.read_end;
        self.ops.transfer_ns[t] = timing.transfer_ns;
        self.ops.marks[t].start = now;
        self.ops.marks[t].seek_ns = timing.seek_ns;
        self.ops.marks[t].latency_ns = timing.latency_ns;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"dispatch\",\"disk\":{},\"role\":\"{:?}\",\"band\":\"{:?}\",\"block\":{},\"nblocks\":{},\"seek_ns\":{},\"rotation_ns\":{},\"transfer_ns\":{}}}",
                now.as_ns(),
                gdisk,
                role,
                band,
                block,
                nblocks,
                timing.seek_ns,
                timing.latency_ns,
                timing.transfer_ns
            );
            self.write_log(&line);
        }

        // Feeder ops report their read-completion to the parity job the
        // moment service starts (the timing is deterministic from here).
        if feeds {
            if let Some(j) = job {
                self.feed_job(j, timing.read_end);
            }
        }

        // Parity RMW ops whose readiness is already known can commit their
        // final completion outright.
        let complete = if kind == AccessKind::RmwParityRead {
            match job {
                Some(j) if self.jobs.data_not_started[j as usize] > 0 => timing.complete,
                Some(j) => rmw_write_complete(
                    timing.read_end,
                    timing.transfer_ns,
                    self.rot_ns,
                    self.jobs.ready[j as usize],
                ),
                None => timing.complete, // ready immediately: read_end + rot
            }
        } else {
            timing.complete
        };
        self.disks[gdisk as usize].commit(&timing, complete);
        if band == Band::Background {
            // Destage/spool work holds the disk for [now, complete); host
            // ops queued behind it attribute that overlap to interference.
            self.bg_busy_cum[gdisk as usize] += complete - now;
            self.bg_until[gdisk as usize] = complete;
        }
        self.in_service[gdisk as usize] = Some(token);
        let ev = self
            .engine
            .schedule_at(complete, Ev::DiskDone { gdisk, op: token });
        self.service_ev[gdisk as usize] = Some(ev);
    }

    /// A feeder (data RMW / reconstruct read) started service: update the
    /// job's ready time and release parity ops per the synchronization rule.
    pub(super) fn feed_job(&mut self, job: u32, read_end: SimTime) {
        let j = job as usize;
        self.jobs.ready[j] = self.jobs.ready[j].max(read_end);
        self.jobs.data_not_started[j] -= 1;
        self.jobs.refs[j] -= 1;
        if self.jobs.data_not_started[j] == 0 {
            match self.jobs.rule[j] {
                EnqueueRule::AlreadyIssued => {}
                EnqueueRule::AtReady => {
                    if !self.jobs.pending_parity[j].is_empty() {
                        let ready = self.jobs.ready[j];
                        self.engine.schedule_at(ready, Ev::EnqueueParity(job));
                    }
                }
                EnqueueRule::AtAllStarted => {
                    let pending = std::mem::take(&mut self.jobs.pending_parity[j]);
                    for t in pending {
                        self.enqueue_op(t);
                    }
                }
            }
        }
        self.maybe_free_job(job);
    }

    pub(super) fn maybe_free_job(&mut self, job: u32) {
        if self.jobs.refs[job as usize] == 0 {
            debug_assert!(self.jobs.pending_parity[job as usize].is_empty());
            self.jobs.remove(job);
        }
    }

    pub(super) fn on_disk_done(&mut self, gdisk: u32, token: u32) {
        let now = self.engine.now();
        // Parity RMWs may need to hold the disk for more rotations if the
        // new parity was not ready when the head came back (Section 3.3).
        if self.ops.kind[token as usize] == AccessKind::RmwParityRead {
            let t = token as usize;
            let (read_end, transfer_ns, job) = (
                self.ops.read_end[t],
                self.ops.transfer_ns[t],
                self.ops.job[t],
            );
            let hold_until = match job {
                Some(j) if self.jobs.data_not_started[j as usize] > 0 => Some(now + self.rot_ns),
                Some(j) => {
                    let actual = rmw_write_complete(
                        read_end,
                        transfer_ns,
                        self.rot_ns,
                        self.jobs.ready[j as usize],
                    );
                    (actual > now).then_some(actual)
                }
                None => None,
            };
            if let Some(until) = hold_until {
                self.disks[gdisk as usize].extend_busy(until);
                if self.ops.band[t] == Band::Background {
                    self.bg_busy_cum[gdisk as usize] += until - now;
                    self.bg_until[gdisk as usize] = until;
                }
                let ev = self
                    .engine
                    .schedule_at(until, Ev::DiskDone { gdisk, op: token });
                self.service_ev[gdisk as usize] = Some(ev);
                return;
            }
        }

        // Transient media errors: the completed service may turn out to have
        // failed. The controller re-drives the op after an exponential
        // backoff; when the retry budget runs out the error escalates to a
        // permanent disk failure (survivable only with redundancy). Feeder
        // ops are exempt — they reported their read-completion to the parity
        // job at dispatch and cannot be un-fed.
        let transient_p = self
            .fault
            .as_ref()
            .map_or(0.0, |f| f.fcfg.transient_error_prob);
        if transient_p > 0.0 && !self.ops.feeds[token as usize] {
            let erred = self
                .fault
                .as_mut()
                .is_some_and(|f| f.rngs[gdisk as usize].chance(transient_p));
            if erred {
                self.ops.attempts[token as usize] += 1;
                let attempts = self.ops.attempts[token as usize];
                let policy = self.fault.as_ref().map_or(RetryPolicy::new(0, 0), |f| {
                    RetryPolicy::new(f.fcfg.retry_backoff_us * 1_000, f.fcfg.max_retries)
                });
                if let Some(f) = self.fault.as_mut() {
                    f.transient_errors += 1;
                }
                if policy.retries_left(attempts) {
                    if let Some(f) = self.fault.as_mut() {
                        f.retries += 1;
                    }
                    self.in_service[gdisk as usize] = None;
                    self.service_ev[gdisk as usize] = None;
                    self.try_start(gdisk);
                    self.engine
                        .schedule_after(policy.backoff_ns(attempts), Ev::Issue([token].into()));
                    return;
                }
                if self.planner.has_redundancy() && self.fully_healthy() {
                    if let Some(f) = self.fault.as_mut() {
                        f.escalations += 1;
                    }
                    self.service_ev[gdisk as usize] = None;
                    self.on_disk_fail(gdisk);
                    return;
                }
                // No redundancy left to escalate into: deliver the data
                // anyway so the run can complete (heroic recovery).
            }
        }

        let op = self.ops.remove(token);
        self.in_service[gdisk as usize] = None;
        self.service_ev[gdisk as usize] = None;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"complete\",\"disk\":{},\"role\":\"{:?}\",\"block\":{},\"nblocks\":{}}}",
                now.as_ns(),
                gdisk,
                op.role,
                op.block,
                op.nblocks
            );
            self.write_log(&line);
        }

        match op.role {
            OpRole::HostRead => {
                // Disk → track buffer done; now the channel transfer to the
                // host.
                let tr = self.channels[(gdisk / self.dpa) as usize]
                    .request(now, op.nblocks as u64 * self.block_bytes);
                let phase = self.op_phase(&op, now, tr.end);
                self.request_part_done(op.req_id(), tr.end, phase);
            }
            OpRole::HostWrite | OpRole::RmwData => {
                let phase = self.op_phase(&op, now, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::ParityRmw | OpRole::ParityWrite => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::ExtraRead => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
                // Job bookkeeping happened at start.
            }
            OpRole::CacheFetch | OpRole::ReconstructRead => {
                let phase = self.op_phase(&op, now, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::Writeback => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
            }
            OpRole::DestageData => {
                // simlint::allow(panic-policy): destage ops are created from a destage group; absence is a cache-scheduler bug worth a loud stop
                let dg = op.dgroup.expect("destage op lost its group");
                self.dgroups.get_mut(dg).remaining -= 1;
                if self.dgroups.get(dg).remaining == 0 {
                    let dj = self.dgroups.remove(dg);
                    let array = (gdisk / self.dpa) as usize;
                    self.caches[array].destage_complete(&dj.group);
                }
            }
            OpRole::DestageParity => {
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::SpoolDrain => {
                let array = (gdisk / self.dpa) as usize;
                self.caches[array].release_slots(op.nblocks as usize);
            }
            OpRole::RebuildRead => {
                // Fed its rebuild job at dispatch; nothing further.
            }
            OpRole::RebuildWrite => {
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
                self.on_rebuild_batch_done(&op);
            }
            OpRole::ScrubRead => {
                self.on_scrub_read_done(&op);
            }
            OpRole::ScrubRepair => {
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
        }

        self.try_start(gdisk);
        if op.role == OpRole::SpoolDrain {
            self.try_drain_spool(gdisk / self.dpa);
        }
    }
}
