//! Fleet specification: disk classes, virtual array specs, tenant demands.
//!
//! Validation here is the `simulate --fleet` exit path's contract: every
//! rejection names the offending field and value so a malformed spec dies
//! with a pointed message instead of a panic deep in the engine.

use crate::config::{FaultConfig, Organization, ParityPlacement};
use diskmodel::{DiskGeometry, SeekCurve};
use serde::{Deserialize, Serialize};

/// One class of physical drive in the fleet's pool: a calibrated geometry
/// and seek curve plus how many such drives exist.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskClass {
    pub name: String,
    pub geometry: DiskGeometry,
    pub seek: SeekCurve,
    /// Physical drives of this class available to the allocation planner.
    pub count: u32,
}

/// One virtual array: an organization carved out of a single disk class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VirtualArraySpec {
    pub name: String,
    pub organization: Organization,
    /// Name of the [`DiskClass`] this VA draws its drives from.
    pub disk_class: String,
    /// Logical data disks (`N`); physical drives consumed follow the
    /// organization (`N` for Base, `2N` for Mirror, `N + 1` for parity).
    pub data_disks: u32,
    /// NV controller cache share, MB; `None` runs the VA uncached.
    #[serde(default)]
    pub cache_mb: Option<u64>,
    /// Per-VA sparing / fault-injection plan.
    #[serde(default)]
    pub fault: Option<FaultConfig>,
}

/// One tenant workload to be placed on some virtual array.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    pub id: String,
    /// Sustained demand, host I/Os per second.
    pub demand_iops: f64,
    /// Capacity demand, blocks.
    pub capacity_blocks: u64,
    /// Zipf skew of the tenant's accesses across its VA's disks
    /// (0 = uniform).
    #[serde(default)]
    pub skew: f64,
    /// Fraction of the tenant's requests that are writes.
    pub write_fraction: f64,
}

/// The whole fleet: a drive pool, the virtual arrays carved from it, and
/// the tenants demanding placement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Fleet seed: shared by every VA's simulator (so warm disk pools are
    /// shareable per disk class) and mixed per-tenant for trace substreams.
    pub seed: u64,
    /// Length of every tenant's generated substream, seconds.
    pub duration_secs: f64,
    pub classes: Vec<DiskClass>,
    pub arrays: Vec<VirtualArraySpec>,
    pub tenants: Vec<TenantSpec>,
}

impl FleetConfig {
    /// Look up a disk class by name.
    pub fn class(&self, name: &str) -> Option<&DiskClass> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Physical drives a VA spec consumes: the organization's complement
    /// plus its hot-spare reservation, if any.
    pub fn physical_disks(va: &VirtualArraySpec) -> u32 {
        let base = va.organization.disks_per_array(va.data_disks);
        let spares = va
            .fault
            .as_ref()
            .filter(|f| f.spare)
            .map_or(0, |f| f.spare_count);
        base + spares
    }

    /// Validate the spec, naming the offending field in every rejection.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.duration_secs.is_finite() && self.duration_secs > 0.0) {
            return Err(format!(
                "duration_secs must be finite and > 0, got {}",
                self.duration_secs
            ));
        }
        if self.classes.is_empty() {
            return Err("classes is empty: the fleet needs at least one disk class".into());
        }
        for (i, c) in self.classes.iter().enumerate() {
            if c.name.is_empty() {
                return Err(format!("classes[{i}].name is empty"));
            }
            if self.classes[..i].iter().any(|p| p.name == c.name) {
                return Err(format!("duplicate disk class name {:?}", c.name));
            }
            if c.count == 0 {
                return Err(format!("disk class {:?}: count must be ≥ 1", c.name));
            }
            c.geometry
                .validate()
                .map_err(|e| format!("disk class {:?}: {e}", c.name))?;
        }
        if self.arrays.is_empty() {
            return Err("arrays is empty: the fleet needs at least one virtual array".into());
        }
        for (i, va) in self.arrays.iter().enumerate() {
            if va.name.is_empty() {
                return Err(format!("arrays[{i}].name is empty"));
            }
            if self.arrays[..i].iter().any(|p| p.name == va.name) {
                return Err(format!("duplicate virtual array name {:?}", va.name));
            }
            let class = self.class(&va.disk_class).ok_or_else(|| {
                format!(
                    "virtual array {:?}: unknown disk class {:?}",
                    va.name, va.disk_class
                )
            })?;
            if va.data_disks == 0 {
                return Err(format!(
                    "virtual array {:?}: data_disks must be ≥ 1",
                    va.name
                ));
            }
            if va.cache_mb == Some(0) {
                return Err(format!(
                    "virtual array {:?}: cache_mb must be ≥ 1 (or omitted)",
                    va.name
                ));
            }
            // Delegate the org/geometry/fault cross-checks to the per-VA
            // SimConfig the planner will build, so the fleet spec rejects
            // exactly what the engine would.
            super::alloc::va_sim_config(self, va, class)
                .validate()
                .map_err(|e| format!("virtual array {:?}: {e}", va.name))?;
        }
        // Physical commitment per class: the carved VAs (plus their spare
        // reservations) must fit the pool.
        for c in &self.classes {
            let need: u32 = self
                .arrays
                .iter()
                .filter(|va| va.disk_class == c.name)
                .map(FleetConfig::physical_disks)
                .sum();
            if need > c.count {
                return Err(format!(
                    "disk class {:?} overcommitted: virtual arrays need {need} drives \
                     but the pool has {}",
                    c.name, c.count
                ));
            }
        }
        if self.tenants.is_empty() {
            return Err("tenants is empty: the fleet needs at least one tenant".into());
        }
        if self.tenants.len() > u16::MAX as usize {
            return Err(format!(
                "too many tenants: {} (limit {})",
                self.tenants.len(),
                u16::MAX
            ));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.id.is_empty() {
                return Err(format!("tenants[{i}].id is empty"));
            }
            if self.tenants[..i].iter().any(|p| p.id == t.id) {
                return Err(format!("duplicate tenant id {:?}", t.id));
            }
            if !(t.demand_iops.is_finite() && t.demand_iops > 0.0) {
                return Err(format!(
                    "tenant {:?}: demand_iops must be finite and > 0, got {}",
                    t.id, t.demand_iops
                ));
            }
            if t.capacity_blocks == 0 {
                return Err(format!("tenant {:?}: capacity_blocks must be ≥ 1", t.id));
            }
            if !(t.skew.is_finite() && t.skew >= 0.0) {
                return Err(format!(
                    "tenant {:?}: skew must be finite and ≥ 0, got {}",
                    t.id, t.skew
                ));
            }
            if !(0.0..=1.0).contains(&t.write_fraction) {
                return Err(format!(
                    "tenant {:?}: write_fraction must be in [0, 1], got {}",
                    t.id, t.write_fraction
                ));
            }
        }
        Ok(())
    }

    /// A small three-VA, two-class, three-tenant fleet for unit tests and
    /// smoke runs. Deterministic; runs in well under a second.
    pub fn small() -> FleetConfig {
        let mut demo = FleetConfig::demo();
        demo.arrays.truncate(3);
        demo.tenants.truncate(3);
        for t in &mut demo.tenants {
            t.demand_iops = 40.0;
        }
        demo.duration_secs = 2.0;
        demo
    }

    /// The reference fleet of the issue's acceptance scenario: 16 virtual
    /// arrays over 2 disk classes spanning 5 organizations, 6 tenants, and
    /// one VA with a mid-run disk failure + hot-spare rebuild. Everything
    /// is a pure function of the literals below — no clocks, no ambient
    /// randomness — so two builds are identical.
    pub fn demo() -> FleetConfig {
        // Class "t1": the paper's Table 1 drive. Class "fast": a higher-RPM,
        // larger drive with a quicker seek curve — heterogeneous in rotation,
        // seek, and capacity.
        let t1 = DiskClass {
            name: "t1".into(),
            geometry: DiskGeometry::default(),
            seek: SeekCurve::table1(),
            count: 80,
        };
        let fast = DiskClass {
            name: "fast".into(),
            geometry: DiskGeometry {
                rpm: 7200,
                cylinders: 1890,
                ..DiskGeometry::default()
            },
            seek: SeekCurve::calibrate(1890, 8.0, 18.0, 1.5),
            count: 80,
        };

        // 16 VAs cycling through the five organizations and both classes.
        // VA 0 carries the fault plan: disk 1 dies 2 simulated seconds in,
        // and a hot spare rebuilds it.
        let orgs: [Organization; 5] = [
            Organization::Raid5 { striping_unit: 1 },
            Organization::Mirror,
            Organization::Base,
            Organization::Raid4 { striping_unit: 1 },
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
        ];
        let arrays = (0..16)
            .map(|i| {
                let organization = orgs[i % orgs.len()];
                let class = if i % 2 == 0 { "t1" } else { "fast" };
                VirtualArraySpec {
                    name: format!("va{i:02}"),
                    organization,
                    disk_class: class.into(),
                    data_disks: 4,
                    cache_mb: if i % 4 == 3 { Some(8) } else { None },
                    fault: (i == 0).then(|| FaultConfig {
                        disk_failure: Some(crate::config::DiskFailure {
                            array: 0,
                            disk: 1,
                            at_ms: 2_000,
                        }),
                        ..FaultConfig::default()
                    }),
                }
            })
            .collect();

        let tenant = |id: &str, iops: f64, cap: u64, skew: f64, wf: f64| TenantSpec {
            id: id.into(),
            demand_iops: iops,
            capacity_blocks: cap,
            skew,
            write_fraction: wf,
        };
        FleetConfig {
            seed: 0x464C_4545_5401, // "FLEET" + 1
            duration_secs: 5.0,
            classes: vec![t1, fast],
            arrays,
            tenants: vec![
                tenant("oltp-a", 90.0, 200_000, 1.2, 0.5),
                tenant("oltp-b", 70.0, 150_000, 0.8, 0.3),
                tenant("batch", 50.0, 400_000, 0.0, 0.8),
                tenant("readmost", 60.0, 120_000, 1.5, 0.05),
                tenant("spiky", 45.0, 90_000, 2.0, 0.4),
                tenant("archive", 30.0, 300_000, 0.3, 0.9),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_fleets_validate() {
        FleetConfig::demo().validate().unwrap();
        FleetConfig::small().validate().unwrap();
    }

    #[test]
    fn rejections_name_the_offending_field() {
        let base = FleetConfig::small;

        let mut f = base();
        f.duration_secs = 0.0;
        assert!(f.validate().unwrap_err().contains("duration_secs"));

        let mut f = base();
        f.tenants[1].id = f.tenants[0].id.clone();
        let e = f.validate().unwrap_err();
        assert!(e.contains("duplicate tenant id"), "{e}");

        let mut f = base();
        f.arrays[2].disk_class = "nvme".into();
        let e = f.validate().unwrap_err();
        assert!(
            e.contains("unknown disk class") && e.contains("nvme"),
            "{e}"
        );

        let mut f = base();
        f.classes[0].count = 1;
        let e = f.validate().unwrap_err();
        assert!(e.contains("overcommitted"), "{e}");

        let mut f = base();
        f.tenants[0].write_fraction = 1.5;
        let e = f.validate().unwrap_err();
        assert!(e.contains("write_fraction"), "{e}");

        let mut f = base();
        f.tenants[0].demand_iops = f64::NAN;
        assert!(f.validate().unwrap_err().contains("demand_iops"));

        let mut f = base();
        f.arrays[0].cache_mb = Some(0);
        assert!(f.validate().unwrap_err().contains("cache_mb"));

        // Cross-checks delegated to the per-VA SimConfig: a zero striping
        // unit is rejected at the fleet boundary with the VA named.
        let mut f = base();
        f.arrays[0].organization = Organization::Raid5 { striping_unit: 0 };
        let e = f.validate().unwrap_err();
        assert!(e.contains("va00") && e.contains("striping"), "{e}");
    }

    #[test]
    fn demo_is_the_acceptance_scenario() {
        let f = FleetConfig::demo();
        assert_eq!(f.arrays.len(), 16);
        let orgs: std::collections::BTreeSet<&str> =
            f.arrays.iter().map(|a| a.organization.label()).collect();
        assert!(orgs.len() >= 3, "needs ≥ 3 organizations, got {orgs:?}");
        assert_eq!(f.classes.len(), 2);
        assert!(f.tenants.len() >= 4);
        assert!(
            f.arrays
                .iter()
                .any(|a| a.fault.as_ref().is_some_and(|fa| fa.disk_failure.is_some())),
            "demo must inject a mid-run disk failure"
        );
    }
}
