//! Controller retry policy for transient media errors.
//!
//! When a disk operation fails with a recoverable (transient) error, the
//! array controller re-drives it after a delay, doubling the delay on each
//! consecutive failure of the same operation; when the retry budget is
//! exhausted the error escalates to a permanent disk failure. The policy is
//! pure arithmetic — the simulator owns the clock and the error draws — so
//! the same attempt sequence always produces the same delays.

/// Exponential-backoff retry schedule: attempt `k` (1-based) is re-driven
/// after `base_delay_ns << (k-1)`, and attempts beyond `max_retries`
/// escalate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in nanoseconds.
    pub base_delay_ns: u64,
    /// Retries attempted before the error escalates to a permanent failure.
    pub max_retries: u32,
}

impl RetryPolicy {
    pub fn new(base_delay_ns: u64, max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            base_delay_ns,
            max_retries,
        }
    }

    /// Backoff before retry number `attempt` (1-based): the delay doubles
    /// per consecutive failure, saturating instead of overflowing so an
    /// absurd attempt count cannot wrap to a tiny delay.
    #[inline]
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.base_delay_ns.saturating_mul(1u64 << shift)
    }

    /// Whether a failure on attempt number `attempt` (1-based count of
    /// failed services so far) still has retry budget left.
    #[inline]
    pub fn retries_left(&self, attempt: u32) -> bool {
        attempt <= self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::new(500_000, 4);
        assert_eq!(p.backoff_ns(1), 500_000);
        assert_eq!(p.backoff_ns(2), 1_000_000);
        assert_eq!(p.backoff_ns(3), 2_000_000);
        assert_eq!(p.backoff_ns(4), 4_000_000);
    }

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let p = RetryPolicy::new(u64::MAX / 2, 4);
        assert_eq!(p.backoff_ns(64), u64::MAX);
        // The shift itself is capped, so huge attempt numbers are fine.
        let q = RetryPolicy::new(1, 4);
        assert_eq!(q.backoff_ns(1000), 1 << 20);
    }

    #[test]
    fn budget_boundary() {
        let p = RetryPolicy::new(1_000, 3);
        assert!(p.retries_left(1));
        assert!(p.retries_left(3));
        assert!(!p.retries_left(4));
    }
}
