//! Trace records and the in-memory trace container.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// Direction of an I/O request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    Read,
    Write,
}

/// One I/O request against the *logical* database: a run of `nblocks`
/// consecutive blocks on one logical disk.
///
/// The paper's trace entries carry the absolute block address, the access
/// type, and the time since the previous request (zero inside a multiblock
/// request). We store multiblock requests as a single record with an
/// absolute arrival time; the text format in [`crate::fmt`] round-trips the
/// original zero-gap representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Absolute arrival time of the request.
    pub at: SimTime,
    /// Logical disk number (0-based) within the database.
    pub disk: u32,
    /// First block within the logical disk.
    pub block: u64,
    /// Number of consecutive blocks (≥ 1).
    pub nblocks: u32,
    pub kind: AccessType,
}

impl TraceRecord {
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind == AccessType::Read
    }

    #[inline]
    pub fn is_multiblock(&self) -> bool {
        self.nblocks > 1
    }
}

/// An ordered I/O trace over a logical database of `n_disks` disks of
/// `blocks_per_disk` blocks each.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub n_disks: u32,
    pub blocks_per_disk: u64,
    pub records: Vec<TraceRecord>,
}

impl Trace {
    pub fn new(n_disks: u32, blocks_per_disk: u64) -> Trace {
        Trace {
            n_disks,
            blocks_per_disk,
            records: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Wall-clock span from time zero to the last arrival.
    pub fn duration(&self) -> SimTime {
        self.records.last().map_or(SimTime::ZERO, |r| r.at)
    }

    /// Validate ordering and address bounds; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev = SimTime::ZERO;
        for (i, r) in self.records.iter().enumerate() {
            if r.at < prev {
                return Err(format!("record {i}: arrival time moves backwards"));
            }
            prev = r.at;
            if r.nblocks == 0 {
                return Err(format!("record {i}: zero-length request"));
            }
            if r.disk >= self.n_disks {
                return Err(format!("record {i}: disk {} out of range", r.disk));
            }
            if r.block + r.nblocks as u64 > self.blocks_per_disk {
                return Err(format!("record {i}: block run exceeds disk size"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, disk: u32, block: u64, nblocks: u32, kind: AccessType) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_ms(at_ms),
            disk,
            block,
            nblocks,
            kind,
        }
    }

    #[test]
    fn record_predicates() {
        let r = rec(0, 0, 0, 1, AccessType::Read);
        assert!(r.is_read() && !r.is_multiblock());
        let w = rec(0, 0, 0, 4, AccessType::Write);
        assert!(!w.is_read() && w.is_multiblock());
    }

    #[test]
    fn validate_accepts_well_formed() {
        let mut t = Trace::new(2, 100);
        t.records.push(rec(1, 0, 0, 1, AccessType::Read));
        t.records.push(rec(1, 1, 96, 4, AccessType::Write));
        t.records.push(rec(2, 0, 99, 1, AccessType::Read));
        assert!(t.validate().is_ok());
        assert_eq!(t.duration(), SimTime::from_ms(2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn validate_rejects_violations() {
        let mut t = Trace::new(2, 100);
        t.records.push(rec(5, 0, 0, 1, AccessType::Read));
        t.records.push(rec(4, 0, 0, 1, AccessType::Read));
        assert!(t.validate().unwrap_err().contains("backwards"));

        let mut t = Trace::new(2, 100);
        t.records.push(rec(1, 2, 0, 1, AccessType::Read));
        assert!(t.validate().unwrap_err().contains("out of range"));

        let mut t = Trace::new(2, 100);
        t.records.push(rec(1, 0, 97, 4, AccessType::Read));
        assert!(t.validate().unwrap_err().contains("exceeds disk size"));

        let mut t = Trace::new(2, 100);
        t.records.push(rec(1, 0, 0, 0, AccessType::Read));
        assert!(t.validate().unwrap_err().contains("zero-length"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(1, 10);
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimTime::ZERO);
        assert!(t.validate().is_ok());
    }
}
