//! Fleet layer: many heterogeneous virtual arrays behind one trace router.
//!
//! The single-array simulator answers "how does *one* organization behave
//! under *one* workload". Real installations — and the heterogeneous disk
//! array literature (Thomasian & Xu) — pose the next question up: given a
//! *pool* of drives of different classes, how should many tenant workloads
//! be carved into **virtual arrays** (VA), each with its own organization,
//! disk class, cache share, and fault plan, and what does each tenant then
//! observe?
//!
//! The layer is four pieces, one per submodule:
//!
//! - [`config`]: [`FleetConfig`] — disk classes, VA specs, tenant demands —
//!   with field-naming validation (a malformed spec reports the offending
//!   field, never panics).
//! - [`alloc`]: [`allocate`] — a single-pass best-fit planner on bandwidth
//!   and capacity, turning tenant demands into placements on VAs and VAs
//!   into per-VA [`crate::SimConfig`]s over contiguous fleet-global logical
//!   disk spans.
//! - [`run`]: [`run_fleet`] — per-tenant substreams routed through
//!   [`tracegen::route`] into one master arrival stream, pre-split by VA
//!   via [`tracegen::Trace::split_arrivals`] (every record lands in exactly
//!   one VA: zero replay amplification), then simulated serially or
//!   work-stealing-parallel across VAs with per-disk-class warm-start
//!   pools. Results merge in VA index order, so the parallel run is
//!   byte-identical to the serial one.
//! - [`report`]: [`FleetReport`] — per-VA [`crate::SimReport`]s, per-tenant
//!   response statistics (mean + p99 from exact Welford/histogram merges),
//!   fleet throughput in events per *simulated* second (never wall-clock,
//!   which would break determinism hashing), and the rebuild blast radius:
//!   which tenants sat on a VA that lost a disk.

pub mod alloc;
pub mod config;
pub mod report;
pub mod run;
pub mod spec;

pub use alloc::{allocate, FleetPlan, VaPlan};
pub use config::{DiskClass, FleetConfig, TenantSpec, VirtualArraySpec};
pub use report::{FleetReport, TenantReport, VaReport};
pub use run::run_fleet;
