//! Differential tests for the dispatch seam: the pluggable
//! [`Discipline`] must leave the paper's FCFS results untouched and the
//! alternative disciplines must still serve every request.
//!
//! Three guarantees, in order of importance:
//!
//! 1. **FCFS is the pre-refactor simulator, byte for byte.** The seed
//!    hashes below were recorded on the monolithic simulator core before
//!    the scheduler seam existed (Trace 2 ×0.02, seed 7, FNV-1a over the
//!    `{:#?}`-serialized [`SimReport`]). If any hash moves, the refactor
//!    changed simulated behaviour — not just code layout.
//! 2. **SSTF and SCAN serve every enqueued op exactly once.** No request
//!    is lost or double-completed whichever discipline reorders the
//!    queue, healthy or cached, and replays are byte-identical.
//! 3. **Sweeps are thread-count invariant across disciplines.** A mixed
//!    FCFS/SSTF/SCAN sweep produces identical bytes at 1, 3, and 16
//!    worker threads.

use raidsim::{
    CacheConfig, Discipline, NamedRun, Organization, ParityPlacement, SimConfig, Simulator,
};
use tracegen::{SynthSpec, Trace};

fn organizations() -> [Organization; 5] {
    [
        Organization::Base,
        Organization::Mirror,
        Organization::Raid5 { striping_unit: 1 },
        Organization::Raid4 { striping_unit: 1 },
        Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        },
    ]
}

fn config(org: Organization, cached: bool, discipline: Discipline) -> SimConfig {
    let mut cfg = SimConfig::with_organization(org);
    if cached {
        cfg.cache = Some(CacheConfig::default());
    }
    cfg.seed = 7;
    cfg.scheduler = discipline;
    cfg
}

fn serialized_report(cfg: SimConfig, trace: &Trace) -> String {
    format!("{:#?}", Simulator::new(cfg, trace).run())
}

/// FNV-1a — the same digest `tests/determinism.rs` logs, so hashes here
/// can be cross-checked against its output directly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Report hashes recorded on the pre-refactor simulator (monolithic
/// `sim/mod.rs`, hard-wired FCFS `OpQueue`): Trace 2 scaled ×0.02,
/// seed 7. The explicit `Discipline::Fcfs` runs of the layered core must
/// reproduce every one of them.
const PRE_REFACTOR_FCFS_HASHES: [(usize, bool, u64); 10] = [
    (0, false, 0x142c_7a57_ea55_34d7), // Base
    (0, true, 0xf0b0_0ea2_a4e4_5625),
    (1, false, 0xc5ff_e9bc_04f7_d5c6), // Mirror
    (1, true, 0x2092_733a_eadd_9fb9),
    (2, false, 0xbc4b_fd81_46d9_2046), // RAID5
    (2, true, 0xdd5e_e570_c44b_fcae),
    (3, false, 0xce33_7f74_af52_1b45), // RAID4
    (3, true, 0x9b1a_aa31_82da_51b6),
    (4, false, 0xbf6d_4a66_0f16_bf68), // Parity Striping
    (4, true, 0x466c_959e_aa03_5d34),
];

#[test]
fn fcfs_replay_hashes_match_pre_refactor_baseline() {
    let trace = SynthSpec::trace2().scaled(0.02).generate();
    let orgs = organizations();
    for (idx, cached, expected) in PRE_REFACTOR_FCFS_HASHES {
        let org = orgs[idx];
        let s = serialized_report(config(org, cached, Discipline::Fcfs), &trace);
        assert_eq!(
            fnv1a(s.as_bytes()),
            expected,
            "{} (cached={cached}): FCFS report diverged from the \
             pre-refactor baseline — the scheduler seam changed behaviour",
            org.label()
        );
    }
}

/// The mid-run-failure scenario shared by the fault-path tests: a 4-disk
/// RAID5 array on a tiny 2-cylinder geometry, one disk failing at 1 s,
/// transient errors sprinkled in. `duration_secs` sets the arrival
/// density: 8.0 is the leisurely pinned-baseline load, shorter windows
/// congest the queues so the failure lands while ops are queued.
fn fault_scenario(discipline: Discipline, duration_secs: f64) -> (Trace, SimConfig) {
    let geometry = diskmodel::DiskGeometry {
        cylinders: 2,
        ..diskmodel::DiskGeometry::default()
    };
    let trace = SynthSpec {
        name: "fault-determinism".into(),
        seed: 0xFA17,
        n_disks: 4,
        blocks_per_disk: geometry.blocks_per_disk(),
        n_requests: 400,
        duration_secs,
        ..SynthSpec::trace2()
    }
    .generate();
    let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
    cfg.geometry = geometry;
    cfg.data_disks_per_array = 4;
    cfg.scheduler = discipline;
    cfg.fault = Some(raidsim::FaultConfig {
        disk_failure: Some(raidsim::DiskFailure {
            array: 0,
            disk: 1,
            at_ms: 1000,
        }),
        transient_error_prob: 0.01,
        ..raidsim::FaultConfig::default()
    });
    (trace, cfg)
}

/// The fault path (mid-run failure, abort/replan, rebuild) went through
/// the same seam swap; its baseline hash must hold too. This hash also
/// pins the abort *drain* order: `DiskScheduler::drain` aborts FCFS
/// queues byte-identically to the pop loop it replaced.
///
/// Re-pinned when the failure-lifecycle work extended `FaultReport` and
/// added the `reliability` section: every timing-bearing statistic
/// (response accumulators, utilizations, disk_ops, degraded/rebuild
/// windows) was verified byte-identical against the pre-lifecycle build —
/// only the report's shape changed.
#[test]
fn fcfs_fault_injection_hash_matches_pre_refactor_baseline() {
    let (trace, cfg) = fault_scenario(Discipline::Fcfs, 8.0);
    let s = serialized_report(cfg, &trace);
    assert_eq!(
        fnv1a(s.as_bytes()),
        0xbf3b_f1c4_370a_adf2,
        "fault-injected FCFS report diverged from the pre-refactor baseline"
    );
}

/// Abort-drain regression (scheduler contract clause 4): a disk failing
/// while SSTF/SCAN hold arm-position state must neither lose nor
/// duplicate the aborted in-flight ops — every traced request still
/// completes exactly once through the re-plan path — and the run stays a
/// pure function of its inputs. Pre-fix, the abort path emptied the
/// failed disk's queue by repeated `pop`s, sweeping the SCAN cursor
/// through ops that were never serviced; the hot spare inherited that
/// phantom position for rebuild and re-planned traffic.
#[test]
fn fault_during_sstf_and_scan_completes_every_request_deterministically() {
    for discipline in [Discipline::Sstf, Discipline::Scan] {
        let (trace, cfg) = fault_scenario(discipline, 1.5);
        let a = serialized_report(cfg.clone(), &trace);
        let report = Simulator::new(cfg.clone(), &trace).run();
        let ctx = discipline.label();
        assert_eq!(
            report.requests_completed,
            trace.len() as u64,
            "{ctx}: aborted ops lost or double-completed across the failure"
        );
        let faults = report
            .faults
            .as_ref()
            .expect("fault config attaches report");
        assert!(
            faults.ops_aborted > 0,
            "{ctx}: the failure must abort queued ops for the drain path to matter"
        );
        let b = serialized_report(cfg, &trace);
        assert_eq!(a, b, "{ctx}: fault-path replay diverged");
    }
}

/// SSTF and SCAN reorder within a band but must never lose or duplicate
/// work: every traced request completes exactly once, the read/write
/// split is preserved, and replays are byte-identical.
#[test]
fn sstf_and_scan_serve_every_request_exactly_once() {
    let trace = SynthSpec::trace2().scaled(0.02).generate();
    let expected_reads = trace.records.iter().filter(|r| r.is_read()).count() as u64;
    let expected_writes = trace.len() as u64 - expected_reads;
    for org in organizations() {
        for cached in [false, true] {
            for discipline in [Discipline::Sstf, Discipline::Scan] {
                let cfg = config(org, cached, discipline);
                let a = serialized_report(cfg.clone(), &trace);
                let report = Simulator::new(cfg.clone(), &trace).run();
                let ctx = format!("{} cached={cached} {}", org.label(), discipline.label());
                assert_eq!(
                    report.requests_completed,
                    trace.len() as u64,
                    "{ctx}: requests lost or duplicated by reordering"
                );
                assert_eq!(report.reads_completed, expected_reads, "{ctx}: reads");
                assert_eq!(report.writes_completed, expected_writes, "{ctx}: writes");
                let sched = report
                    .scheduler
                    .as_ref()
                    .expect("non-FCFS reports carry scheduler statistics");
                assert_eq!(sched.discipline, discipline.label(), "{ctx}: label");
                assert!(
                    sched.seek_distance_cyl.count() > 0,
                    "{ctx}: no dispatches recorded"
                );
                let b = serialized_report(cfg, &trace);
                assert_eq!(a, b, "{ctx}: replay diverged");
            }
        }
    }
}

/// The default (FCFS, no opt-in) report omits the scheduler section
/// entirely — that omission is what keeps the baseline hashes valid —
/// while `observability.scheduler_stats` attaches it without perturbing
/// simulated timing.
#[test]
fn scheduler_stats_are_opt_in_and_timing_neutral_under_fcfs() {
    let trace = SynthSpec::trace2().scaled(0.01).generate();
    for org in organizations() {
        let plain = Simulator::new(config(org, true, Discipline::Fcfs), &trace).run();
        assert!(
            plain.scheduler.is_none(),
            "{}: default FCFS report must omit scheduler stats",
            org.label()
        );
        let mut cfg = config(org, true, Discipline::Fcfs);
        cfg.observability.scheduler_stats = true;
        let stats = Simulator::new(cfg, &trace).run();
        let sched = stats.scheduler.expect("opt-in attaches scheduler stats");
        assert_eq!(sched.discipline, "FCFS");
        assert_eq!(
            format!("{:?}", plain.response_all_ms),
            format!("{:?}", stats.response_all_ms),
            "{}: collecting scheduler stats changed simulated timing",
            org.label()
        );
    }
}

/// A mixed-discipline sweep (five organizations × three disciplines) is
/// a pure function of its inputs at any worker count.
#[test]
fn mixed_discipline_sweep_is_thread_count_invariant() {
    let trace = SynthSpec::trace2().scaled(0.01).generate();
    let mut runs = Vec::new();
    for org in organizations() {
        for discipline in Discipline::ALL {
            runs.push(NamedRun::new(
                format!("{}-{}", org.label(), discipline.label()),
                config(org, false, discipline),
                &trace,
            ));
        }
    }
    let serial: Vec<String> = runs
        .iter()
        .map(|r| serialized_report(r.config.clone(), &trace))
        .collect();
    for threads in [1, 3, 16] {
        let out = raidsim::run_all(&runs, threads);
        for ((label, rep), expected) in out.iter().zip(&serial) {
            let s = format!("{:#?}", rep.as_ref().expect("valid config"));
            assert_eq!(
                &s, expected,
                "{label}: sweep at {threads} threads diverged from serial"
            );
        }
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Differential property: whatever the seed, organization, and
        /// cache state, all three disciplines complete the same request
        /// set — reordering changes *when* ops run, never *whether*.
        #[test]
        fn disciplines_agree_on_completed_work(
            seed in 0u64..1000,
            org_idx in 0usize..5,
            cached in any::<bool>(),
        ) {
            let trace = SynthSpec::trace2().scaled(0.005).generate();
            let org = organizations()[org_idx];
            let mut counts = Vec::new();
            for discipline in Discipline::ALL {
                let mut cfg = config(org, cached, discipline);
                cfg.seed = seed;
                let rep = Simulator::new(cfg, &trace).run();
                counts.push((
                    rep.requests_completed,
                    rep.reads_completed,
                    rep.writes_completed,
                    rep.disk_ops,
                ));
            }
            prop_assert_eq!(counts[0].0, trace.len() as u64);
            prop_assert_eq!(counts[0], counts[1]);
            prop_assert_eq!(counts[0], counts[2]);
        }
    }
}
