//! Synthetic OLTP trace generator calibrated to the paper's Table 2.

use crate::record::{AccessType, Trace, TraceRecord};
use crate::sampler::{exp_ns, geometric_trunc, Zipf};
use rand::seq::SliceRandom;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// Stack-distance distribution for temporal-locality re-references.
///
/// The choice shapes how the cache hit ratio grows with cache size
/// (Figure 11): geometric saturates quickly (compact working set),
/// log-uniform grows roughly linearly in the log of the cache size, and
/// uniform grows linearly in the cache size (large flat working set).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum RerefDist {
    /// Geometric with success probability `p` (mean distance ≈ 1/p).
    Geometric { p: f64 },
    /// Log-uniform over `[min, history_len]`.
    LogUniform { min: u64 },
    /// Uniform over `[1, history_len]`.
    Uniform,
}

impl RerefDist {
    fn sample<R: Rng>(&self, rng: &mut R, len: u32) -> u32 {
        match *self {
            RerefDist::Geometric { p } => geometric_trunc(rng, p, len),
            RerefDist::LogUniform { min } => {
                let lo = min.max(1) as f64;
                let hi = len as f64;
                if hi <= lo {
                    // History shorter than the distribution's floor: spread
                    // uniformly rather than pinning one ancient entry.
                    return rng.gen_range(1..=len.max(1));
                }
                let u: f64 = rng.gen();
                (lo * (hi / lo).powf(u)).ceil().min(hi) as u32
            }
            RerefDist::Uniform => rng.gen_range(1..=len.max(1)),
        }
    }
}

/// Everything the generator needs to synthesize one workload.
///
/// The two presets, [`SynthSpec::trace1`] and [`SynthSpec::trace2`],
/// reproduce the mix statistics of the paper's Table 2 exactly and its
/// qualitative skew/locality contrasts:
///
/// | property | Trace 1 | Trace 2 |
/// |---|---|---|
/// | disks / I/Os | 130 / 3.36 M | 10 / 69.5 K |
/// | write fraction | 10% | 28% |
/// | disk skew | moderate | high |
/// | temporal locality | high, small working set | low, large working set |
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthSpec {
    pub name: String,
    pub seed: u64,
    pub n_disks: u32,
    pub blocks_per_disk: u64,
    pub n_requests: usize,
    pub duration_secs: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Fraction of reads / writes that are multiblock.
    pub multiblock_read_fraction: f64,
    pub multiblock_write_fraction: f64,
    /// Mean length (blocks) of a multiblock request; truncated-geometric.
    pub multiblock_mean: f64,
    pub multiblock_max: u32,
    /// Zipf exponent of the load split across disks (0 = uniform).
    pub disk_skew_theta: f64,
    /// Within-disk structure: number of extents and their Zipf exponent.
    pub extents_per_disk: u32,
    pub extent_skew_theta: f64,
    /// Probability a fresh access continues the extent's sequential run
    /// (seek affinity).
    pub sequential_run_prob: f64,
    /// Probability a fresh access is *cold*: spatially uniform over the
    /// whole disk (ad-hoc queries, scans). Cold traffic misses the cache
    /// and pays full seeks regardless of organization.
    pub cold_prob: f64,
    /// Probability an access re-references a recently touched block.
    pub reref_prob: f64,
    /// Size of the recency stack re-references are drawn from.
    pub reref_stack: u32,
    /// Stack-distance distribution for read re-references.
    pub read_reref_dist: RerefDist,
    /// Stack-distance distribution for write-after-read references (writes
    /// update recently read blocks at much shorter distances than reads
    /// revisit data).
    pub write_reref_dist: RerefDist,
    /// Probability a write updates a recently *read* block (DB2 transactions
    /// read before updating, driving Trace 1's ~1.0 write hit ratio).
    pub write_after_read_prob: f64,
    /// Burstiness: mean run lengths (in requests) of the quiet and busy
    /// arrival states, and the busy-state speedup factor.
    pub quiet_run: u32,
    pub busy_run: u32,
    pub busy_speedup: f64,
}

impl SynthSpec {
    /// The large commercial workload: 130 data disks, 10% writes, moderate
    /// skew, strong temporal locality with a compact working set.
    pub fn trace1() -> SynthSpec {
        SynthSpec {
            name: "trace1".into(),
            seed: 0x7261_6964_0001,
            n_disks: 130,
            blocks_per_disk: 226_800,
            n_requests: 3_362_505,
            duration_secs: 10_980.0, // 3 h 3 min
            write_fraction: 0.100_30,
            multiblock_read_fraction: 0.015_64,
            multiblock_write_fraction: 0.072_07,
            multiblock_mean: 16.43,
            multiblock_max: 64,
            disk_skew_theta: 0.45,
            extents_per_disk: 64,
            extent_skew_theta: 1.25,
            sequential_run_prob: 0.55,
            cold_prob: 0.25,
            reref_prob: 0.66,
            reref_stack: 2_000_000,
            read_reref_dist: RerefDist::LogUniform { min: 8_000 },
            write_reref_dist: RerefDist::Geometric { p: 0.0017 },
            write_after_read_prob: 0.95,
            quiet_run: 800,
            busy_run: 200,
            busy_speedup: 3.0,
        }
    }

    /// The small workload with ad-hoc queries in the mix: 10 data disks, 28%
    /// writes, high disk skew, weak locality with large working sets.
    pub fn trace2() -> SynthSpec {
        SynthSpec {
            name: "trace2".into(),
            seed: 0x7261_6964_0002,
            n_disks: 10,
            blocks_per_disk: 226_800,
            n_requests: 69_539,
            duration_secs: 6_000.0, // 1 h 40 min
            write_fraction: 0.282_65,
            multiblock_read_fraction: 0.040_28,
            multiblock_write_fraction: 0.106_74,
            multiblock_mean: 18.71,
            multiblock_max: 64,
            disk_skew_theta: 1.5,
            extents_per_disk: 96,
            extent_skew_theta: 0.45,
            sequential_run_prob: 0.30,
            cold_prob: 0.30,
            reref_prob: 0.45,
            reref_stack: 65_000,
            read_reref_dist: RerefDist::Uniform,
            write_reref_dist: RerefDist::Geometric { p: 0.000125 },
            write_after_read_prob: 0.75,
            quiet_run: 400,
            busy_run: 600,
            busy_speedup: 6.0,
        }
    }

    /// Shrink the trace to `factor` of its request count at the *same*
    /// arrival rate and mix (duration shrinks proportionally). Used to keep
    /// experiment wall-clock reasonable; the per-disk load intensity the
    /// paper's results depend on is unchanged.
    pub fn scaled(mut self, factor: f64) -> SynthSpec {
        assert!(factor > 0.0 && factor <= 1.0);
        self.n_requests = ((self.n_requests as f64 * factor) as usize).max(1);
        self.duration_secs *= factor;
        self
    }

    /// Speed the trace up (`factor > 1`) or slow it down (`factor < 1`) by
    /// compressing interarrival gaps, as in the paper's Figures 10 and 18.
    /// Mix and addresses are unchanged; only the arrival intensity moves.
    pub fn at_speed(mut self, factor: f64) -> SynthSpec {
        assert!(factor > 0.0);
        self.duration_secs /= factor;
        self
    }

    /// Mean interarrival time in nanoseconds.
    fn mean_gap_ns(&self) -> f64 {
        self.duration_secs * 1e9 / self.n_requests as f64
    }

    /// Generate the trace. Deterministic in the spec (including seed).
    pub fn generate(&self) -> Trace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut trace = Trace::new(self.n_disks, self.blocks_per_disk);
        trace.records.reserve(self.n_requests);

        // --- address-space machinery -------------------------------------
        let disk_zipf = Zipf::new(self.n_disks as usize, self.disk_skew_theta);
        let mut disk_perm: Vec<u32> = (0..self.n_disks).collect();
        disk_perm.shuffle(&mut rng);

        let extent_zipf = Zipf::new(self.extents_per_disk as usize, self.extent_skew_theta);
        let extent_blocks = self.blocks_per_disk / self.extents_per_disk as u64;
        // Hot extents are *adjacent* (extent i occupies blocks
        // [i·extent_blocks, …)): a skewed extent distribution then keeps the
        // arm of a non-striped disk within a narrow band — the seek
        // affinity the paper's Section 4.2 credits Base with and striping
        // destroys.
        // Sequential-run cursor per (disk, extent), initialized at a random
        // in-extent offset.
        let mut cursors: Vec<u64> = (0..self.n_disks as usize * self.extents_per_disk as usize)
            .map(|_| rng.gen_range(0..extent_blocks))
            .collect();

        // Recency stack for temporal locality: (disk, block, was_read).
        let stack_cap = self.reref_stack as usize;
        let mut history: Vec<(u32, u64, bool)> = Vec::with_capacity(stack_cap);
        let mut head = 0usize; // next overwrite position once full

        // --- arrival-process machinery ------------------------------------
        // Busy state compresses gaps by `busy_speedup`; the quiet state is
        // stretched so the overall mean gap stays at duration/n.
        let total_run = (self.quiet_run + self.busy_run) as f64;
        let busy_gap_factor = 1.0 / self.busy_speedup;
        let quiet_gap_factor =
            (total_run - self.busy_run as f64 * busy_gap_factor) / self.quiet_run as f64;
        let mean_gap = self.mean_gap_ns();
        let mut in_busy = false;
        let mut run_left: u32 = self.quiet_run;

        // Geometric parameter for multiblock lengths 2.. with the target
        // mean: E[len] ≈ 2 + (1/p − 1) ⇒ p = 1/(mean − 1).
        let mb_p = 1.0 / (self.multiblock_mean - 1.0).max(1.0);

        let mut now = SimTime::ZERO;
        for _ in 0..self.n_requests {
            // Arrival.
            let factor = if in_busy {
                busy_gap_factor
            } else {
                quiet_gap_factor
            };
            now += exp_ns(&mut rng, mean_gap * factor);
            run_left = run_left.saturating_sub(1);
            if run_left == 0 {
                in_busy = !in_busy;
                run_left = if in_busy {
                    self.busy_run
                } else {
                    self.quiet_run
                };
            }

            // Direction and length.
            let is_write = rng.gen::<f64>() < self.write_fraction;
            let mb_frac = if is_write {
                self.multiblock_write_fraction
            } else {
                self.multiblock_read_fraction
            };
            let nblocks = if rng.gen::<f64>() < mb_frac {
                1 + geometric_trunc(&mut rng, mb_p, self.multiblock_max - 1)
            } else {
                1
            };

            // Address.
            let (disk, block, fresh) = self.pick_address(
                &mut rng,
                is_write,
                nblocks,
                &disk_zipf,
                &disk_perm,
                &extent_zipf,
                extent_blocks,
                &mut cursors,
                &history,
                head,
            );

            // Record; only fresh references enter the recency stack —
            // re-pushing re-references would create a preferential-
            // attachment feedback that runs the disk skew away over long
            // traces.
            trace.records.push(TraceRecord {
                at: now,
                disk,
                block,
                nblocks,
                kind: if is_write {
                    AccessType::Write
                } else {
                    AccessType::Read
                },
            });
            if fresh {
                let entry = (disk, block, !is_write);
                if history.len() < stack_cap {
                    history.push(entry);
                    head = history.len() % stack_cap.max(1);
                } else {
                    history[head] = entry;
                    head = (head + 1) % stack_cap;
                }
            }
        }
        debug_assert!(trace.validate().is_ok());
        trace
    }

    #[allow(clippy::too_many_arguments)]
    fn pick_address<R: Rng>(
        &self,
        rng: &mut R,
        is_write: bool,
        nblocks: u32,
        disk_zipf: &Zipf,
        disk_perm: &[u32],
        extent_zipf: &Zipf,
        extent_blocks: u64,
        cursors: &mut [u64],
        history: &[(u32, u64, bool)],
        head: usize,
    ) -> (u32, u64, bool) {
        // Temporal locality: re-reference a recently touched block. Writes
        // preferentially update recently *read* blocks.
        if !history.is_empty() {
            let p = if is_write {
                self.write_after_read_prob
            } else {
                self.reref_prob
            };
            if rng.gen::<f64>() < p {
                if let Some(&(d, b, _)) = self.pick_from_history(rng, history, head, is_write) {
                    let b = b.min(self.blocks_per_disk - nblocks as u64);
                    return (d, b, false);
                }
            }
        }

        // Fresh reference through the extent model; cold accesses pick a
        // uniformly random extent instead of a hot one.
        let disk = disk_perm[disk_zipf.sample(rng)];
        let extent = if rng.gen::<f64>() < self.cold_prob {
            rng.gen_range(0..self.extents_per_disk)
        } else {
            extent_zipf.sample(rng) as u32
        };
        let cursor_ix = disk as usize * self.extents_per_disk as usize + extent as usize;
        let within = if rng.gen::<f64>() < self.sequential_run_prob {
            cursors[cursor_ix]
        } else {
            rng.gen_range(0..extent_blocks)
        };
        let within = within.min(extent_blocks.saturating_sub(nblocks as u64));
        cursors[cursor_ix] = (within + nblocks as u64) % extent_blocks;
        let block =
            (extent as u64 * extent_blocks + within).min(self.blocks_per_disk - nblocks as u64);
        (disk, block, true)
    }

    /// Draw a history entry at a sampled stack distance; writes retry a
    /// few times to land on a read entry.
    fn pick_from_history<'h, R: Rng>(
        &self,
        rng: &mut R,
        history: &'h [(u32, u64, bool)],
        head: usize,
        want_read: bool,
    ) -> Option<&'h (u32, u64, bool)> {
        let len = history.len();
        let dist_kind = if want_read {
            self.write_reref_dist
        } else {
            self.read_reref_dist
        };
        for _ in 0..4 {
            let dist = dist_kind.sample(rng, len as u32) as usize;
            // `head` points at the oldest (next-overwrite) slot when full,
            // or one past the newest while filling; newest = head − 1.
            let idx = (head + len - dist) % len;
            let entry = &history[idx];
            if !want_read || entry.2 {
                return Some(entry);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(spec: SynthSpec) -> Trace {
        spec.scaled(0.01).generate()
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small(SynthSpec::trace1());
        let b = small(SynthSpec::trace1());
        assert_eq!(a, b);
        let mut spec = SynthSpec::trace1().scaled(0.01);
        spec.seed ^= 1;
        assert_ne!(spec.generate(), a);
    }

    #[test]
    fn trace_is_well_formed() {
        let t = small(SynthSpec::trace2());
        t.validate().unwrap();
        assert!(!t.is_empty());
    }

    #[test]
    fn mix_matches_spec() {
        let spec = SynthSpec::trace1().scaled(0.03); // ~100k requests
        let t = spec.generate();
        let n = t.len() as f64;
        let writes = t.records.iter().filter(|r| !r.is_read()).count() as f64;
        assert!(
            (writes / n - spec.write_fraction).abs() < 0.01,
            "write fraction {} vs {}",
            writes / n,
            spec.write_fraction
        );
        let multi_reads = t
            .records
            .iter()
            .filter(|r| r.is_read() && r.is_multiblock())
            .count() as f64;
        let reads = n - writes;
        assert!(
            (multi_reads / reads - spec.multiblock_read_fraction).abs() < 0.005,
            "multiblock read fraction {}",
            multi_reads / reads
        );
    }

    #[test]
    fn duration_matches_spec() {
        let spec = SynthSpec::trace1().scaled(0.02);
        let t = spec.generate();
        let got = t.duration().as_secs_f64();
        assert!(
            (got - spec.duration_secs).abs() < spec.duration_secs * 0.1,
            "duration {got} vs {}",
            spec.duration_secs
        );
    }

    #[test]
    fn trace2_skews_harder_than_trace1() {
        let count_cv = |t: &Trace, n: u32| {
            let mut counts = vec![0u64; n as usize];
            for r in &t.records {
                counts[r.disk as usize] += 1;
            }
            let mean = counts.iter().sum::<u64>() as f64 / n as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            var.sqrt() / mean
        };
        let t1 = SynthSpec::trace1().scaled(0.02).generate();
        let t2 = SynthSpec::trace2().generate();
        let cv1 = count_cv(&t1, 130);
        let cv2 = count_cv(&t2, 10);
        assert!(
            cv2 > cv1,
            "trace2 should be more skewed: cv1={cv1:.3} cv2={cv2:.3}"
        );
    }

    #[test]
    fn multiblock_mean_length_close() {
        let spec = SynthSpec::trace1().scaled(0.05);
        let t = spec.generate();
        let multis: Vec<u32> = t
            .records
            .iter()
            .filter(|r| r.is_multiblock())
            .map(|r| r.nblocks)
            .collect();
        assert!(!multis.is_empty());
        let mean = multis.iter().map(|&n| n as f64).sum::<f64>() / multis.len() as f64;
        assert!(
            (mean - spec.multiblock_mean).abs() < 3.0,
            "multiblock mean {mean} vs {}",
            spec.multiblock_mean
        );
    }

    #[test]
    fn at_speed_compresses_gaps() {
        let base = SynthSpec::trace2().scaled(0.1);
        let fast = base.clone().at_speed(2.0);
        let t_base = base.generate();
        let t_fast = fast.generate();
        assert_eq!(t_base.len(), t_fast.len());
        let d_base = t_base.duration().as_secs_f64();
        let d_fast = t_fast.duration().as_secs_f64();
        assert!(
            (d_base / d_fast - 2.0).abs() < 0.3,
            "speedup ratio {}",
            d_base / d_fast
        );
    }

    #[test]
    fn scaled_preserves_rate() {
        let full = SynthSpec::trace2();
        let part = SynthSpec::trace2().scaled(0.25);
        let rate_full = full.n_requests as f64 / full.duration_secs;
        let rate_part = part.n_requests as f64 / part.duration_secs;
        assert!((rate_full - rate_part).abs() < rate_full * 0.01);
    }

    #[test]
    fn writes_mostly_follow_reads_in_trace1() {
        // The write-after-read mechanism: most written blocks were read
        // earlier in the trace (gives the paper's ~1.0 write hit ratio).
        let t = SynthSpec::trace1().scaled(0.02).generate();
        use std::collections::HashSet;
        let mut read_blocks: HashSet<(u32, u64)> = HashSet::new();
        let mut hits = 0u64;
        let mut writes = 0u64;
        for r in &t.records {
            if r.is_read() {
                read_blocks.insert((r.disk, r.block));
            } else {
                writes += 1;
                if read_blocks.contains(&(r.disk, r.block)) {
                    hits += 1;
                }
            }
        }
        assert!(writes > 0);
        let frac = hits as f64 / writes as f64;
        assert!(frac > 0.6, "write-after-read fraction {frac}");
    }
}

#[cfg(test)]
mod reref_dist_tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn samples(dist: RerefDist, len: u32, n: usize) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(99);
        (0..n).map(|_| dist.sample(&mut rng, len)).collect()
    }

    #[test]
    fn all_distributions_stay_in_range() {
        for dist in [
            RerefDist::Geometric { p: 0.01 },
            RerefDist::LogUniform { min: 100 },
            RerefDist::Uniform,
        ] {
            for len in [1u32, 2, 50, 10_000] {
                for &d in &samples(dist, len, 500) {
                    assert!((1..=len.max(1)).contains(&d), "{dist:?} len={len} d={d}");
                }
            }
        }
    }

    #[test]
    fn log_uniform_honors_its_floor() {
        // With history far past the floor, no sample lands below it.
        let xs = samples(RerefDist::LogUniform { min: 1_000 }, 1_000_000, 2_000);
        assert!(xs.iter().all(|&d| d >= 1_000));
        // Mass spreads across decades: some samples below 10k, some above
        // 100k.
        assert!(xs.iter().any(|&d| d < 10_000));
        assert!(xs.iter().any(|&d| d > 100_000));
    }

    #[test]
    fn log_uniform_falls_back_below_floor() {
        // History shorter than the floor: behaves like uniform, never
        // pins a single distance.
        let xs = samples(RerefDist::LogUniform { min: 1_000 }, 64, 2_000);
        let distinct: std::collections::HashSet<u32> = xs.iter().copied().collect();
        assert!(
            distinct.len() > 30,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn uniform_mean_is_centered() {
        let xs = samples(RerefDist::Uniform, 10_000, 20_000);
        let mean = xs.iter().map(|&d| d as f64).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5_000.0).abs() < 200.0, "mean {mean}");
    }

    #[test]
    fn geometric_concentrates_near_one() {
        let xs = samples(RerefDist::Geometric { p: 0.1 }, 10_000, 5_000);
        let mean = xs.iter().map(|&d| d as f64).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 1.5, "mean {mean}");
    }
}
