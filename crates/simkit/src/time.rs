//! Integer-nanosecond simulation time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in integer nanoseconds from the start
/// of the run.
///
/// All model arithmetic (seek times, rotation periods, transfer times) is
/// carried out in `u64` nanoseconds so that simulations are exactly
/// reproducible. Durations are plain `u64` nanosecond counts; use the
/// `from_*`/`as_*` helpers at the model boundary only.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

pub const NS_PER_US: u64 = 1_000;
pub const NS_PER_MS: u64 = 1_000_000;
pub const NS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * NS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * NS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NS_PER_SEC)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond. Intended for configuration values (e.g. "11.2 ms average
    /// seek"), not for hot-path arithmetic.
    #[inline]
    pub fn from_ms_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0 && ms.is_finite());
        SimTime((ms * NS_PER_MS as f64).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// Value in fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Saturating difference `self - earlier` in nanoseconds.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Checked difference in nanoseconds; `None` if `earlier` is later.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }
}

/// Convert a nanosecond duration to fractional milliseconds (reporting only).
#[inline]
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / NS_PER_MS as f64
}

/// Convert fractional milliseconds to a nanosecond duration, rounding.
#[inline]
pub fn ms_to_ns(ms: f64) -> u64 {
    debug_assert!(ms >= 0.0 && ms.is_finite());
    (ms * NS_PER_MS as f64).round() as u64
}

/// Fraction of an observation window spent busy: `busy_ns / elapsed_ns`,
/// `0.0` for an empty window. The sanctioned way to turn two nanosecond
/// counters into a utilization without raw casts at the call site.
#[inline]
pub fn busy_fraction(busy_ns: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        0.0
    } else {
        busy_ns as f64 / elapsed_ns as f64
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, dur_ns: u64) -> SimTime {
        SimTime(self.0 + dur_ns)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, dur_ns: u64) {
        self.0 += dur_ns;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Duration in nanoseconds; panics in debug builds on negative spans.
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative SimTime span");
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_ms_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimTime::from_us(7).as_ns(), 7_000);
        assert_eq!(SimTime::from_secs(2).as_ns(), 2_000_000_000);
        assert_eq!(SimTime::from_ms(5).as_ms_f64(), 5.0);
        assert_eq!(SimTime::from_secs(4).as_secs_f64(), 4.0);
    }

    #[test]
    fn fractional_ms_rounds_to_nearest_ns() {
        assert_eq!(SimTime::from_ms_f64(11.2).as_ns(), 11_200_000);
        assert_eq!(SimTime::from_ms_f64(0.0000005).as_ns(), 1); // 0.5ns rounds up
        assert_eq!(ms_to_ns(1.5), 1_500_000);
        assert_eq!(ns_to_ms(250_000), 0.25);
    }

    #[test]
    fn busy_fraction_handles_empty_window() {
        assert_eq!(busy_fraction(500, 1_000), 0.5);
        assert_eq!(busy_fraction(0, 1_000), 0.0);
        assert_eq!(busy_fraction(123, 0), 0.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10);
        assert_eq!((t + 500).as_ns(), 10_000_500);
        let mut u = t;
        u += 1_000;
        assert_eq!(u.as_ns(), 10_001_000);
        assert_eq!(u - t, 1_000);
        assert_eq!(t.saturating_since(u), 0);
        assert_eq!(u.saturating_since(t), 1_000);
        assert_eq!(t.checked_since(u), None);
        assert_eq!(u.checked_since(t), Some(1_000));
    }

    #[test]
    fn ordering_and_sentinels() {
        assert!(SimTime::ZERO < SimTime::from_ns(1));
        assert!(SimTime::from_secs(1) < SimTime::MAX);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_formats_in_ms() {
        assert_eq!(format!("{}", SimTime::from_ms_f64(11.2)), "11.200ms");
        assert_eq!(format!("{:?}", SimTime::from_us(1)), "0.001000ms");
    }
}
