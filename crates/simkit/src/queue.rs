//! Future-event list: a calendar queue keyed on ([`SimTime`], insertion
//! sequence) with O(1) slot-table cancellation.
//!
//! Ties are broken by insertion order so that two events scheduled for the
//! same instant fire in the order they were scheduled. This determinism
//! matters: disk-array response times are sensitive to who wins a
//! simultaneous arrival at a queue.
//!
//! ## Calendar layout
//!
//! Events live in a power-of-two ring of buckets, each `width` nanoseconds
//! wide. Bucket `home & (nbuckets - 1)` holds the events whose home bucket
//! `home = at / width` falls inside the sliding window
//! `[cur, cur + nbuckets)`; events beyond the window wait in an overflow
//! calendar (an ordered map keyed by home bucket) and migrate into the
//! ring as the window advances — each migration pops exactly the buckets
//! entering the window, so far-future events cost O(log overflow) to park
//! and O(1) amortized to migrate, never a scan of the whole list. With the
//! width matched to the trace's mean event spacing (see
//! [`EventQueue::with_profile`]), a pop touches one short bucket instead of
//! a log-depth heap, and the bucket scan is a linear pass over a small
//! contiguous `Vec` — the common case is O(1).
//!
//! An occupancy bitmap (one bit per bucket) lets the pop path skip runs of
//! empty buckets 64 at a time, so sparse stretches of simulated time cost
//! a handful of word scans rather than a bucket-by-bucket walk.
//!
//! ## Slot table
//!
//! Every scheduled event owns a slot in a `Vec`-backed table; its
//! [`EventId`] is the (slot, generation) pair. The slot records where its
//! entry currently lives (ring bucket and position, or overflow home
//! bucket and position), so
//! cancellation removes the entry eagerly — O(1) `swap_remove`, no
//! tombstones, no lazy draining. Slots are recycled through a free list;
//! the generation counter bumps on every reuse, so a stale id (fired or
//! cancelled long ago) can never cancel the slot's new occupant. A slot
//! whose generation reaches `u32::MAX` is retired instead of wrapping:
//! wrapping would reissue generation 0 and let an ancient id alias the
//! slot's new occupant.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Internally a (slot, generation) pair into the queue's slot table;
/// generations make ids single-use, so an id kept past its event's firing
/// or cancellation is harmlessly rejected even after the slot is reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

impl EventId {
    /// Slot index, for engine-side per-event bookkeeping (e.g. mapping a
    /// pending event to its schedule ordinal while recording).
    pub(crate) fn slot_index(self) -> usize {
        self.slot as usize
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

/// Where a live entry currently resides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    /// No pending entry (slot free, or retired).
    Free,
    /// In ring bucket `bucket` at index `pos`.
    Ring { bucket: u32, pos: u32 },
    /// In the overflow calendar under key `home`, at index `pos` within
    /// that bucket's vector.
    Over { home: u64, pos: u32 },
}

/// One slot of the location table. `loc` is `Free` from the event's pop or
/// cancellation until the slot's next reuse; `gen` counts reuses.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    loc: Loc,
}

/// Priority queue of future events.
///
/// `pop` returns events in nondecreasing time order; events with equal
/// timestamps come out in scheduling order (the (time, seq) tie-break).
/// `cancel` is O(1): the slot table records the entry's exact location and
/// it is removed on the spot.
///
/// All bookkeeping lives in flat `Vec`s (bucket ring + slot table + free
/// list + bitmap) — no ordered sets, no hashing — so the structure is
/// cache-friendly and trivially deterministic.
pub struct EventQueue<E> {
    /// `ring[home & mask]` holds entries with `home ∈ [cur, cur+nbuckets)`.
    ring: Vec<Vec<Entry<E>>>,
    /// One bit per ring bucket: set iff the bucket is non-empty.
    occ: Vec<u64>,
    /// Entries whose home bucket is beyond the current window, keyed by
    /// home bucket. The ordered map makes the overflow minimum and the
    /// in-window range cheap to find, so migration touches only the
    /// entries actually entering the window — never the whole overflow.
    over: BTreeMap<u64, Vec<Entry<E>>>,
    /// Bucket width in nanoseconds (≥ 1).
    width: u64,
    /// `nbuckets - 1`; `nbuckets` is a power of two.
    mask: usize,
    /// Current absolute bucket: no live entry has `home < cur`.
    cur: u64,
    /// Entries currently in the ring.
    ring_live: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Scheduled minus popped minus cancelled.
    live_count: usize,
    /// High-water mark of `live_count` over the queue's lifetime.
    peak_live: usize,
    next_seq: u64,
}

/// Default bucket width: ~131 µs. Together with [`DEFAULT_NBUCKETS`] this
/// spans a ~134 ms window — generous for unit-test workloads; simulators
/// should size the calendar from their trace via [`EventQueue::with_profile`].
const DEFAULT_WIDTH_NS: u64 = 1 << 17;
const DEFAULT_NBUCKETS: usize = 1024;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the slot table for `cap` simultaneously pending events
    /// (all structures still grow on demand past that).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_profile_capacity(DEFAULT_WIDTH_NS, DEFAULT_NBUCKETS, cap)
    }

    /// Size the calendar from the workload's event-time distribution:
    /// `width_ns` should approximate the mean spacing between consecutive
    /// event times (so each pop scans ~one bucket) and `nbuckets` the
    /// typical pending-event count (rounded up to a power of two). Both are
    /// performance knobs only — ordering is exact for any values.
    pub fn with_profile(width_ns: u64, nbuckets: usize) -> Self {
        Self::with_profile_capacity(width_ns, nbuckets, 0)
    }

    fn with_profile_capacity(width_ns: u64, nbuckets: usize, cap: usize) -> Self {
        let nbuckets = nbuckets.max(2).next_power_of_two();
        EventQueue {
            ring: (0..nbuckets).map(|_| Vec::new()).collect(),
            occ: vec![0u64; nbuckets.div_ceil(64)],
            over: BTreeMap::new(),
            width: width_ns.max(1),
            mask: nbuckets - 1,
            cur: 0,
            ring_live: 0,
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live_count: 0,
            peak_live: 0,
            next_seq: 0,
        }
    }

    #[inline]
    fn nbuckets(&self) -> u64 {
        (self.mask + 1) as u64
    }

    /// Home bucket of an event time, clamped so nothing lands before `cur`
    /// (past-time events go into the current bucket; the in-bucket min scan
    /// still orders them exactly).
    #[inline]
    fn home_of(&self, at: SimTime) -> u64 {
        (at.0 / self.width).max(self.cur)
    }

    #[inline]
    fn push_ring(&mut self, home: u64, e: Entry<E>) {
        let bucket = (home & self.mask as u64) as usize;
        self.slots[e.slot as usize].loc = Loc::Ring {
            bucket: bucket as u32,
            pos: self.ring[bucket].len() as u32,
        };
        self.ring[bucket].push(e);
        self.occ[bucket / 64] |= 1u64 << (bucket % 64);
        self.ring_live += 1;
    }

    /// Remove and return the entry at `ring[bucket][pos]`, patching the
    /// location of whichever entry `swap_remove` moved into its place.
    fn remove_ring(&mut self, bucket: u32, pos: u32) -> Entry<E> {
        let b = bucket as usize;
        let e = self.ring[b].swap_remove(pos as usize);
        if let Some(moved) = self.ring[b].get(pos as usize) {
            self.slots[moved.slot as usize].loc = Loc::Ring { bucket, pos };
        }
        if self.ring[b].is_empty() {
            self.occ[b / 64] &= !(1u64 << (b % 64));
        }
        self.ring_live -= 1;
        e
    }

    /// Minimum home bucket over the overflow; `u64::MAX` when empty.
    #[inline]
    fn over_min_home(&self) -> u64 {
        self.over
            .first_key_value()
            .map_or(u64::MAX, |(&home, _)| home)
    }

    /// Remove and return the entry at `over[home][pos]`, patching the moved
    /// entry's location and dropping the bucket once it empties.
    fn remove_over(&mut self, home: u64, pos: u32) -> Entry<E> {
        let bucket = self
            .over
            .get_mut(&home)
            // simlint::allow(panic-policy): `Loc::Over` always names a live bucket
            .expect("overflow location names a missing bucket");
        let e = bucket.swap_remove(pos as usize);
        if let Some(moved) = bucket.get(pos as usize) {
            self.slots[moved.slot as usize].loc = Loc::Over { home, pos };
        }
        if bucket.is_empty() {
            self.over.remove(&home);
        }
        e
    }

    /// Move every overflow entry whose home has entered the window into the
    /// ring. The overflow is keyed by home bucket, so this pops exactly the
    /// buckets entering the window — O(moved) with no scan of the rest.
    fn migrate_overflow(&mut self) {
        let nb = self.nbuckets();
        while let Some(entry) = self.over.first_entry() {
            let home = *entry.key();
            if home.saturating_sub(self.cur) >= nb {
                break;
            }
            for e in entry.remove() {
                self.push_ring(home, e);
            }
        }
    }

    /// Distance from `cur` to the first occupied ring bucket (0 if the
    /// current bucket is occupied); `None` when the ring is empty.
    fn next_occupied_delta(&self) -> Option<u64> {
        if self.ring_live == 0 {
            return None;
        }
        let nb = self.mask + 1;
        let nwords = self.occ.len();
        let start = (self.cur & self.mask as u64) as usize;
        let mut bit = start % 64;
        for k in 0..=nwords {
            let word = (start / 64 + k) % nwords;
            let w = self.occ[word] & (!0u64 << bit);
            if w != 0 {
                let b = word * 64 + w.trailing_zeros() as usize;
                return Some(((b + nb - start) & self.mask) as u64);
            }
            bit = 0;
        }
        unreachable!("ring_live > 0 but no occupancy bit set");
    }

    /// Index of the (time, seq)-minimum entry in `ring[bucket]`.
    fn bucket_min(&self, bucket: usize) -> usize {
        let v = &self.ring[bucket];
        let mut best = 0;
        for i in 1..v.len() {
            if (v[i].at, v[i].seq) < (v[best].at, v[best].seq) {
                best = i;
            }
        }
        best
    }

    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    loc: Loc::Free,
                });
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Retire `slot` back to the free list, invalidating outstanding ids.
    /// A slot that has exhausted its generation space is retired for good:
    /// wrapping to generation 0 would let an ancient id alias the slot's
    /// next occupant.
    #[inline]
    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.loc = Loc::Free;
        if s.gen == u32::MAX {
            return; // retired: never reused, stale ids stay inert
        }
        s.gen += 1;
        self.free.push(slot);
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let slot = self.alloc_slot();
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live_count += 1;
        if self.live_count > self.peak_live {
            self.peak_live = self.live_count;
        }
        let home = self.home_of(at);
        let e = Entry {
            at,
            seq,
            slot,
            event,
        };
        if home - self.cur < self.nbuckets() {
            self.push_ring(home, e);
        } else {
            let bucket = self.over.entry(home).or_default();
            self.slots[slot as usize].loc = Loc::Over {
                home,
                pos: bucket.len() as u32,
            };
            bucket.push(e);
        }
        EventId { slot, gen }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or already cancelled). A stale id
    /// — fired, already cancelled, or from a recycled slot — is rejected by
    /// the generation check and never touches the slot's current occupant.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get(id.slot as usize) else {
            return false;
        };
        if slot.gen != id.gen {
            return false;
        }
        match slot.loc {
            Loc::Free => false,
            Loc::Ring { bucket, pos } => {
                self.remove_ring(bucket, pos);
                self.release_slot(id.slot);
                self.live_count -= 1;
                true
            }
            Loc::Over { home, pos } => {
                self.remove_over(home, pos);
                self.release_slot(id.slot);
                self.live_count -= 1;
                true
            }
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.live_count == 0 {
            return None;
        }
        if self.ring_live == 0 {
            // Ring drained: jump the window straight to the earliest
            // overflow home instead of stepping bucket by bucket.
            self.cur = self.over_min_home();
        }
        if self.over_min_home().saturating_sub(self.cur) < self.nbuckets() {
            self.migrate_overflow();
        }
        let delta = self
            .next_occupied_delta()
            // simlint::allow(panic-policy): `len > 0` guarantees an occupied bucket
            .expect("live events but empty calendar");
        self.cur += delta;
        let bucket = (self.cur & self.mask as u64) as usize;
        let best = self.bucket_min(bucket);
        let e = self.remove_ring(bucket as u32, best as u32);
        self.release_slot(e.slot);
        self.live_count -= 1;
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.live_count == 0 {
            return None;
        }
        let ring_best = self.next_occupied_delta().map(|delta| {
            let bucket = ((self.cur + delta) & self.mask as u64) as usize;
            let e = &self.ring[bucket][self.bucket_min(bucket)];
            ((e.at, e.seq), self.cur + delta)
        });
        match ring_best {
            // The overflow can only beat the ring when its earliest home is
            // at or before the ring candidate's bucket; otherwise every
            // overflow entry is at least a full bucket later.
            Some((key, home)) if self.over_min_home() > home => Some(key.0),
            other => {
                // The global overflow minimum lives in the minimum-home
                // bucket: a smaller `at` means a home at most as large, and
                // equal `at`s share a home.
                let over_best = self
                    .over
                    .first_key_value()
                    .and_then(|(_, v)| v.iter().map(|e| (e.at, e.seq)).min());
                let best = match (other.map(|(k, _)| k), over_best) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => return None,
                };
                Some(best.0)
            }
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live_count
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Most events simultaneously pending over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Test-only: pin a slot's generation counter, simulating the slot
    /// having been recycled that many times.
    #[cfg(test)]
    fn force_slot_gen(&mut self, slot: u32, gen: u32) {
        self.slots[slot as usize].gen = gen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5), "c");
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { slot: 42, gen: 0 }));
    }

    /// Regression: cancelling an id that already fired used to insert a
    /// tombstone that nothing could consume, making `len()` underflow.
    #[test]
    fn cancel_of_fired_event_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a), "cancel of a fired event must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue remains fully usable afterwards.
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert_eq!(q.pop(), None);
    }

    /// Regression: the same stale-cancel scenario with another event still
    /// pending; `len()` must not drift.
    #[test]
    fn stale_cancel_does_not_corrupt_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "b")));
        assert!(q.is_empty());
    }

    /// A fired event's slot is recycled by the next schedule; the stale id
    /// must not cancel (or even see) the slot's new occupant.
    #[test]
    fn stale_id_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        // Slot is reused with a bumped generation.
        let b = q.schedule(SimTime::from_ms(2), "b");
        assert!(!q.cancel(a), "stale id must not cancel the new occupant");
        assert_eq!(q.len(), 1, "the new occupant is untouched");
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert!(!q.cancel(b), "fired reuser's own id is stale too");
    }

    /// Same, when the first occupant was cancelled rather than popped: the
    /// cancelled id stays dead through the slot's next life.
    #[test]
    fn cancelled_id_stays_dead_after_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert!(q.cancel(a));
        // Cancellation removes the entry eagerly, so the slot is free.
        let b = q.schedule(SimTime::from_ms(3), "b");
        assert!(!q.cancel(a), "cancelled id is single-use");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "b")));
        assert!(!q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    /// Ids from consecutive lives of one slot are distinct values.
    #[test]
    fn recycled_slot_yields_distinct_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), 0);
        q.pop();
        let b = q.schedule(SimTime::from_ms(1), 1);
        assert_ne!(a, b, "generation must differ on slot reuse");
    }

    /// Regression (generation wraparound): a slot whose generation counter
    /// has exhausted `u32` must be retired, not wrapped. Pre-fix, releasing
    /// a generation-`u32::MAX` occupant wrapped the counter to 0 and the
    /// next schedule on that slot aliased the oldest possible id — an
    /// ancient, long-dead `EventId` could then cancel a brand-new event.
    #[test]
    fn generation_wraparound_retires_slot_instead_of_aliasing() {
        let mut q = EventQueue::new();
        let ancient = q.schedule(SimTime::from_ms(1), "a"); // slot 0, gen 0
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        // Simulate the slot having lived through the whole generation space.
        q.force_slot_gen(0, u32::MAX);
        let b = q.schedule(SimTime::from_ms(2), "b"); // slot 0, gen u32::MAX
        assert!(q.cancel(b)); // releases the slot at the end of its gen space
        let _c = q.schedule(SimTime::from_ms(3), "c");
        assert!(
            !q.cancel(ancient),
            "an id from a wrapped-around slot must never cancel the new occupant"
        );
        assert_eq!(q.len(), 1, "the new event must survive the stale cancel");
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_skips_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(9), "b")));
        assert_eq!(q.peek_time(), None);
    }

    /// Cancelling an entry buried behind others must remove exactly it;
    /// `peek_time` must never report it.
    #[test]
    fn buried_cancellation_is_skipped_when_it_surfaces() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(1), "a");
        let b = q.schedule(SimTime::from_ms(2), "b");
        q.schedule(SimTime::from_ms(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(3)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(2), "b");
        q.schedule(SimTime::from_ms(3), "c");
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::from_ms(4), "d");
        assert_eq!(q.peak_len(), 3, "peak is a lifetime high-water mark");
    }

    /// Events beyond the calendar window park in the overflow list and must
    /// still interleave exactly with ring events as the window slides.
    #[test]
    fn overflow_entries_interleave_with_ring_entries() {
        // 4 buckets × 100 ns: a 400 ns window, so 10 µs is deep overflow.
        let mut q = EventQueue::with_profile(100, 4);
        q.schedule(SimTime::from_ns(10_000), "far");
        q.schedule(SimTime::from_ns(50), "near");
        q.schedule(SimTime::from_ns(350), "mid");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(50)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(50), "near")));
        // Scheduling relative to an advanced window still orders exactly.
        q.schedule(SimTime::from_ns(9_999), "almost");
        assert_eq!(q.pop(), Some((SimTime::from_ns(350), "mid")));
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9_999)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9_999), "almost")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(10_000), "far")));
        assert_eq!(q.pop(), None);
    }

    /// Cancelling overflow entries — including the overflow minimum — keeps
    /// ordering and `len` exact.
    #[test]
    fn cancel_in_overflow_updates_minimum() {
        let mut q = EventQueue::with_profile(100, 4);
        let far_a = q.schedule(SimTime::from_ns(5_000), "far_a");
        q.schedule(SimTime::from_ns(9_000), "far_b");
        q.schedule(SimTime::from_ns(10), "near");
        assert!(q.cancel(far_a), "overflow entry is cancellable");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9_000), "far_b")));
        assert_eq!(q.pop(), None);
    }

    /// Saturated far-future timestamps (u64::MAX-adjacent) must be
    /// schedulable, poppable, and cancellable without overflow panics.
    #[test]
    fn u64_max_adjacent_times_are_handled() {
        let mut q = EventQueue::with_profile(1, 8);
        q.schedule(SimTime::MAX, "end");
        q.schedule(SimTime::from_ns(u64::MAX - 1), "almost");
        q.schedule(SimTime::ZERO, "start");
        assert_eq!(q.pop(), Some((SimTime::ZERO, "start")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(u64::MAX - 1), "almost")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "end")));
        assert_eq!(q.pop(), None);
    }

    /// Naive reference model: the observable behavior the calendar queue
    /// must reproduce exactly. Linear scans everywhere — unambiguously
    /// correct, hopelessly slow.
    struct ModelQueue {
        // (time_ns, seq, cancelled)
        pending: Vec<(u64, u64, bool)>,
        next_seq: u64,
    }

    impl ModelQueue {
        fn new() -> Self {
            ModelQueue {
                pending: Vec::new(),
                next_seq: 0,
            }
        }

        fn schedule(&mut self, t: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push((t, seq, false));
            seq
        }

        /// Cancel by scheduling sequence; true iff still pending.
        fn cancel(&mut self, seq: u64) -> bool {
            match self.pending.iter_mut().find(|e| e.1 == seq && !e.2) {
                Some(e) => {
                    e.2 = true;
                    true
                }
                None => false,
            }
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            let i = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.2)
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i)?;
            let e = self.pending.remove(i);
            self.pending.retain(|x| !x.2);
            Some((e.0, e.1))
        }

        fn peek_time(&self) -> Option<u64> {
            self.pending
                .iter()
                .filter(|e| !e.2)
                .map(|e| (e.0, e.1))
                .min()
                .map(|(t, _)| t)
        }

        fn len(&self) -> usize {
            self.pending.iter().filter(|e| !e.2).count()
        }
    }

    /// One step of the differential interpreter.
    #[derive(Clone, Debug)]
    enum Op {
        Schedule(u64),
        /// Cancel the id issued by the i-th Schedule so far (mod count);
        /// may be live, fired, cancelled, or from a since-recycled slot.
        Cancel(usize),
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..10_000).prop_map(Op::Schedule),
            2 => (0usize..64).prop_map(Op::Cancel),
            2 => Just(Op::Pop),
            1 => Just(Op::Peek),
        ]
    }

    fn run_differential(mut real: EventQueue<u64>, ops: Vec<Op>) -> Result<(), TestCaseError> {
        let mut model = ModelQueue::new();
        // i-th Schedule's handles in both worlds: (EventId, model seq).
        let mut issued: Vec<(EventId, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    let seq = model.schedule(t);
                    let id = real.schedule(SimTime::from_ns(t), seq);
                    issued.push((id, seq));
                }
                Op::Cancel(i) => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (id, seq) = issued[i % issued.len()];
                    prop_assert_eq!(
                        real.cancel(id),
                        model.cancel(seq),
                        "cancel of schedule #{} disagrees",
                        i
                    );
                }
                Op::Pop => {
                    let got = real.pop().map(|(at, seq)| (at.as_ns(), seq));
                    prop_assert_eq!(got, model.pop());
                }
                Op::Peek => {
                    let got = real.peek_time().map(|t| t.as_ns());
                    prop_assert_eq!(got, model.peek_time());
                }
            }
            prop_assert_eq!(real.len(), model.len());
            prop_assert_eq!(real.is_empty(), model.len() == 0);
            // peek is pure: always consistent with len.
            prop_assert_eq!(real.peek_time().is_some(), !real.is_empty());
        }
        // Drain both to the end: same residue in the same order.
        loop {
            let got = real.pop().map(|(at, seq)| (at.as_ns(), seq));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        /// Popped timestamps are nondecreasing, and every scheduled,
        /// non-cancelled event comes out exactly once.
        #[test]
        fn prop_time_order_and_completeness(
            times in proptest::collection::vec(0u64..10_000, 1..200),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                ids.push((q.schedule(SimTime::from_ns(t), i), t));
            }
            let mut live = Vec::new();
            for (i, (id, t)) in ids.into_iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(id));
                } else {
                    live.push((t, i));
                }
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((at, idx)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
                out.push((at.as_ns(), idx));
            }
            live.sort();
            out.sort();
            prop_assert_eq!(live, out);
        }

        /// Differential property: drive the calendar queue and the naive
        /// reference model through a random interleaving of schedule /
        /// cancel / pop / peek — including cancels of stale and recycled
        /// ids — and require identical observable behavior at every step.
        /// Run with the default profile (everything in one bucket at these
        /// timescales) to stress in-bucket ordering.
        #[test]
        fn prop_differential_against_model(
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            run_differential(EventQueue::new(), ops)?;
        }

        /// Same differential, with a deliberately tiny calendar (64 ns × 8
        /// buckets against 10 µs timestamps) so almost everything churns
        /// through the overflow list, window jumps, and migrations.
        #[test]
        fn prop_differential_with_tiny_calendar(
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            run_differential(EventQueue::with_profile(64, 8), ops)?;
        }
    }
}
