//! Model ablations for the design choices DESIGN.md calls out:
//!
//! * destage period — including the paper's "periodic destage vs plain LRU
//!   writeback" comparison (Section 3.4);
//! * RAID4 spool drain run length (SCAN batch size);
//! * track buffers per disk (admission control pressure);
//! * striping-unit fast paths (full-stripe/reconstruct vs always-RMW is
//!   visible through multiblock-write-heavy workloads);
//! * scheduling discipline × load (queue depth) — per-discipline mean seek
//!   distance is also written to a results JSON for downstream tooling.
//!
//! ```text
//! cargo run --release -p bench --bin ablations [-- --json PATH]
//! ```

use raidsim::{CacheConfig, Discipline, Organization, SimConfig, Simulator};
use raidtp_stats::Table;
use tracegen::SynthSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "ablations_scheduler.json".into());
    let trace = SynthSpec::trace2().generate();

    println!("== Ablation: destage period (cached RAID5, Trace 2, 16 MB) ==\n");
    let mut t = Table::new(&[
        "destage period",
        "mean ms",
        "write hit %",
        "dirty evictions",
    ]);
    for (label, ms) in [
        ("100 ms", 100u64),
        ("1 s (default)", 1_000),
        ("10 s", 10_000),
        ("60 s", 60_000),
        ("none (pure LRU)", 1_000_000_000), // ~11 sim-days: never fires
    ] {
        let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
        cfg.cache = Some(CacheConfig {
            size_mb: 16,
            destage_period_ms: ms,
        });
        let r = Simulator::new(cfg, &trace).run();
        let stats = r.cache.expect("cached run always reports cache stats");
        t.row(&[
            label.to_string(),
            format!("{:.2}", r.mean_response_ms()),
            format!("{:.1}", r.write_hit_ratio() * 100.0),
            stats.dirty_evictions.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n== Ablation: track buffers per disk (non-cached Base, Trace 2 @2x) ==\n");
    let fast = SynthSpec::trace2().at_speed(2.0).generate();
    let mut t = Table::new(&["buffers/disk", "mean ms", "admission waits"]);
    for buffers in [1u32, 2, 5, 20] {
        let mut cfg = SimConfig::with_organization(Organization::Base);
        cfg.track_buffers_per_disk = buffers;
        let r = Simulator::new(cfg, &fast).run();
        t.row(&[
            buffers.to_string(),
            format!("{:.2}", r.mean_response_ms()),
            r.buffer_waits.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\n== Ablation: multiblock write handling across striping units (RAID5, Trace 2) ==\n"
    );
    let mut spec = SynthSpec::trace2();
    spec.multiblock_write_fraction = 0.5; // stress the full/reconstruct/RMW split
    let heavy = spec.generate();
    let mut t = Table::new(&["striping unit", "mean ms", "disk ops"]);
    for su in [1u32, 2, 8, 16] {
        let cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: su });
        let r = Simulator::new(cfg, &heavy).run();
        t.row(&[
            su.to_string(),
            format!("{:.2}", r.mean_response_ms()),
            r.disk_ops.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n== Ablation: scheduling discipline × load (non-cached Base, Trace 2) ==\n");
    // Queue depth is driven by trace speed: FCFS and the seek-aware
    // disciplines coincide on near-empty queues and diverge as they fill.
    let loads: Vec<(f64, _)> = [1.0, 2.0, 4.0]
        .into_iter()
        .map(|speed| (speed, SynthSpec::trace2().at_speed(speed).generate()))
        .collect();
    let mut t = Table::new(&["discipline", "speed", "mean ms", "qdepth N", "seek cyl"]);
    let mut json_rows = Vec::new();
    for d in Discipline::ALL {
        for (speed, trace) in &loads {
            let mut cfg = SimConfig::with_organization(Organization::Base);
            cfg.scheduler = d;
            cfg.observability.scheduler_stats = true;
            let r = Simulator::new(cfg, trace).run();
            let s = r.scheduler.as_ref().expect("scheduler stats requested");
            let qdepth = s.queue_depth_normal.mean();
            let seek = s.mean_seek_distance_cyl();
            t.row(&[
                d.label().to_string(),
                format!("{speed}"),
                format!("{:.2}", r.mean_response_ms()),
                format!("{:.2}", qdepth),
                format!("{seek:.1}"),
            ]);
            json_rows.push(format!(
                "    {{\"discipline\": \"{}\", \"speed\": {speed}, \
                 \"mean_response_ms\": {:.4}, \"mean_queue_depth\": {qdepth:.4}, \
                 \"mean_seek_distance_cyl\": {seek:.4}}}",
                d.label(),
                r.mean_response_ms(),
            ));
        }
    }
    print!("{}", t.render());
    let json = format!(
        "{{\n  \"scheduler_ablation\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nper-discipline seek/queue statistics written to {json_path}"),
        Err(e) => eprintln!("warning: cannot write {json_path}: {e}"),
    }
}
