//! Reporting layer: phase attribution, request completion statistics, the
//! periodic sampler, the JSONL event log, and [`SimReport`] assembly.
//!
//! Everything here is observation. The sampler and event log never touch
//! timing, and the scheduler statistics are attached to the report only
//! for non-FCFS disciplines (or on explicit opt-in) so the default
//! report's serialized form — which the determinism suite hashes — is
//! unchanged by the dispatch seam.

use super::*;
use std::io::Write as _;

impl<'t> Simulator<'t> {
    /// Append one pre-formatted line to the JSONL event log, if enabled.
    pub(super) fn write_log(&mut self, line: &str) {
        if let Some(w) = self.event_log.as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Decompose a finished disk op into request phases. `done` is when the
    /// disk finished; `at` is when the request part completed (later than
    /// `done` only for the post-read channel transfer). The eight components
    /// telescope exactly: they sum to `at − arrive` in nanoseconds.
    pub(super) fn op_phase(&self, op: &DiskOp, done: SimTime, at: SimTime) -> PhaseSample {
        let r = self.reqs.get(op.req_id());
        let m = &op.marks;
        let media = m.seek_ns + m.latency_ns + op.transfer_ns;
        let service = done - m.start;
        let queue_raw = m.start - m.enqueue;
        // How much background (destage/spool) service overlapped this op's
        // queue wait; the rest of the wait was behind foreground work.
        let interference = (self.bg_busy_cum[op.gdisk as usize] - m.bg_snap).min(queue_raw);
        PhaseSample {
            admission_ns: r.admit - r.arrive,
            channel_ns: (r.stage_end - r.admit) + (at - done),
            disk_queue_ns: queue_raw - interference,
            destage_interference_ns: interference,
            seek_ns: m.seek_ns,
            rotation_ns: m.latency_ns,
            transfer_ns: op.transfer_ns,
            // Sync wait before the op could even enqueue, plus any extra
            // rotations the disk was held beyond the media time (RMW
            // turnaround, Section 3.3).
            parity_ns: (m.enqueue - r.stage_end) + (service - media),
        }
    }

    pub(super) fn request_part_done(&mut self, req: u32, at: SimTime, phase: PhaseSample) {
        let r = self.reqs.get_mut(req);
        // Keep the breakdown of the critical path: the part finishing last
        // carries the request's phase decomposition.
        if at >= r.finish {
            r.finish = at;
            r.phase = phase;
        }
        r.pending -= 1;
        if r.pending == 0 {
            self.finalize_request(req);
        }
    }

    pub(super) fn finalize_request(&mut self, req: u32) {
        let mut r = self.reqs.remove(req);
        if r.tail_channel_bytes > 0 {
            let tr = self.channels[r.array as usize].request(r.finish, r.tail_channel_bytes);
            r.phase.channel_ns += tr.end - r.finish;
            r.finish = tr.end;
        }
        let total_ns = r.finish - r.arrive;
        debug_assert_eq!(
            r.phase.sum_ns(),
            total_ns,
            "phase components must sum exactly to the response time"
        );
        let ms = simkit::time::ns_to_ms(total_ns);
        self.resp_all.push(ms);
        self.hist.record(ms);
        self.completed += 1;
        if let Some(cs) = self.classes.as_mut() {
            let c = &mut cs.reports[r.class as usize];
            c.completed += 1;
            c.response_ms.push(ms);
            c.histogram_ms.record(ms);
        }
        if let Some(f) = self.fault.as_mut() {
            match r.window {
                0 => f.resp_healthy.push(ms),
                1 => f.resp_degraded.push(ms),
                2 => f.resp_rebuilding.push(ms),
                _ => f.resp_dataloss.push(ms),
            }
        }
        if r.is_read {
            self.resp_reads.push(ms);
            self.completed_reads += 1;
            self.phase_reads.push(&r.phase);
        } else {
            self.resp_writes.push(ms);
            self.completed_writes += 1;
            self.phase_writes.push(&r.phase);
        }
        self.inflight -= 1;
        // Partition mode: journal the completion so the merge can replay
        // every statistics push in the merged (serial) event order — the
        // accumulators are order-sensitive, so this is what makes the
        // parallel report byte-identical.
        if let Some(p) = self.par.as_deref_mut() {
            p.note.inflight_delta -= 1;
            p.note.pushes.push(StatPush::Complete {
                ms,
                is_read: r.is_read,
                window: r.window,
                phase: r.phase,
            });
        }
        if self.event_log.is_some() {
            let p = &r.phase;
            let line = format!(
                "{{\"t\":{},\"ev\":\"req_done\",\"req\":{},\"read\":{},\"resp_ns\":{},\"admission_ns\":{},\"channel_ns\":{},\"disk_queue_ns\":{},\"destage_interference_ns\":{},\"seek_ns\":{},\"rotation_ns\":{},\"transfer_ns\":{},\"parity_ns\":{}}}",
                r.finish.as_ns(),
                r.serial,
                r.is_read,
                total_ns,
                p.admission_ns,
                p.channel_ns,
                p.disk_queue_ns,
                p.destage_interference_ns,
                p.seek_ns,
                p.rotation_ns,
                p.transfer_ns,
                p.parity_ns
            );
            self.write_log(&line);
        }

        if r.buffers_held > 0 {
            self.buffers[r.array as usize].release(r.buffers_held);
            self.admit_waiters(r.array);
        }
    }

    pub(super) fn report(&self) -> SimReport {
        let elapsed_ns = self.engine.now().as_ns();
        let cache = (!self.caches.is_empty()).then(|| {
            let mut total = *self.caches[0].stats();
            for c in &self.caches[1..] {
                let s = c.stats();
                total.read_hits += s.read_hits;
                total.read_misses += s.read_misses;
                total.write_hits += s.write_hits;
                total.write_misses += s.write_misses;
                total.dirty_evictions += s.dirty_evictions;
                total.overflow_events += s.overflow_events;
            }
            total
        });
        let faults = self.fault.as_ref().map(|f| {
            let end = self.engine.now();
            let battery_ns = f.battery_window_ns
                + if f.battery_out {
                    end - f.battery_fail_at
                } else {
                    0
                };
            // Sum degraded exposure and rebuild spans over arrays and
            // episodes; a window still open at the end of the run is
            // truncated there.
            let mut degraded_ns = 0u64;
            let mut rebuild_ns = 0u64;
            for af in &f.arr {
                degraded_ns += af.degraded_banked_ns + af.degraded_since.map_or(0, |t0| end - t0);
                if let Some(t0) = af.rebuild_started {
                    rebuild_ns += af.rebuild_done.unwrap_or(end) - t0;
                }
            }
            FaultReport {
                degraded_window_ms: simkit::time::ns_to_ms(degraded_ns),
                rebuild_ms: simkit::time::ns_to_ms(rebuild_ns),
                rebuild_blocks: f.rebuild_blocks,
                disk_failures: f.disk_failures,
                spares_used: f.spares_used,
                latent_errors: f.latent_errors,
                latent_repaired: f.latent_repaired,
                scrub_blocks: f.scrub_blocks,
                blocks_lost: f.blocks_lost,
                lost_reads: f.lost_reads,
                transient_errors: f.transient_errors,
                retries: f.retries,
                escalations: f.escalations,
                ops_aborted: f.ops_aborted,
                ops_replayed: f.ops_replayed,
                battery_window_ms: simkit::time::ns_to_ms(battery_ns),
                writes_written_through: f.writes_written_through,
                response_healthy_ms: f.resp_healthy,
                response_degraded_ms: f.resp_degraded,
                response_rebuilding_ms: f.resp_rebuilding,
                response_dataloss_ms: f.resp_dataloss,
            }
        });
        let reliability = self.fault.as_ref().map(|f| {
            let end = self.engine.now();
            let mut exposure_ns = 0u64;
            for af in &f.arr {
                exposure_ns += af.degraded_banked_ns + af.degraded_since.map_or(0, |t0| end - t0);
            }
            let rebuilding = (0..self.arrays as usize)
                .any(|a| self.failed_local[a].is_some() && f.arr[a].rebuild_active);
            let health = if self.dataloss.iter().any(|&d| d) {
                "data-loss"
            } else if rebuilding {
                "rebuilding"
            } else if self.failed_local.iter().any(Option::is_some) {
                "degraded"
            } else {
                "healthy"
            };
            let total_blocks = self.bpd * self.disks.len() as u64;
            ReliabilityReport {
                health: health.to_string(),
                disk_failures: f.disk_failures,
                spares_used: f.spares_used,
                spares_available: f.arr.iter().map(|a| a.spares_left as u64).sum(),
                latent_errors: f.latent_errors,
                latent_repaired: f.latent_repaired,
                scrub_blocks: f.scrub_blocks,
                scrub_coverage: if total_blocks > 0 {
                    f.scrub_blocks as f64 / total_blocks as f64
                } else {
                    0.0
                },
                blocks_lost: f.blocks_lost,
                lost_reads: f.lost_reads,
                exposure_ms: simkit::time::ns_to_ms(exposure_ns),
                data_loss_at_ms: f
                    .arr
                    .iter()
                    .filter_map(|a| a.data_loss_at)
                    .min()
                    .map(|t| t.as_ms_f64()),
            }
        });
        // Attached only off the FCFS default (or on explicit opt-in):
        // the default report must serialize byte-identically to the
        // pre-seam simulator.
        let scheduler = (self.cfg.scheduler != Discipline::Fcfs
            || self.cfg.observability.scheduler_stats)
            .then(|| SchedulerReport {
                discipline: self.cfg.scheduler.label().to_string(),
                seek_distance_cyl: self.sched_seek_cyl,
                queue_depth_priority: self.sched_qdepth[0],
                queue_depth_normal: self.sched_qdepth[1],
                queue_depth_background: self.sched_qdepth[2],
            });
        SimReport {
            organization: self.cfg.organization.label().to_string(),
            requests_completed: self.completed,
            reads_completed: self.completed_reads,
            writes_completed: self.completed_writes,
            response_all_ms: self.resp_all,
            response_reads_ms: self.resp_reads,
            response_writes_ms: self.resp_writes,
            histogram_ms: self.hist.clone(),
            phases_reads: self.phase_reads.clone(),
            phases_writes: self.phase_writes.clone(),
            per_disk_accesses: self.disk_counts.clone(),
            disk_utilization: self
                .disks
                .iter()
                .map(|d| d.utilization(elapsed_ns))
                .collect(),
            channel_utilization: self
                .channels
                .iter()
                .map(|c| c.utilization(elapsed_ns))
                .collect(),
            cache,
            spool_peak: self.spools.iter().map(|s| s.peak()).max().unwrap_or(0),
            spool_merges: self.spools.iter().map(|s| s.merges()).sum(),
            spool_stalls: self.spool_stalls,
            disk_ops: self.disk_ops,
            buffer_waits: self.buffer_waits,
            elapsed_secs: self.engine.now().as_secs_f64(),
            faults,
            reliability,
            timeseries: self.ts.clone(),
            scheduler,
        }
    }

    /// Record one time-series row (queue depths, utilizations, channel busy,
    /// cache occupancy) and reschedule while the simulation still has work.
    /// Purely observational: it reads state and never touches timing.
    pub(super) fn on_sample(&mut self) {
        let now = self.engine.now();
        let now_ns = now.as_ns();
        let dt = now_ns - self.last_sample_ns;
        let Some(ts) = self.ts.as_mut() else {
            return;
        };
        let mut row = Vec::with_capacity(ts.width());
        for (g, q) in self.queues.iter().enumerate() {
            let depth = q.len() + usize::from(self.in_service[g].is_some());
            row.push(depth as f64);
        }
        for (g, d) in self.disks.iter().enumerate() {
            let busy = d.busy_ns();
            // Windowed busy fraction; can exceed 1.0 because service time is
            // committed when an op starts, not accrued as it runs. Saturate:
            // spare promotion replaces the disk and zeroes its counter, so
            // the first window after a rebuild starts may see `busy` below
            // the previous snapshot.
            let frac = if dt > 0 {
                busy.saturating_sub(self.prev_disk_busy[g]) as f64 / dt as f64
            } else {
                0.0
            };
            self.prev_disk_busy[g] = busy;
            row.push(frac);
        }
        for (a, c) in self.channels.iter().enumerate() {
            let busy = c.busy_ns();
            let frac = if dt > 0 {
                (busy - self.prev_chan_busy[a]) as f64 / dt as f64
            } else {
                0.0
            };
            self.prev_chan_busy[a] = busy;
            row.push(frac);
        }
        for cache in &self.caches {
            row.push(cache.dirty_count() as f64);
            row.push((cache.len() - cache.dirty_count()) as f64);
        }
        ts.push(now_ns, row);
        self.last_sample_ns = now_ns;

        let work_left = self.arrivals_remaining()
            || self.inflight > 0
            || self.caches.iter().any(|c| c.dirty_count() > 0)
            || self.spools.iter().any(|s| !s.is_empty())
            || self.fault.as_ref().is_some_and(|f| {
                f.arr.iter().any(|a| a.rebuild_active)
                    || (f.fcfg.scrub_rate_mbps > 0 && f.scrub.iter().any(|s| !s.done))
            });
        if work_left {
            self.engine
                .schedule_at(now + self.sample_period_ns, Ev::Sample);
        }
    }
}
