//! Faults layer: failure injection, degraded operation, online rebuild,
//! and NVRAM battery failover.
//!
//! Owns the fault-injection runtime state ([`FaultState`]), the mid-run
//! disk-failure path (abort + degraded re-plan of everything queued at the
//! failed drive), the rate-throttled online rebuild onto a hot spare, and
//! the battery-failure write-through window.

use super::*;

/// An injected fault hitting the simulated hardware, resolved to engine
/// coordinates (global disk index).
#[derive(Clone, Copy, Debug)]
pub(super) enum FaultKind {
    DiskFail { gdisk: u32 },
    BatteryFail,
    BatteryRestore,
}

/// Number of spare blocks reconstructed per rebuild batch. One batch is one
/// background write to the spare fed by peer reads; small enough that
/// foreground traffic interleaves between batches, large enough that the
/// sweep is not all seeks.
const REBUILD_BATCH_BLOCKS: u64 = 64;

/// Runtime state of the fault-injection engine, present iff
/// [`SimConfig::fault`] is set. Owns the injected-event plan, the per-disk
/// transient-error streams, the failure/rebuild timeline, and every counter
/// reported in [`FaultReport`].
pub(super) struct FaultState {
    pub(super) fcfg: FaultConfig,
    pub(super) plan: FaultPlan,
    /// One independent error stream per physical disk, split off the fault
    /// seed, so one disk's draw sequence never depends on another's op
    /// count.
    pub(super) rngs: Vec<FaultRng>,
    // Disk-failure / rebuild timeline.
    pub(super) failed_at: Option<SimTime>,
    pub(super) healthy_at: Option<SimTime>,
    pub(super) rebuild_started: Option<SimTime>,
    pub(super) rebuild_done: Option<SimTime>,
    pub(super) rebuild_active: bool,
    /// Next spare block to reconstruct.
    pub(super) rebuild_cursor: u64,
    /// When the in-flight rebuild batch was dispatched (rate throttling).
    pub(super) step_started: SimTime,
    pub(super) rebuild_blocks: u64,
    // NVRAM battery.
    pub(super) battery_out: bool,
    pub(super) battery_fail_at: SimTime,
    pub(super) battery_window_ns: u64,
    pub(super) writes_written_through: u64,
    // Error/recovery counters.
    pub(super) transient_errors: u64,
    pub(super) retries: u64,
    pub(super) escalations: u64,
    pub(super) ops_aborted: u64,
    pub(super) ops_replayed: u64,
    // Response split by the array state the request arrived under.
    pub(super) resp_healthy: Welford,
    pub(super) resp_degraded: Welford,
    pub(super) resp_rebuilding: Welford,
}

impl FaultState {
    pub(super) fn new(fcfg: FaultConfig, plan: FaultPlan, rngs: Vec<FaultRng>) -> FaultState {
        FaultState {
            fcfg,
            plan,
            rngs,
            failed_at: None,
            healthy_at: None,
            rebuild_started: None,
            rebuild_done: None,
            rebuild_active: false,
            rebuild_cursor: 0,
            step_started: SimTime::ZERO,
            rebuild_blocks: 0,
            battery_out: false,
            battery_fail_at: SimTime::ZERO,
            battery_window_ns: 0,
            writes_written_through: 0,
            transient_errors: 0,
            retries: 0,
            escalations: 0,
            ops_aborted: 0,
            ops_replayed: 0,
            resp_healthy: Welford::new(),
            resp_degraded: Welford::new(),
            resp_rebuilding: Welford::new(),
        }
    }
}

impl<'t> Simulator<'t> {
    /// A disk permanently fails (injected or escalated from exhausted
    /// retries): every op queued on or in service at it is aborted and
    /// re-planned through the degraded machinery; the array switches to
    /// degraded planning; with a hot spare configured, the online rebuild
    /// starts immediately.
    pub(super) fn on_disk_fail(&mut self, gdisk: u32) {
        if self.failed_gdisk.is_some() {
            return; // already degraded; config validation forbids a second
        }
        let now = self.engine.now();
        self.failed_gdisk = Some(gdisk);
        if let Some(f) = self.fault.as_mut() {
            f.failed_at = Some(now);
        }
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"disk_fail\",\"disk\":{}}}",
                now.as_ns(),
                gdisk
            );
            self.write_log(&line);
        }
        let g = gdisk as usize;
        if let Some(ev) = self.service_ev[g].take() {
            self.engine.cancel(ev);
        }
        let mut lost: Vec<(u32, bool)> = Vec::new();
        if let Some(t) = self.in_service[g].take() {
            lost.push((t, true));
        }
        // Abort via `drain`, not repeated `pop`s: popping would drive the
        // discipline's position machinery (SCAN cursor and sweep direction)
        // through ops that are never serviced, and the hot spare would
        // inherit that phantom sweep state (scheduler contract clause 4).
        for (_, t) in self.queues[g].drain() {
            lost.push((t, false));
        }
        for (t, started) in lost {
            self.abort_op(t, started);
        }
        // A failed RAID4 parity disk orphans the spool: nothing can drain
        // it anymore, so give the reserved cache slots back.
        if self.parity_cached && gdisk % self.dpa == self.n {
            let a = (gdisk / self.dpa) as usize;
            while let Some(run) = self.spools[a].pop_run(u32::MAX) {
                self.caches[a].release_slots(run.nblocks as usize);
            }
        }
        if self.fault.as_ref().is_some_and(|f| f.fcfg.spare) {
            // The hot spare takes the failed slot with a fresh spindle.
            let phase = spindle_phase(self.cfg.seed, (self.disks.len() + g) as u64, self.rot_ns);
            self.disks[g] = Disk::new(self.cfg.geometry.clone(), self.cfg.seek, phase);
            if let Some(f) = self.fault.as_mut() {
                f.rebuild_started = Some(now);
                f.rebuild_active = true;
                f.rebuild_cursor = 0;
            }
            self.engine.schedule_now(Ev::RebuildStep);
        }
    }

    /// Remove an op addressed to a failed disk, settle its bookkeeping, and
    /// re-plan host-facing reads of lost data through the degraded path.
    /// `started` marks an op that was in service: its feeder contribution,
    /// if any, already happened at dispatch.
    pub(super) fn abort_op(&mut self, token: u32, started: bool) {
        let now = self.engine.now();
        let op = self.ops.remove(token);
        if let Some(f) = self.fault.as_mut() {
            f.ops_aborted += 1;
        }
        // A queued feeder never started: its parity job must not wait for a
        // read that will never happen.
        if op.feeds && !started {
            if let Some(j) = op.job {
                self.feed_job(j, now);
            }
        }
        match op.role {
            OpRole::HostRead | OpRole::CacheFetch | OpRole::ReconstructRead => {
                self.replan_lost_read(&op, now);
            }
            OpRole::HostWrite | OpRole::RmwData => {
                let phase = self.abort_phase(&op, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::ParityRmw | OpRole::ParityWrite => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::ExtraRead | OpRole::Writeback => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
            }
            OpRole::DestageData => {
                // simlint::allow(panic-policy): same invariant as completion — a destage op always carries its group
                let dg = op.dgroup.expect("destage op lost its group");
                self.dgroups.get_mut(dg).remaining -= 1;
                if self.dgroups.get(dg).remaining == 0 {
                    let dj = self.dgroups.remove(dg);
                    let array = (op.gdisk / self.dpa) as usize;
                    self.caches[array].destage_complete(&dj.group);
                }
            }
            OpRole::DestageParity | OpRole::RebuildWrite => {
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::SpoolDrain => {
                let array = (op.gdisk / self.dpa) as usize;
                self.caches[array].release_slots(op.nblocks as usize);
            }
            OpRole::RebuildRead => {}
        }
    }

    /// A host-facing read lost its target disk mid-flight. Mirror reads
    /// redirect to the surviving copy; parity organizations read every
    /// surviving peer of each lost block and XOR-reconstruct, routing the
    /// rebuilt data through the request's tail channel transfer. With no
    /// redundancy the part completes degenerately (there is nothing left to
    /// read).
    fn replan_lost_read(&mut self, op: &DiskOp, now: SimTime) {
        let req = op.req_id();
        let array = op.gdisk / self.dpa;
        let local = op.gdisk % self.dpa;
        let lost = Run {
            disk: local,
            block: op.block,
            nblocks: op.nblocks,
        };
        let mut runs: Vec<Run> = Vec::new();
        let mut reconstructed = false;
        if let Some(alt) = self.planner.mirror_of(lost) {
            runs.push(alt);
        } else {
            for b in 0..op.nblocks as u64 {
                for (disk, block) in self.planner.peers_of(local, op.block + b) {
                    crate::mapping::push_merged(&mut runs, disk, block);
                }
            }
            reconstructed = !runs.is_empty();
        }
        if runs.is_empty() {
            let phase = self.abort_phase(op, now);
            self.request_part_done(req, now, phase);
            return;
        }
        if reconstructed && op.role == OpRole::HostRead {
            // Reconstructed data reaches the host via the tail transfer
            // (cache fetches already route the whole reply through it).
            self.reqs.get_mut(req).tail_channel_bytes += op.nblocks as u64 * self.block_bytes;
        }
        let role = match op.role {
            OpRole::CacheFetch => OpRole::CacheFetch,
            OpRole::HostRead if !reconstructed => OpRole::HostRead,
            _ => OpRole::ReconstructRead,
        };
        if let Some(f) = self.fault.as_mut() {
            f.ops_replayed += runs.len() as u64;
        }
        for run in runs {
            let t = self.new_op(DiskOp {
                role,
                req: Some(req),
                job: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: op.band,
                feeds: false,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.reqs.get_mut(req).pending += 1;
            self.enqueue_op(t);
        }
        // The aborted op's own share is replaced, not completed; pending
        // stays positive because the replacements were counted first.
        self.reqs.get_mut(req).pending -= 1;
    }

    /// Phase decomposition of an aborted part at abort time `now`: time
    /// since enqueue is attributed to the disk queue (the op never reached
    /// the media). Telescopes exactly to `now − arrive`.
    fn abort_phase(&self, op: &DiskOp, now: SimTime) -> PhaseSample {
        let r = self.reqs.get(op.req_id());
        let m = &op.marks;
        PhaseSample {
            admission_ns: r.admit - r.arrive,
            channel_ns: r.stage_end - r.admit,
            parity_ns: m.enqueue - r.stage_end,
            disk_queue_ns: now - m.enqueue,
            ..PhaseSample::default()
        }
    }

    /// Reconstruct the next batch of the failed disk's blocks: read every
    /// surviving peer (background band), XOR, and write the result to the
    /// spare. Batches self-perpetuate until the cursor covers the disk,
    /// throttled to the configured rebuild rate so foreground traffic keeps
    /// priority — the same interference channel as destaging.
    pub(super) fn on_rebuild_step(&mut self) {
        let Some(gdisk) = self.failed_gdisk else {
            return;
        };
        let now = self.engine.now();
        let cursor = self.fault.as_ref().map_or(0, |f| f.rebuild_cursor);
        if cursor >= self.bpd {
            // Every block is rebuilt: the spare is a full member and the
            // array returns to healthy-mode planning.
            self.failed_gdisk = None;
            if let Some(f) = self.fault.as_mut() {
                f.rebuild_active = false;
                f.rebuild_done = Some(now);
                f.healthy_at = Some(now);
            }
            if self.event_log.is_some() {
                let line = format!(
                    "{{\"t\":{},\"ev\":\"rebuild_done\",\"disk\":{}}}",
                    now.as_ns(),
                    gdisk
                );
                self.write_log(&line);
            }
            return;
        }
        let batch = REBUILD_BATCH_BLOCKS.min(self.bpd - cursor) as u32;
        if let Some(f) = self.fault.as_mut() {
            f.rebuild_cursor += batch as u64;
            f.step_started = now;
        }
        let array = gdisk / self.dpa;
        let local = gdisk % self.dpa;
        // Collect the peer blocks disk-major so `push_merged` coalesces
        // each peer's contribution into one contiguous run per disk (it
        // only merges against the last run pushed).
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for b in cursor..cursor + batch as u64 {
            pairs.extend(self.planner.peers_of(local, b));
        }
        pairs.sort_unstable();
        let mut runs: Vec<Run> = Vec::new();
        for (disk, block) in pairs {
            crate::mapping::push_merged(&mut runs, disk, block);
        }
        let wt = self.new_op(DiskOp {
            role: OpRole::RebuildWrite,
            req: None,
            job: None,
            dgroup: None,
            gdisk,
            block: cursor,
            nblocks: batch,
            kind: AccessKind::Write,
            band: Band::Background,
            feeds: false,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        });
        if runs.is_empty() {
            // Unprotected blocks (e.g. the Parity Striping tail sliver):
            // the spare is simply formatted through them.
            self.enqueue_op(wt);
            return;
        }
        let job = self.jobs.insert(ParityJob {
            data_not_started: runs.len() as u32,
            ready: SimTime::ZERO,
            pending_parity: vec![wt],
            rule: EnqueueRule::AtReady,
            refs: runs.len() as u32 + 1,
        });
        self.ops.job[wt as usize] = Some(job);
        for run in runs {
            let t = self.new_op(DiskOp {
                role: OpRole::RebuildRead,
                req: None,
                job: Some(job),
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: Band::Background,
                feeds: true,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.enqueue_op(t);
        }
    }

    /// A rebuild batch's spare write finished: count it and schedule the
    /// next batch, no earlier than the rate throttle allows.
    pub(super) fn on_rebuild_batch_done(&mut self, op: &DiskOp) {
        let now = self.engine.now();
        let (rate, step_started) = match self.fault.as_mut() {
            Some(f) => {
                f.rebuild_blocks += op.nblocks as u64;
                (f.fcfg.rebuild_rate_mbps, f.step_started)
            }
            None => return,
        };
        let batch_bytes = op.nblocks as u64 * self.block_bytes;
        // rate MB/s ⇒ the batch may not complete faster than
        // bytes·1000/rate nanoseconds after its dispatch.
        // rate == 0 means unthrottled: the next batch may start now.
        let next_at = match (batch_bytes * 1_000).checked_div(rate) {
            None => now,
            Some(d) => (step_started + d).max(now),
        };
        self.engine.schedule_at(next_at, Ev::RebuildStep);
    }

    /// NVRAM battery failure: cached contents are no longer safe across a
    /// power loss, so the controller flushes everything dirty and serves
    /// writes in write-through mode until the battery is restored.
    pub(super) fn on_battery_fail(&mut self) {
        let now = self.engine.now();
        match self.fault.as_mut() {
            Some(f) if !f.battery_out => {
                f.battery_out = true;
                f.battery_fail_at = now;
            }
            _ => return,
        }
        for a in 0..self.arrays {
            if self.caches.is_empty() {
                break;
            }
            let groups = self.caches[a as usize].collect_destage();
            for group in groups {
                self.issue_destage_group(a, group);
            }
            if self.parity_cached {
                self.try_drain_spool(a);
            }
        }
    }

    pub(super) fn on_battery_restore(&mut self) {
        let now = self.engine.now();
        if let Some(f) = self.fault.as_mut() {
            if f.battery_out {
                f.battery_out = false;
                f.battery_window_ns += now - f.battery_fail_at;
            }
        }
    }

    /// Whether the NVRAM battery is currently failed (write-through mode).
    pub(super) fn battery_out(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.battery_out)
    }

    pub(super) fn note_write_through(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.writes_written_through += 1;
        }
    }
}
