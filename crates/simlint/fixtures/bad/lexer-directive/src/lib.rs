pub fn spoof(deadline_ms: u64, blocks: u64) -> u64 {
    let _note = "simlint::allow(unit-safety): a string is not a directive";
    deadline_ms + blocks
}

pub fn lazy(deadline_ms: u64, blocks: u64) -> u64 {
    // simlint::allow(unit-safety)
    deadline_ms + blocks
}
