//! # nvcache — the non-volatile controller cache (Section 3.4)
//!
//! One cache per array. The model implements everything the paper's cached
//! controllers do:
//!
//! * **LRU replacement** with read/write hit accounting ([`NvCache`]).
//! * **Old-data retention**: in parity organizations a modified block's
//!   previous contents stay in the cache (one extra slot) "to save the extra
//!   rotation needed to read the old data when writing the block back to
//!   disk". Old copies participate in LRU and may be evicted early.
//! * **Synchronous writeback on dirty eviction**: a miss that replaces a
//!   dirty block must wait for that block to reach the disk.
//! * **Periodic destage** ([`NvCache::collect_destage`]): a background
//!   process initiated every destage period that groups consecutive dirty
//!   blocks into multiblock writes, issued at background priority so they
//!   interfere minimally with reads. Blocks being destaged are pinned;
//!   writes landing on them re-dirty the block.
//! * **RAID4 parity caching** ([`ParitySpool`]): parity updates are buffered
//!   in the same cache (charging its capacity), sorted by target location
//!   and spooled to the dedicated parity disk with a SCAN sweep. Entries
//!   carry whether they hold *full* parity (full-stripe write — written
//!   without reading old parity) or an XOR *delta* (old parity must still
//!   be read, Section 3.4).
//!
//! Determinism: block lookups go through a flat open-addressing table with
//! a fixed hash function (never iterated), while everything order-sensitive
//! — destage grouping, eviction — walks either the intrusive LRU list or an
//! ordered set of dirty blocks, so results are reproducible run-to-run.

pub mod lru;
pub mod spool;
mod table;

pub use lru::{BlockKey, CacheStats, DestageGroup, DirtyEviction, NvCache};
pub use spool::{ParitySpool, SpoolEntry};

/// Blocks that fit in a cache of `mb` megabytes with `block_bytes` blocks.
pub fn blocks_for_mb(mb: u64, block_bytes: u64) -> u64 {
    mb * 1024 * 1024 / block_bytes
}

#[cfg(test)]
mod tests {
    #[test]
    fn capacity_of_default_cache() {
        // 16 MB of 4 KB blocks = 4096 slots (Table 4 default).
        assert_eq!(super::blocks_for_mb(16, 4096), 4096);
    }
}
