//! Failure-lifecycle scenarios past the first clean failure-and-rebuild:
//! a second failure hitting the rebuilding spare (restart onto the next
//! one), hitting it with the pool exhausted (the array stays degraded),
//! hitting a second *data* disk (the `DataLoss` transition — accounted,
//! not a panic), and latent sector errors discovered by the background
//! scrub or surfacing mid-rebuild.
//!
//! Every scenario is additionally pinned serial-vs-`run_par` at 1, 4, and
//! 8 threads: the lifecycle machinery is partition-local state, and the
//! merge layer must reproduce the serial bytes exactly (threads = 1 is the
//! documented fallback and must equal serial trivially).

use diskmodel::DiskGeometry;
use raidsim::{DiskFailure, FaultConfig, Organization, SimConfig, Simulator, SparingMode};
use tracegen::{SynthSpec, Trace};

/// Tiny disks (2 cylinders → 360 blocks) so whole-disk rebuilds complete
/// inside a few simulated seconds.
fn small_geometry() -> DiskGeometry {
    DiskGeometry {
        cylinders: 2,
        ..DiskGeometry::default()
    }
}

/// Three arrays of four data disks: enough to partition at 4 and 8
/// threads (clamped to one array per partition) while the faulted array
/// stays wholly owned by one partition.
fn lifecycle_trace() -> Trace {
    SynthSpec {
        name: "lifecycle".into(),
        seed: 0x11FE,
        n_disks: 12,
        blocks_per_disk: small_geometry().blocks_per_disk(),
        n_requests: 900,
        duration_secs: 10.0,
        busy_speedup: 1.0,
        ..SynthSpec::trace2()
    }
    .generate()
}

fn cfg_with(fault: FaultConfig) -> SimConfig {
    let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
    cfg.geometry = small_geometry();
    cfg.data_disks_per_array = 4;
    cfg.fault = Some(fault);
    cfg
}

/// First failure at 1 s; throttled so the ~1.4 MB rebuild spans ≈1.4 s and
/// the second event at 1.5 s lands mid-rebuild.
fn two_failures(second_disk: u32, spare_count: u32) -> FaultConfig {
    FaultConfig {
        disk_failure: Some(DiskFailure {
            array: 1,
            disk: 1,
            at_ms: 1_000,
        }),
        second_failure: Some(DiskFailure {
            array: 1,
            disk: second_disk,
            at_ms: 1_500,
        }),
        spare: true,
        spare_count,
        rebuild_rate_mbps: 1,
        ..FaultConfig::default()
    }
}

/// Serial report and the `run_par` reports at 1/4/8 threads must be one
/// byte sequence; 4 and 8 threads must actually partition the 3 arrays.
fn assert_parallel_identical(cfg: &SimConfig, trace: &Trace) -> String {
    let serial = format!("{:#?}", Simulator::new(cfg.clone(), trace).run());
    for threads in [1usize, 4, 8] {
        let (report, _, partitioned) =
            Simulator::new(cfg.clone(), trace).run_par_instrumented(threads);
        assert_eq!(
            partitioned,
            threads > 1,
            "threads={threads}: unexpected partitioning decision"
        );
        assert_eq!(
            format!("{report:#?}"),
            serial,
            "threads={threads}: parallel lifecycle run diverged from serial"
        );
    }
    serial
}

#[test]
fn spare_death_mid_rebuild_restarts_onto_next_spare() {
    let trace = lifecycle_trace();
    // Second failure hits the slot under rebuild = the spare dies.
    let cfg = cfg_with(two_failures(1, 2));
    let report = Simulator::new(cfg.clone(), &trace).run();
    assert_eq!(report.requests_completed, trace.len() as u64);

    let rel = report
        .reliability
        .as_ref()
        .expect("fault engine configured");
    assert_eq!(rel.health, "healthy", "restart onto spare #2 must finish");
    assert_eq!(rel.disk_failures, 2);
    assert_eq!(rel.spares_used, 2, "both pool spares consumed");
    // Pools are per-array: the faulted array is empty, the two idle
    // arrays keep their two spares each.
    assert_eq!(rel.spares_available, 4);
    assert!(rel.survived());
    assert_eq!(rel.blocks_lost, 0);

    let f = report.faults.as_ref().unwrap();
    // The restarted sweep begins at block 0: total reconstructed blocks
    // exceed one disk's worth by the progress the dead spare had made.
    assert!(
        f.rebuild_blocks > small_geometry().blocks_per_disk(),
        "rebuild_blocks {} should include the aborted first attempt",
        f.rebuild_blocks
    );
    assert_parallel_identical(&cfg, &trace);
}

#[test]
fn spare_exhaustion_leaves_array_degraded() {
    let trace = lifecycle_trace();
    // Same spare death, but the pool held only one spare.
    let cfg = cfg_with(two_failures(1, 1));
    let report = Simulator::new(cfg.clone(), &trace).run();
    assert_eq!(report.requests_completed, trace.len() as u64);

    let rel = report.reliability.as_ref().unwrap();
    assert_eq!(rel.health, "degraded", "no spare left: stays degraded");
    assert_eq!(rel.disk_failures, 2);
    assert_eq!(rel.spares_used, 1);
    assert_eq!(
        rel.spares_available, 2,
        "only the idle arrays' pools remain"
    );
    assert!(rel.survived(), "one data disk lost is still recoverable");
    assert_eq!(rel.blocks_lost, 0);
    // The exposure window stays open to the end of the run.
    let f = report.faults.as_ref().unwrap();
    assert!(
        rel.exposure_ms > f.rebuild_ms,
        "exposure {} ms must outlast the aborted rebuild {} ms",
        rel.exposure_ms,
        f.rebuild_ms
    );
    assert_parallel_identical(&cfg, &trace);
}

#[test]
fn second_data_disk_failure_is_accounted_data_loss_not_a_panic() {
    let trace = lifecycle_trace();
    // Second failure hits a *different* data disk of the same array.
    let cfg = cfg_with(two_failures(3, 2));
    let report = Simulator::new(cfg.clone(), &trace).run();
    // Every request still completes: reads of lost data finish
    // degenerately and are counted, they do not wedge the run.
    assert_eq!(report.requests_completed, trace.len() as u64);

    let rel = report.reliability.as_ref().unwrap();
    assert_eq!(rel.health, "data-loss");
    assert!(!rel.survived());
    assert_eq!(rel.disk_failures, 2);
    assert_eq!(
        rel.blocks_lost,
        small_geometry().blocks_per_disk(),
        "a whole disk's blocks are beyond redundancy"
    );
    assert!(
        rel.lost_reads > 0,
        "ongoing traffic must observe (and count) degenerate reads"
    );
    let at = rel.data_loss_at_ms.expect("transition time recorded");
    assert!(
        (at - 1_500.0).abs() < 1e-6,
        "data loss at {at} ms, expected the second failure's 1500 ms"
    );
    assert_parallel_identical(&cfg, &trace);
}

#[test]
fn scrub_repairs_latent_errors_and_sweeps_every_block() {
    let trace = lifecycle_trace();
    let mk = |scrub_rate_mbps: u64| {
        cfg_with(FaultConfig {
            latent_rate_per_hour: 5_000.0, // ≈14 marred blocks per disk in 10 s
            scrub_rate_mbps,
            ..FaultConfig::default()
        })
    };

    // Without a scrub the marred blocks accumulate silently.
    let idle = Simulator::new(mk(0), &trace).run();
    let idle_rel = idle.reliability.as_ref().unwrap();
    assert!(idle_rel.latent_errors > 0, "latent substream never fired");
    assert_eq!(idle_rel.latent_repaired, 0);
    assert_eq!(idle_rel.scrub_blocks, 0);

    // With a scrub the sweep completes (the run drains until it does) and
    // repairs every error marred behind the moving cursor.
    let cfg = mk(4);
    let scrubbed = Simulator::new(cfg.clone(), &trace).run();
    let rel = scrubbed.reliability.as_ref().unwrap();
    assert_eq!(rel.health, "healthy");
    assert!(
        (rel.scrub_coverage - 1.0).abs() < 1e-9,
        "single full sweep covers all blocks, got {}",
        rel.scrub_coverage
    );
    assert!(rel.latent_repaired > 0, "scrub repaired nothing");
    assert!(rel.latent_repaired <= rel.latent_errors);
    assert_eq!(rel.blocks_lost, 0, "healthy redundancy repairs, not loses");
    assert_parallel_identical(&cfg, &trace);
}

#[test]
fn rebuild_surfaces_latent_errors_on_surviving_peers() {
    let trace = lifecycle_trace();
    // Heavy latent marring plus a failure: reconstruction needs every
    // surviving peer, so marred peer blocks become unrecoverable losses.
    let cfg = cfg_with(FaultConfig {
        disk_failure: Some(DiskFailure {
            array: 1,
            disk: 1,
            at_ms: 4_000,
        }),
        spare: true,
        rebuild_rate_mbps: 0,
        latent_rate_per_hour: 5_000.0,
        ..FaultConfig::default()
    });
    let report = Simulator::new(cfg.clone(), &trace).run();
    assert_eq!(report.requests_completed, trace.len() as u64);
    let rel = report.reliability.as_ref().unwrap();
    assert!(rel.latent_errors > 0);
    assert!(
        rel.blocks_lost > 0,
        "marred peer blocks must surface as losses during the rebuild"
    );
    assert!(
        rel.blocks_lost < small_geometry().blocks_per_disk(),
        "only the marred blocks are lost, not the whole disk"
    );
    assert_eq!(rel.health, "data-loss");
    assert_parallel_identical(&cfg, &trace);
}

#[test]
fn distributed_sparing_rebuilds_without_consuming_spares() {
    let trace = lifecycle_trace();
    let mk = |sparing: SparingMode| {
        cfg_with(FaultConfig {
            disk_failure: Some(DiskFailure {
                array: 1,
                disk: 1,
                at_ms: 1_000,
            }),
            spare: true,
            spare_count: 1,
            sparing,
            rebuild_rate_mbps: 0,
            ..FaultConfig::default()
        })
    };
    let hot = Simulator::new(mk(SparingMode::Hot), &trace).run();
    let cfg = mk(SparingMode::Distributed);
    let dist = Simulator::new(cfg.clone(), &trace).run();

    let (hr, dr) = (
        hot.reliability.as_ref().unwrap(),
        dist.reliability.as_ref().unwrap(),
    );
    assert_eq!(hr.health, "healthy");
    assert_eq!(dr.health, "healthy");
    assert_eq!(hr.spares_used, 1);
    assert_eq!(dr.spares_used, 0, "distributed sparing consumes no spare");
    assert_eq!(
        dr.spares_available, 3,
        "every array's one-spare pool intact"
    );

    // Same blocks re-protected either way.
    let (hf, df) = (hot.faults.as_ref().unwrap(), dist.faults.as_ref().unwrap());
    assert_eq!(hf.rebuild_blocks, df.rebuild_blocks);
    assert_parallel_identical(&cfg, &trace);
}

/// The sparing-policy performance claim: distributed sparing spreads the
/// rebuild writes over the survivors instead of funneling them into one
/// replacement spindle, so on a wide array the unthrottled rebuild is
/// measurably shorter. (Tiny 4-disk arrays don't show it — the write leg
/// is not the bottleneck there — hence the wider geometry here.)
#[test]
fn distributed_sparing_shortens_the_rebuild_on_a_wide_array() {
    let geometry = DiskGeometry {
        cylinders: 20,
        ..DiskGeometry::default()
    };
    let trace = SynthSpec {
        name: "wide".into(),
        seed: 0x51DE,
        n_disks: 10,
        blocks_per_disk: geometry.blocks_per_disk(),
        n_requests: 300,
        duration_secs: 30.0,
        busy_speedup: 1.0,
        ..SynthSpec::trace2()
    }
    .generate();
    let mut rebuild_ms = Vec::new();
    for sparing in [SparingMode::Hot, SparingMode::Distributed] {
        let mut cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
        cfg.geometry = geometry.clone();
        cfg.data_disks_per_array = 10;
        cfg.fault = Some(FaultConfig {
            disk_failure: Some(DiskFailure {
                array: 0,
                disk: 2,
                at_ms: 1_000,
            }),
            spare: true,
            sparing,
            rebuild_rate_mbps: 0,
            ..FaultConfig::default()
        });
        let report = Simulator::new(cfg, &trace).run();
        let f = report.faults.expect("fault engine configured");
        assert_eq!(f.rebuild_blocks, geometry.blocks_per_disk());
        rebuild_ms.push(f.rebuild_ms);
    }
    assert!(
        rebuild_ms[1] < rebuild_ms[0],
        "distributed rebuild {:.1} ms not shorter than hot-spare {:.1} ms",
        rebuild_ms[1],
        rebuild_ms[0]
    );
}
