//! Fleet-level reporting: per-VA reports, per-tenant statistics, rebuild
//! blast radius, and the merged run-stats ledger.
//!
//! Nothing here touches wall-clock time: throughput is events per
//! **simulated** second, so the report — like [`crate::SimReport`] — is a
//! pure function of (spec, seed) and can be hashed for determinism checks.

use super::alloc::FleetPlan;
use super::config::FleetConfig;
use crate::report::{ClassReport, SimReport};
use crate::sim::{PartStats, RunStats};
use raidtp_stats::Welford;
use serde::Serialize;

/// One virtual array's outcome as produced by the runner.
pub(super) struct VaOutcome {
    pub report: SimReport,
    pub stats: RunStats,
    pub classes: Vec<ClassReport>,
    pub arrivals: u64,
}

/// One virtual array's slice of the fleet report.
#[derive(Clone, Debug, Serialize)]
pub struct VaReport {
    pub name: String,
    pub organization: String,
    pub disk_class: String,
    /// Tenant ids placed on this VA, in placement order.
    pub tenants: Vec<String>,
    /// Whether the VA lost a disk during the run (statically failed, or a
    /// mid-run failure fired) — the blast-radius predicate.
    pub degraded: bool,
    pub report: SimReport,
}

/// One tenant's cross-VA view: response statistics from its request class,
/// merged exactly (Welford + histogram bucket addition).
#[derive(Clone, Debug, Serialize)]
pub struct TenantReport {
    pub id: String,
    /// Name of the virtual array hosting this tenant.
    pub va: String,
    pub completed: u64,
    pub response_ms: Welford,
    pub p99_ms: f64,
    /// The tenant sits inside some VA's failure blast radius.
    pub degraded: bool,
}

/// The whole fleet's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct FleetReport {
    pub vas: Vec<VaReport>,
    pub tenants: Vec<TenantReport>,
    pub requests_completed: u64,
    /// Longest simulated span across the VAs, seconds.
    pub elapsed_secs: f64,
    /// Engine events per simulated second, fleet-wide (never wall-clock:
    /// that would make the report nondeterministic).
    pub events_per_sim_sec: f64,
    /// Tenant ids degraded by a disk failure, in tenant declaration order —
    /// the rebuild blast radius.
    pub blast_radius: Vec<String>,
}

impl FleetReport {
    /// Merge per-VA outcomes (in VA index order) into the fleet report and
    /// the aggregate run-stats ledger.
    pub(super) fn assemble(
        fleet: &FleetConfig,
        plan: &FleetPlan,
        outcomes: Vec<VaOutcome>,
    ) -> (FleetReport, RunStats) {
        let va_degraded: Vec<bool> = plan
            .vas
            .iter()
            .zip(&outcomes)
            .map(|(va, o)| {
                va.config.failed_disk.is_some()
                    || o.report
                        .faults
                        .as_ref()
                        .is_some_and(|f| f.disk_failures > 0 || f.degraded_window_ms > 0.0)
            })
            .collect();

        // Per-tenant class reports, merged across VAs in VA index order
        // (exact merges, so the fold order only matters for determinism —
        // and VA index order is fixed).
        let mut merged: Vec<ClassReport> = (0..fleet.tenants.len())
            .map(|_| ClassReport::new())
            .collect();
        for o in &outcomes {
            for (t, c) in o.classes.iter().enumerate() {
                merged[t].merge(c);
            }
        }
        let tenants: Vec<TenantReport> = fleet
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let v = plan.placement[t];
                TenantReport {
                    id: spec.id.clone(),
                    va: plan.vas[v].name.clone(),
                    completed: merged[t].completed,
                    response_ms: merged[t].response_ms,
                    p99_ms: merged[t].p99_ms(),
                    degraded: va_degraded[v],
                }
            })
            .collect();
        let blast_radius = tenants
            .iter()
            .filter(|t| t.degraded)
            .map(|t| t.id.clone())
            .collect();

        let requests_completed = outcomes.iter().map(|o| o.report.requests_completed).sum();
        let elapsed_secs = outcomes
            .iter()
            .map(|o| o.report.elapsed_secs)
            .fold(0.0, f64::max);
        let events_processed: u64 = outcomes.iter().map(|o| o.stats.events_processed).sum();
        let events_per_sim_sec = if elapsed_secs > 0.0 {
            events_processed as f64 / elapsed_secs
        } else {
            0.0
        };

        let partitions: Vec<PartStats> = outcomes
            .iter()
            .enumerate()
            .map(|(v, o)| PartStats {
                // The fleet's partition unit is the VA: span [v, v+1).
                arrays: (v as u32, v as u32 + 1),
                arrivals_owned: o.arrivals,
                events_processed: o.stats.events_processed,
                journal_frames: 0,
                journal_bytes: 0,
            })
            .collect();
        let stats = RunStats {
            events_processed,
            peak_pending: outcomes
                .iter()
                .map(|o| o.stats.peak_pending)
                .max()
                .unwrap_or(0),
            partitions,
            journal_bytes: 0,
            // Every routed arrival is owned by exactly one VA feed (the
            // pre-split is disjoint and exhaustive), so the fleet executes
            // precisely the serial event count: amplification 1 by
            // construction. The perf harness gates this at ≤ 1.1.
            replay_amplification: 1.0,
        };

        let vas = plan
            .vas
            .iter()
            .zip(outcomes)
            .zip(va_degraded)
            .map(|((va, o), degraded)| VaReport {
                name: va.name.clone(),
                organization: va.organization.label().to_string(),
                disk_class: va.disk_class.clone(),
                tenants: va
                    .tenants
                    .iter()
                    .map(|&t| fleet.tenants[t].id.clone())
                    .collect(),
                degraded,
                report: o.report,
            })
            .collect();

        (
            FleetReport {
                vas,
                tenants,
                requests_completed,
                elapsed_secs,
                events_per_sim_sec,
                blast_radius,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::run::run_fleet;
    use super::*;

    #[test]
    fn blast_radius_names_exactly_the_tenants_on_failed_vas() {
        let fleet = FleetConfig::demo();
        let (report, _) = run_fleet(&fleet, 2).unwrap();
        // va00 carries the demo's mid-run failure.
        let failed: Vec<&VaReport> = report.vas.iter().filter(|v| v.degraded).collect();
        assert!(!failed.is_empty(), "demo fleet must degrade va00");
        assert!(failed.iter().any(|v| v.name == "va00"));
        let expected: Vec<String> = report
            .tenants
            .iter()
            .filter(|t| report.vas.iter().any(|v| v.degraded && v.name == t.va))
            .map(|t| t.id.clone())
            .collect();
        assert_eq!(report.blast_radius, expected);
        for t in &report.tenants {
            assert_eq!(
                t.degraded,
                report.blast_radius.contains(&t.id),
                "tenant {} blast flag inconsistent",
                t.id
            );
        }
    }

    #[test]
    fn fleet_totals_are_the_sum_of_va_reports() {
        let fleet = FleetConfig::small();
        let (report, stats) = run_fleet(&fleet, 1).unwrap();
        let va_sum: u64 = report.vas.iter().map(|v| v.report.requests_completed).sum();
        assert_eq!(report.requests_completed, va_sum);
        let tenant_sum: u64 = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(
            tenant_sum, va_sum,
            "every completion belongs to exactly one tenant"
        );
        assert_eq!(stats.partitions.len(), report.vas.len());
        assert!(report.events_per_sim_sec > 0.0);
    }
}
