//! Clock + future-event-list harness.

use crate::queue::{EventId, EventQueue};
use crate::time::SimTime;

/// A simulation engine: a monotonically advancing clock bound to an event
/// queue.
///
/// The owning simulator drives the loop itself:
///
/// ```
/// use simkit::{Engine, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut eng = Engine::new();
/// eng.schedule_after(1_000, Ev::Tick(1));
/// eng.schedule_after(2_000, Ev::Tick(2));
/// let mut fired = Vec::new();
/// while let Some(ev) = eng.next_event() {
///     fired.push(ev);
/// }
/// assert_eq!(fired, vec![Ev::Tick(1), Ev::Tick(2)]);
/// assert_eq!(eng.now(), SimTime::from_ns(2_000));
/// ```
///
/// `next_event` advances the clock to the event's timestamp before returning
/// it, so handlers always observe `now()` equal to their own fire time.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the event queue for `cap` simultaneously pending events
    /// (e.g. from the driving trace's length), avoiding heap regrowth in
    /// the middle of a run.
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(cap),
            processed: 0,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Live events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Most events simultaneously pending so far (future-event-list
    /// high-water mark; reported by the perf harness as queue depth).
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// Schedule an event at an absolute time, which must not precede `now`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < {:?}",
            self.now
        );
        self.queue.schedule(at.max(self.now), event)
    }

    /// Schedule an event `delay_ns` nanoseconds from now. Saturates at
    /// [`SimTime::MAX`] rather than wrapping, so an absurdly long delay
    /// (e.g. a disabled periodic process) cannot send the clock backwards.
    pub fn schedule_after(&mut self, delay_ns: u64, event: E) -> EventId {
        self.queue.schedule(
            SimTime::from_ns(self.now.as_ns().saturating_add(delay_ns)),
            event,
        )
    }

    /// Schedule an event at the current instant (fires after all events
    /// already scheduled for `now`).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.schedule(self.now, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<E> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        Some(ev)
    }

    /// Timestamp of the next pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ms(10), Ev::B);
        eng.schedule_at(SimTime::from_ms(5), Ev::A);
        eng.schedule_after(20_000_000, Ev::C);
        assert_eq!(eng.pending(), 3);

        assert_eq!(eng.next_event(), Some(Ev::A));
        assert_eq!(eng.now(), SimTime::from_ms(5));
        assert_eq!(eng.next_event(), Some(Ev::B));
        assert_eq!(eng.now(), SimTime::from_ms(10));
        assert_eq!(eng.next_event(), Some(Ev::C));
        assert_eq!(eng.now(), SimTime::from_ms(20));
        assert_eq!(eng.next_event(), None);
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn schedule_now_fires_after_existing_same_time_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::A);
        eng.schedule_now(Ev::B);
        assert_eq!(eng.next_event(), Some(Ev::A));
        assert_eq!(eng.next_event(), Some(Ev::B));
        assert_eq!(eng.now(), SimTime::ZERO);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new();
        let id = eng.schedule_after(100, Ev::A);
        eng.schedule_after(200, Ev::B);
        assert!(eng.cancel(id));
        assert_eq!(eng.next_event(), Some(Ev::B));
        assert_eq!(eng.next_event(), None);
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut eng = Engine::new();
        eng.schedule_after(500, Ev::A);
        assert_eq!(eng.next_time(), Some(SimTime::from_ns(500)));
        assert_eq!(eng.now(), SimTime::ZERO);
    }
}
