//! Parallel parameter sweeps.
//!
//! Every experiment in the paper is a grid of independent simulations
//! (organizations × array sizes × cache sizes × …). Runs share nothing, so
//! they parallelize perfectly across threads.

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::sim::Simulator;
use tracegen::Trace;

/// One sweep point: a label plus its configuration and input trace (traces
/// are shared by reference; generate once, sweep many).
pub struct NamedRun<'a> {
    pub label: String,
    pub config: SimConfig,
    pub trace: &'a Trace,
}

impl<'a> NamedRun<'a> {
    pub fn new(label: impl Into<String>, config: SimConfig, trace: &'a Trace) -> NamedRun<'a> {
        NamedRun {
            label: label.into(),
            config,
            trace,
        }
    }
}

/// Run every sweep point, `threads`-wide, returning reports in input order.
/// `threads = 0` uses the machine's available parallelism.
pub fn run_all(runs: &[NamedRun<'_>], threads: usize) -> Vec<(String, SimReport)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let mut out: Vec<Option<(String, SimReport)>> = Vec::with_capacity(runs.len());
    out.resize_with(runs.len(), || None);
    let workers = threads.min(runs.len()).max(1);
    let chunk = runs.len().div_ceil(workers).max(1);

    // Each worker owns a disjoint slice of the output: no locking, and a
    // worker panic propagates when the scope joins.
    std::thread::scope(|scope| {
        for (run_chunk, out_chunk) in runs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (run, slot) in run_chunk.iter().zip(out_chunk) {
                    let report = Simulator::new(run.config.clone(), run.trace).run();
                    *slot = Some((run.label.clone(), report));
                }
            });
        }
    });

    out.into_iter()
        // simlint::allow(panic-policy): a worker panic propagates at scope join above, so every slot is filled by the time we get here
        .map(|r| r.expect("missing sweep result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Organization;
    use tracegen::SynthSpec;

    #[test]
    fn parallel_sweep_matches_serial_runs() {
        let trace = SynthSpec::trace2().scaled(0.01).generate();
        let orgs = [
            Organization::Base,
            Organization::Mirror,
            Organization::Raid5 { striping_unit: 1 },
        ];
        let runs: Vec<NamedRun<'_>> = orgs
            .iter()
            .map(|&o| NamedRun::new(o.label(), SimConfig::with_organization(o), &trace))
            .collect();
        let parallel = run_all(&runs, 3);
        assert_eq!(parallel.len(), 3);
        for (i, &org) in orgs.iter().enumerate() {
            let serial = Simulator::new(SimConfig::with_organization(org), &trace).run();
            assert_eq!(parallel[i].0, org.label());
            assert_eq!(
                parallel[i].1.mean_response_ms(),
                serial.mean_response_ms(),
                "parallel run must be bit-identical to serial for {}",
                org.label()
            );
        }
    }

    #[test]
    fn zero_threads_uses_default_parallelism() {
        let trace = SynthSpec::trace2().scaled(0.002).generate();
        let runs = vec![NamedRun::new(
            "base",
            SimConfig::with_organization(Organization::Base),
            &trace,
        )];
        let out = run_all(&runs, 0);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.requests_completed > 0);
    }
}
