//! Faults layer: the failure lifecycle engine.
//!
//! Owns failure injection, degraded operation, the rate-throttled online
//! rebuild (hot-spare or distributed sparing), latent sector errors and the
//! background scrub that races to find them, multi-failure escalation with
//! spare-pool management, graceful data-loss accounting, and the NVRAM
//! battery failover window.
//!
//! Each array walks the lifecycle state machine (DESIGN.md "Failure
//! model"):
//!
//! ```text
//! Healthy ──disk fail──▶ Degraded ──spare drawn──▶ Rebuilding ──▶ Healthy
//!                            │                        │  ▲
//!                            │   (spare dies, pool    └──┘ restart
//!                            │    non-empty: restart)
//!                            └──second data-disk fail / unreconstructable
//!                               latent error──▶ DataLoss (sticky)
//! ```
//!
//! All state is per-array (plus per-disk latent-error sets), so a
//! partitioned run owning an array range resolves its faults exactly as the
//! serial loop does; cross-array totals are plain sums.

use super::*;
use std::collections::BTreeSet;

/// An injected fault hitting the simulated hardware, resolved to engine
/// coordinates (global disk index).
#[derive(Clone, Copy, Debug)]
pub(super) enum FaultKind {
    DiskFail { gdisk: u32 },
    LatentError { gdisk: u32, block: u64 },
    BatteryFail,
    BatteryRestore,
}

/// Number of blocks reconstructed per rebuild batch (and verified per scrub
/// batch — the scrub shares this machinery). One batch is one background
/// write fed by peer reads; small enough that foreground traffic
/// interleaves between batches, large enough that the sweep is not all
/// seeks.
const REBUILD_BATCH_BLOCKS: u64 = 64;

/// Per-array failure/rebuild lifecycle state.
#[derive(Clone)]
pub(super) struct ArrayFault {
    /// First disk failure ever seen by this array (exposure reporting).
    pub(super) failed_at: Option<SimTime>,
    /// Start of the currently open degraded window, if one is open.
    pub(super) degraded_since: Option<SimTime>,
    /// Closed degraded windows, summed (a multi-failure lifecycle can have
    /// several degraded→healthy episodes).
    pub(super) degraded_banked_ns: u64,
    /// Most recent return to healthy planning.
    pub(super) healthy_at: Option<SimTime>,
    pub(super) rebuild_started: Option<SimTime>,
    pub(super) rebuild_done: Option<SimTime>,
    pub(super) rebuild_active: bool,
    /// Next block of the failed disk to reconstruct.
    pub(super) rebuild_cursor: u64,
    /// When the in-flight rebuild batch was dispatched (rate throttling).
    pub(super) step_started: SimTime,
    /// Blocks in the in-flight batch (throttle denominator; distributed
    /// sparing splits one batch across several writes).
    pub(super) batch_blocks: u64,
    /// Writes of the in-flight batch not yet completed.
    pub(super) batch_writes_left: u32,
    /// Rebuild attempt number: bumped when the rebuild aborts (spare death,
    /// data loss) so stale throttled steps are recognized and dropped.
    pub(super) epoch: u32,
    /// Spares this array may still draw from its pool.
    pub(super) spares_left: u32,
    /// Spares this array has consumed (keys replacement spindle phases).
    pub(super) spares_drawn: u32,
    /// When the array crossed into `DataLoss`, if it did.
    pub(super) data_loss_at: Option<SimTime>,
}

impl ArrayFault {
    fn new(spares: u32) -> ArrayFault {
        ArrayFault {
            failed_at: None,
            degraded_since: None,
            degraded_banked_ns: 0,
            healthy_at: None,
            rebuild_started: None,
            rebuild_done: None,
            rebuild_active: false,
            rebuild_cursor: 0,
            step_started: SimTime::ZERO,
            batch_blocks: 0,
            batch_writes_left: 0,
            epoch: 0,
            spares_left: spares,
            spares_drawn: 0,
            data_loss_at: None,
        }
    }
}

/// Per-array background-scrub sweep state: one sequential pass over every
/// disk of the array, disk-major.
#[derive(Clone)]
pub(super) struct ScrubState {
    /// Local disk index currently under verification.
    pub(super) disk: u32,
    /// Next block to verify on that disk.
    pub(super) cursor: u64,
    /// The pass covered every (surviving) disk.
    pub(super) done: bool,
    /// When the in-flight scrub batch was dispatched (rate throttling).
    pub(super) step_started: SimTime,
}

impl ScrubState {
    fn new() -> ScrubState {
        ScrubState {
            disk: 0,
            cursor: 0,
            done: false,
            step_started: SimTime::ZERO,
        }
    }
}

/// Runtime state of the fault-injection engine, present iff
/// [`SimConfig::fault`] is set. Owns the injected-event plan, the per-disk
/// transient-error streams, the per-array lifecycle and scrub states, the
/// per-disk latent-error sets, and every counter reported in
/// [`FaultReport`] / [`crate::ReliabilityReport`].
pub(super) struct FaultState {
    pub(super) fcfg: FaultConfig,
    pub(super) plan: FaultPlan,
    /// One independent error stream per physical disk, split off the fault
    /// seed, so one disk's draw sequence never depends on another's op
    /// count.
    pub(super) rngs: Vec<FaultRng>,
    /// Lifecycle state, one per array.
    pub(super) arr: Vec<ArrayFault>,
    /// Scrub sweep state, one per array.
    pub(super) scrub: Vec<ScrubState>,
    /// Per physical disk: blocks currently marred by an undiscovered latent
    /// sector error.
    pub(super) latent: Vec<BTreeSet<u64>>,
    // Cross-array totals (per-array events sum into them; the parallel
    // merge adds partition totals into a zeroed parent).
    pub(super) disk_failures: u64,
    pub(super) spares_used: u64,
    pub(super) rebuild_blocks: u64,
    pub(super) scrub_blocks: u64,
    pub(super) latent_errors: u64,
    pub(super) latent_repaired: u64,
    pub(super) blocks_lost: u64,
    pub(super) lost_reads: u64,
    // NVRAM battery.
    pub(super) battery_out: bool,
    pub(super) battery_fail_at: SimTime,
    pub(super) battery_window_ns: u64,
    pub(super) writes_written_through: u64,
    // Error/recovery counters.
    pub(super) transient_errors: u64,
    pub(super) retries: u64,
    pub(super) escalations: u64,
    pub(super) ops_aborted: u64,
    pub(super) ops_replayed: u64,
    // Response split by the array state the request arrived under.
    pub(super) resp_healthy: Welford,
    pub(super) resp_degraded: Welford,
    pub(super) resp_rebuilding: Welford,
    pub(super) resp_dataloss: Welford,
}

impl FaultState {
    pub(super) fn new(
        fcfg: FaultConfig,
        plan: FaultPlan,
        rngs: Vec<FaultRng>,
        arrays: u32,
        total_disks: usize,
    ) -> FaultState {
        let spares = if fcfg.spare { fcfg.spare_count } else { 0 };
        FaultState {
            fcfg,
            plan,
            rngs,
            arr: (0..arrays).map(|_| ArrayFault::new(spares)).collect(),
            scrub: (0..arrays).map(|_| ScrubState::new()).collect(),
            latent: (0..total_disks).map(|_| BTreeSet::new()).collect(),
            disk_failures: 0,
            spares_used: 0,
            rebuild_blocks: 0,
            scrub_blocks: 0,
            latent_errors: 0,
            latent_repaired: 0,
            blocks_lost: 0,
            lost_reads: 0,
            battery_out: false,
            battery_fail_at: SimTime::ZERO,
            battery_window_ns: 0,
            writes_written_through: 0,
            transient_errors: 0,
            retries: 0,
            escalations: 0,
            ops_aborted: 0,
            ops_replayed: 0,
            resp_healthy: Welford::new(),
            resp_degraded: Welford::new(),
            resp_rebuilding: Welford::new(),
            resp_dataloss: Welford::new(),
        }
    }
}

impl<'t> Simulator<'t> {
    /// Whether `gdisk` is its array's currently failed disk.
    #[inline]
    pub(super) fn is_failed(&self, gdisk: u32) -> bool {
        self.failed_local[(gdisk / self.dpa) as usize] == Some(gdisk % self.dpa)
    }

    /// No failure or loss anywhere: transient-error escalation stays
    /// conservative and only fires on a fully healthy system.
    #[inline]
    pub(super) fn fully_healthy(&self) -> bool {
        self.failed_local.iter().all(Option::is_none) && !self.dataloss.iter().any(|&d| d)
    }

    /// A disk permanently fails (injected or escalated from exhausted
    /// retries). Routes on the array's lifecycle state:
    ///
    /// * first failure — degraded planning, and (with a spare pool or
    ///   distributed sparing) the online rebuild starts;
    /// * the rebuilding slot fails again — the spare died: restart onto the
    ///   next spare, or stay degraded on pool exhaustion;
    /// * a second distinct disk fails — the stripe loses more blocks than
    ///   its redundancy covers: `DataLoss`.
    pub(super) fn on_disk_fail(&mut self, gdisk: u32) {
        let now = self.engine.now();
        let array = gdisk / self.dpa;
        let a = array as usize;
        let local = gdisk % self.dpa;
        match self.failed_local[a] {
            Some(l) if l == local => {
                // The failed slot failed again. Under hot sparing with an
                // active rebuild that is the spare dying mid-rebuild;
                // otherwise the slot is already dead and the event is moot.
                let spare_died = self
                    .fault
                    .as_ref()
                    .is_some_and(|f| f.arr[a].rebuild_active && f.fcfg.sparing == SparingMode::Hot);
                if spare_died {
                    self.on_spare_fail(gdisk, now);
                }
                return;
            }
            Some(_) => {
                self.on_second_fail(gdisk, now);
                return;
            }
            None => {}
        }

        // First failure of this lifecycle episode.
        self.failed_local[a] = Some(local);
        if let Some(f) = self.fault.as_mut() {
            f.disk_failures += 1;
            f.latent[gdisk as usize].clear();
            let af = &mut f.arr[a];
            af.failed_at.get_or_insert(now);
            af.degraded_since = Some(now);
        }
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"disk_fail\",\"disk\":{}}}",
                now.as_ns(),
                gdisk
            );
            self.write_log(&line);
        }
        self.abort_disk_ops(gdisk);
        // A failed RAID4 parity disk orphans the spool: nothing can drain
        // it anymore, so give the reserved cache slots back.
        if self.parity_cached && local == self.n {
            while let Some(run) = self.spools[a].pop_run(u32::MAX) {
                self.caches[a].release_slots(run.nblocks as usize);
            }
        }
        // Start re-protection per the configured sparing mode.
        let mut start: Option<(u32, Option<u32>)> = None; // (epoch, spare serial)
        if let Some(f) = self.fault.as_mut() {
            if f.fcfg.spare {
                let sparing = f.fcfg.sparing;
                let af = &mut f.arr[a];
                match sparing {
                    SparingMode::Hot if af.spares_left > 0 => {
                        af.spares_left -= 1;
                        af.spares_drawn += 1;
                        start = Some((af.epoch, Some(af.spares_drawn)));
                    }
                    // Pool exhausted: the array stays degraded.
                    SparingMode::Hot => {}
                    SparingMode::Distributed => {
                        start = Some((af.epoch, None));
                    }
                }
                if start.is_some() {
                    af.rebuild_started.get_or_insert(now);
                    af.rebuild_active = true;
                    af.rebuild_cursor = 0;
                    af.batch_writes_left = 0;
                    f.spares_used += u64::from(matches!(sparing, SparingMode::Hot));
                }
            }
        }
        if let Some((epoch, spare_serial)) = start {
            if let Some(k) = spare_serial {
                // The hot spare takes the failed slot with a fresh spindle
                // phase keyed past the installed-disk index range (the k-th
                // spare this array draws gets the k-th replacement phase).
                let phase = spindle_phase(
                    self.cfg.seed,
                    self.disks.len() as u64 * k as u64 + gdisk as u64,
                    self.rot_ns,
                );
                self.disks[gdisk as usize] =
                    Disk::new(self.cfg.geometry.clone(), self.cfg.seek, phase);
            }
            self.engine.schedule_now(Ev::RebuildStep { array, epoch });
        }
    }

    /// The spare being rebuilt onto died. Restart the rebuild from block 0
    /// onto the next spare, or — with the pool exhausted — abandon it and
    /// stay degraded.
    fn on_spare_fail(&mut self, gdisk: u32, now: SimTime) {
        let array = gdisk / self.dpa;
        let a = array as usize;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"spare_fail\",\"disk\":{}}}",
                now.as_ns(),
                gdisk
            );
            self.write_log(&line);
        }
        self.abort_disk_ops(gdisk);
        let mut restart: Option<(u32, u32)> = None; // (epoch, spare serial)
        if let Some(f) = self.fault.as_mut() {
            f.disk_failures += 1;
            f.latent[gdisk as usize].clear();
            let af = &mut f.arr[a];
            af.epoch += 1;
            if af.spares_left > 0 {
                af.spares_left -= 1;
                af.spares_drawn += 1;
                af.rebuild_cursor = 0;
                af.batch_writes_left = 0;
                restart = Some((af.epoch, af.spares_drawn));
                f.spares_used += 1;
            } else {
                // Abandoned, not finished: close the rebuild window here so
                // the report measures time actually spent rebuilding, and
                // leave `healthy_at` unset — the degraded exposure runs on.
                af.rebuild_active = false;
                af.rebuild_done.get_or_insert(now);
            }
        }
        if let Some((epoch, k)) = restart {
            let phase = spindle_phase(
                self.cfg.seed,
                self.disks.len() as u64 * k as u64 + gdisk as u64,
                self.rot_ns,
            );
            self.disks[gdisk as usize] = Disk::new(self.cfg.geometry.clone(), self.cfg.seek, phase);
            self.engine.schedule_now(Ev::RebuildStep { array, epoch });
        }
    }

    /// A second distinct disk of an already-degraded array failed: the
    /// stripe loses more blocks than its redundancy covers. The array
    /// transitions to `DataLoss` (sticky), the whole disk's worth of blocks
    /// is accounted lost, any rebuild is abandoned, and reads of lost data
    /// complete degenerately from here on.
    fn on_second_fail(&mut self, gdisk: u32, now: SimTime) {
        let array = gdisk / self.dpa;
        let a = array as usize;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"disk_fail\",\"disk\":{}}}",
                now.as_ns(),
                gdisk
            );
            self.write_log(&line);
        }
        if let Some(f) = self.fault.as_mut() {
            f.disk_failures += 1;
            f.latent[gdisk as usize].clear();
            let af = &mut f.arr[a];
            if af.rebuild_active {
                af.rebuild_active = false;
                af.epoch += 1;
                af.rebuild_done.get_or_insert(now);
            }
        }
        // Transition before aborting: the replans triggered by the aborts
        // must see the loss and complete degenerately instead of recursing
        // between the two dead disks.
        self.note_data_loss(array, self.bpd, now);
        self.abort_disk_ops(gdisk);
    }

    /// Mark `blocks` of `array` lost beyond redundancy and make the
    /// `DataLoss` transition (idempotent, sticky).
    pub(super) fn note_data_loss(&mut self, array: u32, blocks: u64, now: SimTime) {
        let a = array as usize;
        self.dataloss[a] = true;
        if let Some(f) = self.fault.as_mut() {
            f.blocks_lost += blocks;
            f.arr[a].data_loss_at.get_or_insert(now);
        }
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"data_loss\",\"array\":{},\"blocks\":{}}}",
                now.as_ns(),
                array,
                blocks
            );
            self.write_log(&line);
        }
    }

    /// Cancel the in-service op and drain the queue of a newly dead disk,
    /// settling every op through [`Simulator::abort_op`].
    fn abort_disk_ops(&mut self, gdisk: u32) {
        let g = gdisk as usize;
        if let Some(ev) = self.service_ev[g].take() {
            self.engine.cancel(ev);
        }
        let mut lost: Vec<(u32, bool)> = Vec::new();
        if let Some(t) = self.in_service[g].take() {
            lost.push((t, true));
        }
        // Abort via `drain`, not repeated `pop`s: popping would drive the
        // discipline's position machinery (SCAN cursor and sweep direction)
        // through ops that are never serviced, and the replacement spindle
        // would inherit that phantom sweep state (scheduler contract
        // clause 4).
        for (_, t) in self.queues[g].drain() {
            lost.push((t, false));
        }
        for (t, started) in lost {
            self.abort_op(t, started);
        }
    }

    /// A latent sector error fires: the block is silently marred. Nothing
    /// happens to in-flight timing — the error surfaces when a scrub batch
    /// or a rebuild reconstruction touches the block.
    pub(super) fn on_latent_error(&mut self, gdisk: u32, block: u64) {
        if self.is_failed(gdisk) {
            return; // the whole disk is already dead
        }
        if let Some(f) = self.fault.as_mut() {
            if f.latent[gdisk as usize].insert(block) {
                f.latent_errors += 1;
            }
        }
    }

    /// Remove an op addressed to a failed disk, settle its bookkeeping, and
    /// re-plan host-facing reads of lost data through the degraded path.
    /// `started` marks an op that was in service: its feeder contribution,
    /// if any, already happened at dispatch.
    pub(super) fn abort_op(&mut self, token: u32, started: bool) {
        let now = self.engine.now();
        let op = self.ops.remove(token);
        if let Some(f) = self.fault.as_mut() {
            f.ops_aborted += 1;
        }
        // A queued feeder never started: its parity job must not wait for a
        // read that will never happen.
        if op.feeds && !started {
            if let Some(j) = op.job {
                self.feed_job(j, now);
            }
        }
        match op.role {
            OpRole::HostRead | OpRole::CacheFetch | OpRole::ReconstructRead => {
                self.replan_lost_read(&op, now);
            }
            OpRole::HostWrite | OpRole::RmwData => {
                let phase = self.abort_phase(&op, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::ParityRmw | OpRole::ParityWrite => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::ExtraRead | OpRole::Writeback => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
            }
            OpRole::DestageData => {
                // simlint::allow(panic-policy): same invariant as completion — a destage op always carries its group
                let dg = op.dgroup.expect("destage op lost its group");
                self.dgroups.get_mut(dg).remaining -= 1;
                if self.dgroups.get(dg).remaining == 0 {
                    let dj = self.dgroups.remove(dg);
                    let array = (op.gdisk / self.dpa) as usize;
                    self.caches[array].destage_complete(&dj.group);
                }
            }
            OpRole::DestageParity | OpRole::RebuildWrite | OpRole::ScrubRepair => {
                if let Some(j) = op.job {
                    self.jobs.refs[j as usize] -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::SpoolDrain => {
                let array = (op.gdisk / self.dpa) as usize;
                self.caches[array].release_slots(op.nblocks as usize);
            }
            OpRole::RebuildRead => {}
            OpRole::ScrubRead => {
                // The disk under verification died mid-batch: resume the
                // sweep (the step handler skips failed slots).
                self.engine.schedule_now(Ev::ScrubStep {
                    array: op.gdisk / self.dpa,
                });
            }
        }
    }

    /// A host-facing read lost its target disk mid-flight. Mirror reads
    /// redirect to the surviving copy; parity organizations read every
    /// surviving peer of each lost block and XOR-reconstruct, routing the
    /// rebuilt data through the request's tail channel transfer. With no
    /// redundancy left — the array already in `DataLoss`, or an
    /// unprotected region — the part completes degenerately (there is
    /// nothing left to read).
    fn replan_lost_read(&mut self, op: &DiskOp, now: SimTime) {
        let req = op.req_id();
        let array = op.gdisk / self.dpa;
        let local = op.gdisk % self.dpa;
        if self.dataloss[array as usize] {
            // Reconstruction sources are gone; re-planning would bounce
            // between the dead disks forever. Count the lost read and
            // settle the part.
            if let Some(f) = self.fault.as_mut() {
                f.lost_reads += 1;
            }
            let phase = self.abort_phase(op, now);
            self.request_part_done(req, now, phase);
            return;
        }
        let lost = Run {
            disk: local,
            block: op.block,
            nblocks: op.nblocks,
        };
        let mut runs: Vec<Run> = Vec::new();
        let mut reconstructed = false;
        if let Some(alt) = self.planner.mirror_of(lost) {
            runs.push(alt);
        } else {
            for b in 0..op.nblocks as u64 {
                for (disk, block) in self.planner.peers_of(local, op.block + b) {
                    crate::mapping::push_merged(&mut runs, disk, block);
                }
            }
            reconstructed = !runs.is_empty();
        }
        if runs.is_empty() {
            let phase = self.abort_phase(op, now);
            self.request_part_done(req, now, phase);
            return;
        }
        if reconstructed && op.role == OpRole::HostRead {
            // Reconstructed data reaches the host via the tail transfer
            // (cache fetches already route the whole reply through it).
            self.reqs.get_mut(req).tail_channel_bytes += op.nblocks as u64 * self.block_bytes;
        }
        let role = match op.role {
            OpRole::CacheFetch => OpRole::CacheFetch,
            OpRole::HostRead if !reconstructed => OpRole::HostRead,
            _ => OpRole::ReconstructRead,
        };
        if let Some(f) = self.fault.as_mut() {
            f.ops_replayed += runs.len() as u64;
        }
        for run in runs {
            let t = self.new_op(DiskOp {
                role,
                req: Some(req),
                job: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: op.band,
                feeds: false,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.reqs.get_mut(req).pending += 1;
            self.enqueue_op(t);
        }
        // The aborted op's own share is replaced, not completed; pending
        // stays positive because the replacements were counted first.
        self.reqs.get_mut(req).pending -= 1;
    }

    /// Phase decomposition of an aborted part at abort time `now`: time
    /// since enqueue is attributed to the disk queue (the op never reached
    /// the media). Telescopes exactly to `now − arrive`.
    fn abort_phase(&self, op: &DiskOp, now: SimTime) -> PhaseSample {
        let r = self.reqs.get(op.req_id());
        let m = &op.marks;
        PhaseSample {
            admission_ns: r.admit - r.arrive,
            channel_ns: r.stage_end - r.admit,
            parity_ns: m.enqueue - r.stage_end,
            disk_queue_ns: now - m.enqueue,
            ..PhaseSample::default()
        }
    }

    /// Reconstruct the next batch of `array`'s failed disk: read every
    /// surviving peer (background band), XOR, and write the result to the
    /// spare target — the hot spare occupying the failed slot, or the
    /// survivors' spare areas under distributed sparing. Batches
    /// self-perpetuate until the cursor covers the disk, throttled to the
    /// configured rebuild rate so foreground traffic keeps priority — the
    /// same interference channel as destaging.
    pub(super) fn on_rebuild_step(&mut self, array: u32, epoch: u32) {
        let a = array as usize;
        let now = self.engine.now();
        let Some(local) = self.failed_local[a] else {
            return;
        };
        let gdisk = self.gdisk(array, local);
        let (cursor, sparing) = match self.fault.as_ref() {
            Some(f) if f.arr[a].rebuild_active && f.arr[a].epoch == epoch => {
                (f.arr[a].rebuild_cursor, f.fcfg.sparing)
            }
            _ => return, // aborted or restarted: this step is stale
        };
        if cursor >= self.bpd {
            // Every block is re-protected: the array returns to
            // healthy-mode planning. (Under distributed sparing the dead
            // slot's relocated blocks keep being modeled on its old drive —
            // a timing approximation documented in DESIGN.md.)
            self.failed_local[a] = None;
            if let Some(f) = self.fault.as_mut() {
                let af = &mut f.arr[a];
                af.rebuild_active = false;
                af.rebuild_done = Some(now);
                af.healthy_at = Some(now);
                if let Some(s) = af.degraded_since.take() {
                    af.degraded_banked_ns += now - s;
                }
            }
            if self.event_log.is_some() {
                let line = format!(
                    "{{\"t\":{},\"ev\":\"rebuild_done\",\"disk\":{}}}",
                    now.as_ns(),
                    gdisk
                );
                self.write_log(&line);
            }
            return;
        }
        let batch = REBUILD_BATCH_BLOCKS.min(self.bpd - cursor) as u32;
        if let Some(f) = self.fault.as_mut() {
            let af = &mut f.arr[a];
            af.rebuild_cursor += batch as u64;
            af.step_started = now;
            af.batch_blocks = batch as u64;
        }
        // Collect the peer blocks disk-major so `push_merged` coalesces
        // each peer's contribution into one contiguous run per disk (it
        // only merges against the last run pushed).
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for b in cursor..cursor + batch as u64 {
            pairs.extend(self.planner.peers_of(local, b));
        }
        pairs.sort_unstable();
        // A reconstruction source carrying a latent error makes its stripe
        // unreconstructable: that block is lost beyond redundancy. Counted
        // as data loss; the sweep continues so the rest of the disk is
        // still re-protected, and timing is unchanged (the peer read
        // happens either way — only its contents were bad).
        let mut lost = 0u64;
        if let Some(f) = self.fault.as_mut() {
            for &(disk, block) in &pairs {
                let pg = (array * self.dpa + disk) as usize;
                if f.latent[pg].remove(&block) {
                    lost += 1;
                }
            }
        }
        if lost > 0 {
            self.note_data_loss(array, lost, now);
        }
        let mut runs: Vec<Run> = Vec::new();
        for (disk, block) in pairs {
            crate::mapping::push_merged(&mut runs, disk, block);
        }
        // Write targets: one run onto the hot spare, or the batch's blocks
        // spread over the survivors' spare areas.
        let mut write_runs: Vec<Run> = Vec::new();
        match sparing {
            SparingMode::Hot => write_runs.push(Run {
                disk: local,
                block: cursor,
                nblocks: batch,
            }),
            SparingMode::Distributed => {
                for b in cursor..cursor + batch as u64 {
                    let disk = crate::mapping::distributed_spare_target(self.dpa, local, b);
                    crate::mapping::push_merged(&mut write_runs, disk, b);
                }
            }
        }
        if let Some(f) = self.fault.as_mut() {
            f.arr[a].batch_writes_left = write_runs.len() as u32;
        }
        let mut wts: Vec<u32> = Vec::with_capacity(write_runs.len());
        for run in &write_runs {
            let wt = self.new_op(DiskOp {
                role: OpRole::RebuildWrite,
                req: None,
                job: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Write,
                band: Band::Background,
                feeds: false,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            wts.push(wt);
        }
        if runs.is_empty() {
            // Unprotected blocks (e.g. the Parity Striping tail sliver):
            // the spare target is simply formatted through them.
            for wt in wts {
                self.enqueue_op(wt);
            }
            return;
        }
        let job = self.jobs.insert(ParityJob {
            data_not_started: runs.len() as u32,
            ready: SimTime::ZERO,
            pending_parity: wts.clone(),
            rule: EnqueueRule::AtReady,
            refs: runs.len() as u32 + wts.len() as u32,
        });
        for &wt in &wts {
            self.ops.job[wt as usize] = Some(job);
        }
        for run in runs {
            let t = self.new_op(DiskOp {
                role: OpRole::RebuildRead,
                req: None,
                job: Some(job),
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: Band::Background,
                feeds: true,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.enqueue_op(t);
        }
    }

    /// A rebuild batch write finished: count it, and when the whole batch
    /// is on stable storage schedule the next batch, no earlier than the
    /// rate throttle allows.
    pub(super) fn on_rebuild_batch_done(&mut self, op: &DiskOp) {
        let now = self.engine.now();
        let array = op.gdisk / self.dpa;
        let a = array as usize;
        let (rate, step_started, epoch, batch_blocks) = match self.fault.as_mut() {
            Some(f) => {
                f.rebuild_blocks += op.nblocks as u64;
                let af = &mut f.arr[a];
                af.batch_writes_left = af.batch_writes_left.saturating_sub(1);
                if af.batch_writes_left > 0 || !af.rebuild_active {
                    return; // batch still in flight, or rebuild abandoned
                }
                let (started, epoch, blocks) = (af.step_started, af.epoch, af.batch_blocks);
                (f.fcfg.rebuild_rate_mbps, started, epoch, blocks)
            }
            None => return,
        };
        let batch_bytes = batch_blocks * self.block_bytes;
        // rate MB/s ⇒ the batch may not complete faster than
        // bytes·1000/rate nanoseconds after its dispatch.
        // rate == 0 means unthrottled: the next batch may start now.
        let next_at = match (batch_bytes * 1_000).checked_div(rate) {
            None => now,
            Some(d) => (step_started + d).max(now),
        };
        self.engine
            .schedule_at(next_at, Ev::RebuildStep { array, epoch });
    }

    /// Verify the next batch of `array`'s scrub sweep: one background read
    /// on the current (disk, cursor), skipping failed slots. Discovery and
    /// repair happen when the read completes.
    pub(super) fn on_scrub_step(&mut self, array: u32) {
        let now = self.engine.now();
        let a = array as usize;
        let bpd = self.bpd;
        let dpa = self.dpa;
        let failed = self.failed_local[a];
        let mut finished = false;
        let step = match self.fault.as_mut() {
            Some(f) if f.fcfg.scrub_rate_mbps > 0 && !f.scrub[a].done => {
                let s = &mut f.scrub[a];
                // Skip the failed slot: its contents are gone (the rebuild,
                // not the scrub, re-protects them).
                while s.disk < dpa && failed == Some(s.disk) {
                    s.disk += 1;
                    s.cursor = 0;
                }
                if s.disk >= dpa {
                    s.done = true;
                    finished = true;
                    None
                } else {
                    let disk = s.disk;
                    let cursor = s.cursor;
                    let batch = REBUILD_BATCH_BLOCKS.min(bpd - cursor) as u32;
                    s.cursor += batch as u64;
                    s.step_started = now;
                    if s.cursor >= bpd {
                        s.disk += 1;
                        s.cursor = 0;
                    }
                    Some((disk, cursor, batch))
                }
            }
            _ => return,
        };
        if finished && self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"scrub_done\",\"array\":{}}}",
                now.as_ns(),
                array
            );
            self.write_log(&line);
        }
        let Some((disk, cursor, batch)) = step else {
            return;
        };
        let t = self.new_op(DiskOp {
            role: OpRole::ScrubRead,
            req: None,
            job: None,
            dgroup: None,
            gdisk: self.gdisk(array, disk),
            block: cursor,
            nblocks: batch,
            kind: AccessKind::Read,
            band: Band::Background,
            feeds: false,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        });
        self.enqueue_op(t);
    }

    /// A scrub batch read finished: every block in its range is now
    /// verified. Marred blocks are discovered here — repaired from
    /// redundancy when the array is healthy, or accounted as data loss when
    /// the redundancy is already spent covering a failed disk. Then the
    /// sweep's next batch is scheduled, throttled to the scrub rate.
    pub(super) fn on_scrub_read_done(&mut self, op: &DiskOp) {
        let now = self.engine.now();
        let gdisk = op.gdisk;
        let array = gdisk / self.dpa;
        let a = array as usize;
        let local = gdisk % self.dpa;
        let (marred, rate, step_started) = match self.fault.as_mut() {
            Some(f) => {
                f.scrub_blocks += op.nblocks as u64;
                let lo = op.block;
                let hi = op.block + op.nblocks as u64;
                let marred: Vec<u64> = f.latent[gdisk as usize].range(lo..hi).copied().collect();
                for b in &marred {
                    f.latent[gdisk as usize].remove(b);
                }
                (marred, f.fcfg.scrub_rate_mbps, f.scrub[a].step_started)
            }
            None => return,
        };
        if !marred.is_empty() {
            if self.failed_local[a].is_some() || self.dataloss[a] {
                // The redundancy that would repair these blocks is already
                // reconstructing the failed disk: a marred survivor block
                // has no second source — lost.
                self.note_data_loss(array, marred.len() as u64, now);
            } else {
                self.spawn_scrub_repair(array, local, &marred, now);
            }
        }
        let batch_bytes = op.nblocks as u64 * self.block_bytes;
        let next_at = match (batch_bytes * 1_000).checked_div(rate) {
            None => now,
            Some(d) => (step_started + d).max(now),
        };
        self.engine.schedule_at(next_at, Ev::ScrubStep { array });
    }

    /// Repair scrub-discovered latent errors on `local`: read every peer of
    /// each marred block (background band), XOR-reconstruct, and rewrite
    /// the block in place — the same job shape as a rebuild batch. Marred
    /// blocks in unprotected regions (no peers) are lost.
    fn spawn_scrub_repair(&mut self, array: u32, local: u32, marred: &[u64], now: SimTime) {
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        let mut repair_runs: Vec<Run> = Vec::new();
        let mut lost = 0u64;
        for &b in marred {
            let peers = self.planner.peers_of(local, b);
            if peers.is_empty() {
                lost += 1; // e.g. the Parity Striping tail sliver
                continue;
            }
            pairs.extend(peers);
            crate::mapping::push_merged(&mut repair_runs, local, b);
        }
        if lost > 0 {
            self.note_data_loss(array, lost, now);
        }
        if repair_runs.is_empty() {
            return;
        }
        if let Some(f) = self.fault.as_mut() {
            f.latent_repaired += repair_runs.iter().map(|r| r.nblocks as u64).sum::<u64>();
        }
        pairs.sort_unstable();
        let mut runs: Vec<Run> = Vec::new();
        for (disk, block) in pairs {
            crate::mapping::push_merged(&mut runs, disk, block);
        }
        let mut wts: Vec<u32> = Vec::with_capacity(repair_runs.len());
        for run in &repair_runs {
            let wt = self.new_op(DiskOp {
                role: OpRole::ScrubRepair,
                req: None,
                job: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Write,
                band: Band::Background,
                feeds: false,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            wts.push(wt);
        }
        let job = self.jobs.insert(ParityJob {
            data_not_started: runs.len() as u32,
            ready: SimTime::ZERO,
            pending_parity: wts.clone(),
            rule: EnqueueRule::AtReady,
            refs: runs.len() as u32 + wts.len() as u32,
        });
        for &wt in &wts {
            self.ops.job[wt as usize] = Some(job);
        }
        for run in runs {
            let t = self.new_op(DiskOp {
                role: OpRole::RebuildRead,
                job: Some(job),
                req: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: Band::Background,
                feeds: true,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.enqueue_op(t);
        }
        let _ = now;
    }

    /// NVRAM battery failure: cached contents are no longer safe across a
    /// power loss, so the controller flushes everything dirty and serves
    /// writes in write-through mode until the battery is restored.
    pub(super) fn on_battery_fail(&mut self) {
        let now = self.engine.now();
        match self.fault.as_mut() {
            Some(f) if !f.battery_out => {
                f.battery_out = true;
                f.battery_fail_at = now;
            }
            _ => return,
        }
        for a in 0..self.arrays {
            if self.caches.is_empty() {
                break;
            }
            let groups = self.caches[a as usize].collect_destage();
            for group in groups {
                self.issue_destage_group(a, group);
            }
            if self.parity_cached {
                self.try_drain_spool(a);
            }
        }
    }

    pub(super) fn on_battery_restore(&mut self) {
        let now = self.engine.now();
        if let Some(f) = self.fault.as_mut() {
            if f.battery_out {
                f.battery_out = false;
                f.battery_window_ns += now - f.battery_fail_at;
            }
        }
    }

    /// Whether the NVRAM battery is currently failed (write-through mode).
    pub(super) fn battery_out(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.battery_out)
    }

    pub(super) fn note_write_through(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.writes_written_through += 1;
        }
    }
}
