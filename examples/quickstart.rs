//! Quickstart: simulate one OLTP workload against two disk-array
//! organizations and compare response times.
//!
//! ```text
//! cargo run --release -p raidsim --example quickstart
//! ```

use raidsim::{Organization, SimConfig, Simulator};
use tracegen::SynthSpec;

fn main() {
    // A scaled-down version of the paper's high-skew Trace 2 workload:
    // 10 logical data disks, 28% writes, bursty arrivals.
    let trace = SynthSpec::trace2().scaled(0.25).generate();
    println!(
        "workload: {} requests over {:.0} s on {} logical disks\n",
        trace.len(),
        trace.duration().as_secs_f64(),
        trace.n_disks
    );

    for org in [Organization::Base, Organization::Raid5 { striping_unit: 1 }] {
        // Table 4 defaults: N = 10 data disks per array, Disk First
        // synchronization, no controller cache.
        let config = SimConfig::with_organization(org);
        let report = Simulator::new(config, &trace).run();
        println!("{}", report.summary());
    }

    println!(
        "\nRAID5 stores parity for media recovery at 1/N storage overhead; on a \
         skewed workload its striping also balances load, which is why it can \
         beat the unprotected Base organization here (paper, Section 4.2)."
    );
}
