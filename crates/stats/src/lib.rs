//! # raidtp-stats — measurement plumbing for the simulator
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`Histogram`] — fixed-width-bin latency histogram with percentile
//!   queries (used for response-time distributions).
//! * [`DiskCounters`] — per-disk access counts with imbalance metrics
//!   (reproduces Figures 6–7, the access-skew plots).
//! * [`table`] — fixed-width text tables for experiment output.

pub mod counters;
pub mod histogram;
pub mod table;
pub mod welford;

pub use counters::DiskCounters;
pub use histogram::Histogram;
pub use table::Table;
pub use welford::Welford;
