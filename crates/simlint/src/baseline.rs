//! The committed-baseline (waiver) mechanism.
//!
//! New rules land at `--deny` without a flag-day: accepted findings are
//! recorded in `simlint.baseline.toml` as `[[waiver]]` entries and
//! subtracted from the run. A waiver matches on the
//! **(rule, file, snippet)** triple — the trimmed source line, not its
//! line number — so ordinary drift above the site does not invalidate it,
//! while any edit to the waived line itself forces a fresh decision.
//! Every waiver carries a mandatory `reason`; a reason-less entry is a
//! parse error, same policy as the inline `simlint::allow` escape.
//!
//! `simlint --write-baseline` regenerates the file from the current
//! denied findings (with placeholder reasons to be filled in before
//! committing); unused waivers are reported at the end of a run so the
//! baseline can only shrink silently, never rot.

use crate::{toml, Diagnostic, Rule};

#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: String,
    pub file: String,
    /// Trimmed source line of the waived finding.
    pub snippet: String,
    pub reason: String,
}

/// Parse a baseline file. Unknown rules and empty reasons are hard errors
/// so the waiver set cannot silently drift from the rule set.
pub fn parse(src: &str) -> Result<Vec<Waiver>, String> {
    let root = toml::parse(src)?;
    let mut out = Vec::new();
    let Some(entries) = root.get("waiver") else {
        return Ok(out);
    };
    let toml::Value::TableArr(entries) = entries else {
        return Err("baseline: `waiver` must be declared as [[waiver]] entries".into());
    };
    for (i, t) in entries.iter().enumerate() {
        let field = |k: &str| -> Result<String, String> {
            t.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("baseline: [[waiver]] #{} is missing `{k}`", i + 1))
        };
        let w = Waiver {
            rule: field("rule")?,
            file: field("file")?,
            snippet: field("snippet")?,
            reason: field("reason")?,
        };
        if Rule::from_name(&w.rule).is_none() {
            return Err(format!(
                "baseline: [[waiver]] #{} names unknown rule `{}`",
                i + 1,
                w.rule
            ));
        }
        if w.reason.trim().is_empty() {
            return Err(format!(
                "baseline: [[waiver]] #{} ({}, {}) has an empty reason — justify it or fix \
                 the finding",
                i + 1,
                w.rule,
                w.file
            ));
        }
        out.push(w);
    }
    Ok(out)
}

/// Remove the diagnostics covered by `waivers` from `diags`; returns the
/// waivers that covered nothing (stale entries worth deleting).
pub fn apply(diags: &mut Vec<Diagnostic>, waivers: &[Waiver]) -> Vec<Waiver> {
    let mut used = vec![false; waivers.len()];
    diags.retain(|d| {
        let hit = waivers
            .iter()
            .position(|w| w.rule == d.rule.name() && w.file == d.file && w.snippet == d.snippet);
        match hit {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        }
    });
    waivers
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(w, _)| w.clone())
        .collect()
}

/// Render the denied findings as a fresh baseline file. Reasons are
/// emitted as placeholders: fill each one in (or fix the finding) before
/// committing — the parser rejects the placeholder-free empty string but
/// review should reject an unexplained `TODO` just as hard.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# simlint baseline: accepted findings, keyed by (rule, file, snippet).\n\
         # Every entry needs a real `reason`. Regenerate with --write-baseline;\n\
         # delete entries the run reports as unused.\n",
    );
    // One waiver covers every site with the same (rule, file, snippet)
    // triple, so repeated findings collapse to a single entry.
    let mut seen = std::collections::BTreeSet::new();
    for d in diags {
        if d.level != crate::Level::Deny {
            continue;
        }
        if !seen.insert((d.rule.name(), d.file.as_str(), d.snippet.as_str())) {
            continue;
        }
        out.push_str(&format!(
            "\n[[waiver]]\nrule = {}\nfile = {}\nsnippet = {}\nreason = {}\n",
            toml::escape(d.rule.name()),
            toml::escape(&d.file),
            toml::escape(&d.snippet),
            toml::escape("TODO: justify this waiver or fix the finding"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn diag(rule: Rule, file: &str, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            level: Level::Deny,
            file: file.into(),
            line: 3,
            col: 7,
            snippet: snippet.into(),
        }
    }

    #[test]
    fn waivers_match_on_rule_file_snippet_and_report_stale_entries() {
        let src = "[[waiver]]\nrule = \"layer-boundary\"\nfile = \"a.rs\"\n\
                   snippet = \"self.admit_waiters(r.array);\"\nreason = \"accepted wakeup edge\"\n\
                   [[waiver]]\nrule = \"unit-safety\"\nfile = \"b.rs\"\n\
                   snippet = \"gone\"\nreason = \"stale\"\n";
        let waivers = parse(src).unwrap();
        let mut diags = vec![
            diag(Rule::LayerBoundary, "a.rs", "self.admit_waiters(r.array);"),
            diag(Rule::LayerBoundary, "a.rs", "other_line();"),
        ];
        let unused = apply(&mut diags, &waivers);
        assert_eq!(diags.len(), 1, "only the exact triple is waived");
        assert_eq!(diags[0].snippet, "other_line();");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].file, "b.rs");
    }

    #[test]
    fn rejects_unknown_rules_and_empty_reasons() {
        let bad_rule = "[[waiver]]\nrule = \"nope\"\nfile = \"a.rs\"\n\
                        snippet = \"x\"\nreason = \"y\"\n";
        assert!(parse(bad_rule).is_err());
        let no_reason = "[[waiver]]\nrule = \"unit-safety\"\nfile = \"a.rs\"\n\
                         snippet = \"x\"\nreason = \"  \"\n";
        assert!(parse(no_reason).is_err());
        let missing = "[[waiver]]\nrule = \"unit-safety\"\nfile = \"a.rs\"\nreason = \"y\"\n";
        assert!(parse(missing).is_err());
    }

    #[test]
    fn render_round_trips_through_parse_even_with_hostile_snippets() {
        let snippet = "let s = \"quoted \\\\ back\\tslash\";";
        let d = diag(Rule::UnitSafety, "weird\\path.rs", snippet);
        let text = render(std::slice::from_ref(&d));
        // The placeholder reason parses (it is non-empty); the snippet
        // survives escaping exactly.
        let ws = parse(&text).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].snippet, snippet);
        assert_eq!(ws[0].file, "weird\\path.rs");
        let mut diags = vec![d];
        assert!(apply(&mut diags, &ws).is_empty());
        assert!(diags.is_empty(), "round-tripped waiver suppresses");
    }

    #[test]
    fn warn_level_diags_are_not_baselined() {
        let mut d = diag(Rule::UnusedAllow, "a.rs", "x");
        d.level = Level::Warn;
        assert!(!render(&[d]).contains("[[waiver]]"));
    }
}
