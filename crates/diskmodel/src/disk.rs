//! Per-drive dynamic state and service-time computation.

use crate::geometry::{BlockNo, Cylinder, DiskGeometry};
use crate::seek::SeekCurve;
use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// How an operation uses the media.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Plain read: seek + rotational latency + transfer.
    Read,
    /// Plain write: seek + rotational latency + transfer.
    Write,
    /// Read-modify-write of the *data* blocks of an update in a parity
    /// organization: read the old data, hold the disk for one full rotation,
    /// write the new data in place. Completes exactly one rotation after the
    /// read ends.
    RmwData,
    /// Read phase of a *parity* update: read the old parity; the write fires
    /// at the first head-return after the new parity is computable. The
    /// completion time depends on the data disks and is resolved later with
    /// [`rmw_write_complete`].
    RmwParityRead,
}

/// Timing decomposition of one media access, all times absolute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessTiming {
    /// When the disk started servicing the operation.
    pub start: SimTime,
    /// Arm-move component, ns.
    pub seek_ns: u64,
    /// Rotational-latency component, ns.
    pub latency_ns: u64,
    /// Media transfer component, ns (old-data read for RMW kinds).
    pub transfer_ns: u64,
    /// End of the (first) media transfer: data available in the track buffer
    /// for reads; old data/parity read for RMW kinds.
    pub read_end: SimTime,
    /// When the disk becomes free. For `RmwParityRead` this is provisional
    /// (= earliest possible, one rotation after `read_end`) until resolved.
    pub complete: SimTime,
    /// Cylinder the arm rests on afterwards.
    pub end_cylinder: Cylinder,
}

/// Time from the end of an RMW read until the head is back over the start
/// of the run: the rotational remainder of the transfer. Zero when the
/// transfer is an exact number of revolutions.
#[inline]
pub fn rmw_turnaround_ns(transfer_ns: u64, rotation_ns: u64) -> u64 {
    (rotation_ns - transfer_ns % rotation_ns) % rotation_ns
}

/// Resolve the completion time of a parity read-modify-write whose new
/// contents become computable at `ready`.
///
/// After the old parity is read (ending at `read_end`, head just past the
/// run), the head returns to the run's start every rotation, first after
/// [`rmw_turnaround_ns`]. The write can start at the k-th return (k ≥ 0)
/// once `ready` has passed and occupies `transfer_ns`. Each missed
/// revolution — the paper's "another full rotation time will be spent" —
/// adds one `rot`.
#[inline]
pub fn rmw_write_complete(
    read_end: SimTime,
    transfer_ns: u64,
    rotation_ns: u64,
    ready: SimTime,
) -> SimTime {
    let first_start = read_end + rmw_turnaround_ns(transfer_ns, rotation_ns);
    let start = if ready <= first_start {
        first_start
    } else {
        let late = ready - first_start;
        first_start + late.div_ceil(rotation_ns) * rotation_ns
    };
    start + transfer_ns
}

/// Dynamic state of one drive: arm position, rotational phase, busy horizon
/// and utilization accounting.
///
/// The platter rotates continuously; the angular position at absolute time
/// `t` is `(t + phase) mod rotation`. Disks are not spindle-synchronized
/// (Section 3.2), so each drive carries its own phase offset.
#[derive(Clone, Debug)]
pub struct Disk {
    geom: DiskGeometry,
    seek: SeekCurve,
    rotation_ns: u64,
    block_transfer_ns: u64,
    phase_ns: u64,
    cyl: Cylinder,
    busy_until: SimTime,
    // Accumulated statistics.
    busy_ns: u64,
    seek_ns_total: u64,
    latency_ns_total: u64,
    ops: u64,
}

impl Disk {
    /// Create a drive with the given rotational phase offset (use a value
    /// derived from the disk id / run seed; disks are not synchronized).
    pub fn new(geom: DiskGeometry, seek: SeekCurve, phase_ns: u64) -> Disk {
        let rotation_ns = geom.rotation_ns();
        let block_transfer_ns = geom.block_transfer_ns();
        Disk {
            geom,
            seek,
            rotation_ns,
            block_transfer_ns,
            phase_ns: phase_ns % rotation_ns,
            cyl: 0,
            busy_until: SimTime::ZERO,
            busy_ns: 0,
            seek_ns_total: 0,
            latency_ns_total: 0,
            ops: 0,
        }
    }

    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    #[inline]
    pub fn rotation_ns(&self) -> u64 {
        self.rotation_ns
    }

    #[inline]
    pub fn block_transfer_ns(&self) -> u64 {
        self.block_transfer_ns
    }

    #[inline]
    pub fn current_cylinder(&self) -> Cylinder {
        self.cyl
    }

    #[inline]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Arm distance (in cylinders) to a block — used by the mirrored-read
    /// shortest-seek dispatch.
    #[inline]
    pub fn arm_distance(&self, block: BlockNo) -> u32 {
        self.cyl.abs_diff(self.geom.cylinder_of(block))
    }

    /// Rotational wait from absolute time `t` until the head is over the
    /// start of `sector`.
    #[inline]
    fn rotational_wait(&self, t: SimTime, sector: u32) -> u64 {
        let angle = (t.as_ns() + self.phase_ns) % self.rotation_ns;
        let target = self.geom.sectors_to_ns(sector as u64);
        (target + self.rotation_ns - angle) % self.rotation_ns
    }

    /// Compute the timing of an access to `nblocks` contiguous blocks
    /// starting at `block`, with service beginning at `start`. Pure: does
    /// not change disk state — call [`Disk::commit`] when the operation is
    /// actually dispatched.
    pub fn plan(
        &self,
        start: SimTime,
        block: BlockNo,
        nblocks: u32,
        kind: AccessKind,
    ) -> AccessTiming {
        debug_assert!(nblocks >= 1);
        debug_assert!(block + nblocks as u64 <= self.geom.blocks_per_disk());
        let target_cyl = self.geom.cylinder_of(block);
        let seek_ns = self.seek.seek_ns(self.cyl.abs_diff(target_cyl));
        let after_seek = start + seek_ns;
        let latency_ns = self.rotational_wait(after_seek, self.geom.start_sector_of(block));
        let transfer_ns = self.block_transfer_ns * nblocks as u64;
        let read_end = after_seek + latency_ns + transfer_ns;
        let complete = match kind {
            AccessKind::Read | AccessKind::Write => read_end,
            // Write the same blocks after the head comes back around to the
            // run's start (one full rotation total for runs within a track).
            AccessKind::RmwData | AccessKind::RmwParityRead => {
                read_end + rmw_turnaround_ns(transfer_ns, self.rotation_ns) + transfer_ns
            }
        };
        AccessTiming {
            start,
            seek_ns,
            latency_ns,
            transfer_ns,
            read_end,
            complete,
            end_cylinder: self.geom.cylinder_of(block + nblocks as u64 - 1),
        }
    }

    /// Dispatch a planned operation: move the arm, mark the disk busy until
    /// `complete`, and accumulate utilization statistics. `complete` may be
    /// later than `timing.complete` (parity writes held for extra
    /// rotations).
    pub fn commit(&mut self, timing: &AccessTiming, complete: SimTime) {
        debug_assert!(complete >= timing.read_end);
        debug_assert!(timing.start >= self.busy_until, "disk double-booked");
        self.cyl = timing.end_cylinder;
        self.busy_until = complete;
        self.busy_ns += complete - timing.start;
        self.seek_ns_total += timing.seek_ns;
        self.latency_ns_total += timing.latency_ns;
        self.ops += 1;
    }

    /// Extend the busy horizon of the op currently in service (parity write
    /// held extra rotations beyond its provisional completion).
    pub fn extend_busy(&mut self, new_complete: SimTime) {
        debug_assert!(new_complete >= self.busy_until);
        self.busy_ns += new_complete - self.busy_until;
        self.busy_until = new_complete;
    }

    /// Total time the drive has spent servicing operations, ns.
    #[inline]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Operations committed so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean seek time per op, ms (0 if no ops).
    pub fn mean_seek_ms(&self) -> f64 {
        self.seek_ns_total
            .checked_div(self.ops)
            .map_or(0.0, simkit::time::ns_to_ms)
    }

    /// Utilization over an observation window of `elapsed_ns`.
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        simkit::time::busy_fraction(self.busy_ns, elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn disk() -> Disk {
        Disk::new(DiskGeometry::default(), SeekCurve::table1(), 0)
    }

    const ROT: u64 = 11_111_111;
    const XFER: u64 = 1_851_851;

    #[test]
    fn read_at_cylinder_zero_sector_zero_no_seek() {
        let d = disk();
        // Phase 0, t=0: head is exactly over sector 0 of cylinder 0.
        let t = d.plan(SimTime::ZERO, 0, 1, AccessKind::Read);
        assert_eq!(t.seek_ns, 0);
        assert_eq!(t.latency_ns, 0);
        assert_eq!(t.transfer_ns, XFER);
        assert_eq!(t.complete, SimTime::from_ns(XFER));
        assert_eq!(t.end_cylinder, 0);
    }

    #[test]
    fn latency_wraps_after_missing_sector() {
        let d = disk();
        // Start 1ns after sector 0 passes: must wait nearly a full rotation.
        let t = d.plan(SimTime::from_ns(1), 0, 1, AccessKind::Read);
        assert_eq!(t.latency_ns, ROT - 1);
    }

    #[test]
    fn seek_to_far_cylinder_included() {
        let d = disk();
        let block = 180 * 100; // cylinder 100
        let t = d.plan(SimTime::ZERO, block, 1, AccessKind::Read);
        assert_eq!(t.seek_ns, SeekCurve::table1().seek_ns(100));
        assert_eq!(t.end_cylinder, 100);
    }

    #[test]
    fn multiblock_transfer_scales() {
        let d = disk();
        let t = d.plan(SimTime::ZERO, 0, 4, AccessKind::Read);
        assert_eq!(t.transfer_ns, 4 * XFER);
    }

    #[test]
    fn rmw_data_adds_exactly_one_rotation() {
        let d = disk();
        let t = d.plan(SimTime::ZERO, 0, 1, AccessKind::RmwData);
        assert_eq!(t.read_end, SimTime::from_ns(XFER));
        assert_eq!(t.complete, SimTime::from_ns(XFER + ROT));
    }

    #[test]
    fn rmw_write_complete_one_rotation_when_ready_early() {
        let read_end = SimTime::from_ms(20);
        // Data was ready before the parity read even finished.
        let c = rmw_write_complete(read_end, XFER, ROT, SimTime::from_ms(5));
        assert_eq!(c, read_end + ROT);
        // Ready exactly at the first write-start boundary still makes it.
        let boundary = read_end + (ROT - XFER);
        assert_eq!(
            rmw_write_complete(read_end, XFER, ROT, boundary),
            read_end + ROT
        );
    }

    #[test]
    fn rmw_write_complete_misses_revolutions_when_data_late() {
        let read_end = SimTime::from_ms(20);
        // Ready 1ns past the first boundary: one extra rotation.
        let late = read_end + (ROT - XFER) + 1;
        assert_eq!(
            rmw_write_complete(read_end, XFER, ROT, late),
            read_end + 2 * ROT
        );
        // Ready several rotations later.
        let very_late = read_end + 5 * ROT;
        let c = rmw_write_complete(read_end, XFER, ROT, very_late);
        assert_eq!(c, read_end + 6 * ROT);
    }

    #[test]
    fn rmw_longer_than_a_track_still_turns_around() {
        // A 16-block RMW transfer (29.6 ms) exceeds one rotation: the head
        // returns to the run start after the rotational remainder.
        let d = disk();
        let t = d.plan(SimTime::ZERO, 0, 16, AccessKind::RmwData);
        let transfer = 16 * XFER;
        let back = (ROT - transfer % ROT) % ROT;
        assert_eq!(t.complete, t.read_end + back + transfer);
        assert!(t.complete > t.read_end + transfer);
        // And the resolver agrees when data is ready early.
        assert_eq!(
            rmw_write_complete(t.read_end, transfer, ROT, SimTime::ZERO),
            t.complete
        );
    }

    #[test]
    fn commit_updates_state_and_stats() {
        let mut d = disk();
        let t = d.plan(SimTime::ZERO, 180 * 50, 1, AccessKind::Read);
        d.commit(&t, t.complete);
        assert_eq!(d.current_cylinder(), 50);
        assert_eq!(d.busy_until(), t.complete);
        assert_eq!(d.busy_ns(), t.complete.as_ns());
        assert_eq!(d.ops(), 1);
        assert!(d.utilization(t.complete.as_ns() * 2) > 0.49);
    }

    #[test]
    fn extend_busy_accumulates_held_rotations() {
        let mut d = disk();
        let t = d.plan(SimTime::ZERO, 0, 1, AccessKind::RmwParityRead);
        d.commit(&t, t.complete);
        let before = d.busy_ns();
        d.extend_busy(t.complete + ROT);
        assert_eq!(d.busy_ns(), before + ROT);
        assert_eq!(d.busy_until(), t.complete + ROT);
    }

    #[test]
    fn arm_distance_tracks_position() {
        let mut d = disk();
        assert_eq!(d.arm_distance(180 * 10), 10);
        let t = d.plan(SimTime::ZERO, 180 * 10, 1, AccessKind::Read);
        d.commit(&t, t.complete);
        assert_eq!(d.arm_distance(0), 10);
        assert_eq!(d.arm_distance(180 * 10), 0);
    }

    #[test]
    fn phase_offset_shifts_latency() {
        let d0 = Disk::new(DiskGeometry::default(), SeekCurve::table1(), 0);
        let d1 = Disk::new(DiskGeometry::default(), SeekCurve::table1(), ROT / 2);
        let t0 = d0.plan(SimTime::ZERO, 0, 1, AccessKind::Read);
        let t1 = d1.plan(SimTime::ZERO, 0, 1, AccessKind::Read);
        assert_eq!(t0.latency_ns, 0);
        assert_eq!(t1.latency_ns, ROT - ROT / 2);
    }

    proptest! {
        /// Latency is always within one rotation; completion ordering holds.
        #[test]
        fn prop_plan_invariants(
            start_ns in 0u64..10_000_000_000,
            block in 0u64..226_000,
            n in 1u32..6,
            phase in 0u64..ROT,
            kind_sel in 0u8..4,
        ) {
            let kind = match kind_sel {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                2 => AccessKind::RmwData,
                _ => AccessKind::RmwParityRead,
            };
            prop_assume!(block + n as u64 <= 226_800);
            let d = Disk::new(DiskGeometry::default(), SeekCurve::table1(), phase);
            let t = d.plan(SimTime::from_ns(start_ns), block, n, kind);
            prop_assert!(t.latency_ns < ROT);
            prop_assert!(t.read_end >= t.start);
            prop_assert!(t.complete >= t.read_end);
            prop_assert_eq!(
                t.read_end.as_ns(),
                start_ns + t.seek_ns + t.latency_ns + t.transfer_ns
            );
            // After seek+latency the head is at the block start sector.
            if matches!(kind, AccessKind::RmwData) {
                prop_assert_eq!(t.complete - t.read_end, ROT);
            }
        }

        /// The resolved parity write start never precedes readiness, always
        /// lands on a head-return boundary, and is minimal.
        #[test]
        fn prop_rmw_write_complete(
            read_end_ns in 1_000_000u64..100_000_000,
            ready_delta in 0i64..60_000_000,
        ) {
            let read_end = SimTime::from_ns(read_end_ns);
            let ready = SimTime::from_ns((read_end_ns as i64 + ready_delta - 30_000_000).max(0) as u64);
            let c = rmw_write_complete(read_end, XFER, ROT, ready);
            let k = (c - read_end) / ROT;
            prop_assert!(k >= 1);
            prop_assert_eq!(c - read_end, k * ROT, "completes on a boundary");
            let write_start = c.as_ns() - XFER;
            prop_assert!(write_start >= ready.as_ns(), "write after ready");
            if k > 1 {
                // Minimality: the previous boundary was too early.
                let prev_start = read_end.as_ns() + (k - 1) * ROT - XFER;
                prop_assert!(prev_start < ready.as_ns());
            }
        }
    }
}
