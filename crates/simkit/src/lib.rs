//! # simkit — deterministic discrete-event simulation core
//!
//! Minimal building blocks for the trace-driven disk-array simulator:
//!
//! * [`SimTime`] — an integer-nanosecond simulation clock value. Integer time
//!   makes runs bit-for-bit reproducible across platforms and optimization
//!   levels, which floating-point clocks do not guarantee.
//! * [`EventQueue`] — a future-event list with stable FIFO ordering among
//!   simultaneous events and O(log n) cancellation via tombstones.
//! * [`Engine`] — a thin clock + queue harness enforcing monotonic time.
//! * [`FaultPlan`] — a seeded, time-ordered schedule of injected faults and
//!   the sole factory for fault-randomness streams.
//!
//! The simulator in the `raidsim` crate owns its domain event type and drives
//! an [`Engine`] directly; nothing here knows about disks.

pub mod engine;
pub mod fault;
pub mod queue;
pub mod time;

pub use engine::{Engine, ExecFrame, FrameChunk};
pub use fault::{FaultEvent, FaultPlan, FaultRng};
pub use queue::{EventId, EventQueue};
pub use time::SimTime;
