//! Trace file format ↔ simulator integration: serialized traces replay to
//! bit-identical results.

use raidsim::{Organization, SimConfig, Simulator};
use tracegen::{fmt, transform, SynthSpec};

#[test]
fn serialized_trace_replays_identically() {
    let original = SynthSpec::trace2().scaled(0.05).generate();
    let text = fmt::write_trace(&original, false);
    let parsed = fmt::parse_trace(&text).expect("parse");
    assert_eq!(parsed, original);

    let cfg = SimConfig::with_organization(Organization::Raid5 { striping_unit: 1 });
    let a = Simulator::new(cfg.clone(), &original).run();
    let b = Simulator::new(cfg, &parsed).run();
    assert_eq!(a.response_all_ms.mean(), b.response_all_ms.mean());
    assert_eq!(a.disk_ops, b.disk_ops);
}

#[test]
fn exploded_format_preserves_multiblock_structure() {
    // The paper's original format writes each block of a multiblock request
    // as a zero-delta line; coalescing on parse restores the request.
    let original = SynthSpec::trace1().scaled(0.001).generate();
    let exploded = fmt::write_trace(&original, true);
    let parsed = fmt::parse_trace(&exploded).expect("parse");
    assert_eq!(parsed, original);
    let multi = original
        .records
        .iter()
        .filter(|r| r.is_multiblock())
        .count();
    let multi_parsed = parsed.records.iter().filter(|r| r.is_multiblock()).count();
    assert_eq!(multi, multi_parsed);
}

#[test]
fn transforms_compose_with_the_format() {
    let original = SynthSpec::trace2().scaled(0.02).generate();
    let fast = transform::at_speed(&original, 2.0);
    let text = fmt::write_trace(&fast, false);
    let back = fmt::parse_trace(&text).expect("parse");
    assert_eq!(back, fast);
    let windowed = transform::window(&back, simkit::SimTime::ZERO, simkit::SimTime::from_secs(30));
    windowed.validate().expect("windowed trace is well-formed");
    assert!(windowed.len() <= back.len());
}

#[test]
fn hand_written_trace_drives_the_simulator() {
    let text = "\
# raidtp trace: disks=10 blocks_per_disk=226800
1000000 0 100 1 R
2000000 1 200 1 W
0 1 201 1 W
0 1 202 1 W
5000000 2 42 1 R
";
    let trace = fmt::parse_trace(text).expect("parse");
    assert_eq!(trace.len(), 3, "zero-delta lines coalesce into one write");
    assert_eq!(trace.records[1].nblocks, 3);
    let r = Simulator::new(SimConfig::with_organization(Organization::Mirror), &trace).run();
    assert_eq!(r.requests_completed, 3);
    assert_eq!(r.reads_completed, 2);
    assert_eq!(r.writes_completed, 1);
}
