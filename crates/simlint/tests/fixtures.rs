//! Golden tests over the fixture corpus (`crates/simlint/fixtures/`).
//!
//! Each case is a miniature workspace: its own `simlint.toml` plus a few
//! source files. `bad/<case>/expected.txt` lists the diagnostics the case
//! must produce, one per line as `rule file:line`; `good/<case>/` is the
//! clean twin of a bad case and must produce nothing. Running the real
//! `analyze_workspace` entry point keeps the corpus honest — a rule that
//! silently stops firing breaks the bad twin, a rule that over-fires
//! breaks the good twin.

use simlint::{analyze_workspace, Config, WsConfig};
use std::path::{Path, PathBuf};

fn fixture_root(side: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(side)
}

fn cases(side: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(fixture_root(side))
        .expect("fixture dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    assert!(
        out.len() >= 4,
        "suspiciously few {side} fixtures found: {out:?}"
    );
    out
}

fn run_case(dir: &Path) -> Vec<String> {
    let ws = WsConfig::load(&dir.join("simlint.toml"))
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    let diags = analyze_workspace(dir, &ws, &Config::default())
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    diags
        .iter()
        .map(|d| format!("{} {}:{}", d.rule.name(), d.file, d.line))
        .collect()
}

#[test]
fn good_fixtures_are_clean() {
    for case in cases("good") {
        let got = run_case(&case);
        assert!(
            got.is_empty(),
            "{} should be clean but produced:\n{}",
            case.display(),
            got.join("\n")
        );
    }
}

#[test]
fn bad_fixtures_fire_exactly_the_expected_diagnostics() {
    for case in cases("bad") {
        let expected_path = case.join("expected.txt");
        let expected: Vec<String> = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("{}: {e}", expected_path.display()))
            .lines()
            .map(|l| l.trim().to_string())
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert!(
            !expected.is_empty(),
            "{} must expect at least one diagnostic",
            case.display()
        );
        let got = run_case(&case);
        assert_eq!(
            got,
            expected,
            "\n{}:\n  got:\n    {}\n  expected:\n    {}\n",
            case.display(),
            got.join("\n    "),
            expected.join("\n    ")
        );
    }
}

#[test]
fn every_bad_fixture_has_a_good_twin_or_is_lexer_specific() {
    let good: Vec<String> = cases("good")
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for case in cases("bad") {
        let name = case.file_name().unwrap().to_string_lossy().into_owned();
        // The directive-spoofing case pairs with `lexer-tricky` on the
        // good side; every rule case has a same-named twin.
        if name == "lexer-directive" {
            assert!(good.contains(&"lexer-tricky".to_string()));
            continue;
        }
        assert!(good.contains(&name), "bad/{name} has no good/{name} twin");
    }
}
