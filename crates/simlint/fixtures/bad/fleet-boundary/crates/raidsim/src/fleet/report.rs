use std::rc::Rc;

pub struct FleetTotals {
    pub shared: Rc<u64>,
}
