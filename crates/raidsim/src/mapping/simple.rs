//! Base (independent disks) and Mirror mappings.

use super::{push_merged, Run};

/// Independent disks: logical disk `k` of the array *is* physical disk `k`.
#[derive(Clone, Debug)]
pub struct BaseMap {
    pub n: u32,
    pub blocks_per_disk: u64,
}

impl BaseMap {
    pub fn new(n: u32, blocks_per_disk: u64) -> BaseMap {
        BaseMap { n, blocks_per_disk }
    }

    /// Physical runs of `[laddr, laddr + n)` (split at disk boundaries).
    pub fn runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        let mut runs = Vec::with_capacity(1);
        for a in laddr..laddr + n as u64 {
            let disk = (a / self.blocks_per_disk) as u32;
            debug_assert!(disk < self.n);
            push_merged(&mut runs, disk, a % self.blocks_per_disk);
        }
        runs
    }
}

/// Mirrored pairs: logical disk `k` lives on physical disks `2k` (primary)
/// and `2k + 1` (copy) at identical offsets.
#[derive(Clone, Debug)]
pub struct MirrorMap {
    pub n: u32,
    pub blocks_per_disk: u64,
}

impl MirrorMap {
    pub fn new(n: u32, blocks_per_disk: u64) -> MirrorMap {
        MirrorMap { n, blocks_per_disk }
    }

    /// Primary-copy runs.
    pub fn runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        let mut runs = Vec::with_capacity(1);
        for a in laddr..laddr + n as u64 {
            let disk = 2 * (a / self.blocks_per_disk) as u32;
            debug_assert!(disk < 2 * self.n);
            push_merged(&mut runs, disk, a % self.blocks_per_disk);
        }
        runs
    }

    /// The other member of the pair at the same offset.
    pub fn mirror_of(&self, run: Run) -> Run {
        Run {
            disk: run.disk ^ 1,
            ..run
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_identity_mapping() {
        let m = BaseMap::new(4, 1000);
        assert_eq!(
            m.runs(0, 1),
            vec![Run {
                disk: 0,
                block: 0,
                nblocks: 1
            }]
        );
        assert_eq!(
            m.runs(3999, 1),
            vec![Run {
                disk: 3,
                block: 999,
                nblocks: 1
            }]
        );
        assert_eq!(
            m.runs(1500, 8),
            vec![Run {
                disk: 1,
                block: 500,
                nblocks: 8
            }]
        );
    }

    #[test]
    fn base_run_splits_at_disk_boundary() {
        let m = BaseMap::new(4, 1000);
        assert_eq!(
            m.runs(998, 4),
            vec![
                Run {
                    disk: 0,
                    block: 998,
                    nblocks: 2
                },
                Run {
                    disk: 1,
                    block: 0,
                    nblocks: 2
                },
            ]
        );
    }

    #[test]
    fn mirror_primary_and_copy() {
        let m = MirrorMap::new(4, 1000);
        let runs = m.runs(2500, 2);
        assert_eq!(
            runs,
            vec![Run {
                disk: 4,
                block: 500,
                nblocks: 2
            }]
        );
        assert_eq!(
            m.mirror_of(runs[0]),
            Run {
                disk: 5,
                block: 500,
                nblocks: 2
            }
        );
        // mirror_of is an involution.
        assert_eq!(m.mirror_of(m.mirror_of(runs[0])), runs[0]);
    }
}
