//! Deterministic open-addressing index for cache blocks.
//!
//! The cache's block index is the innermost lookup of every cached-run
//! event, and `BTreeMap`'s O(log n) pointer-chasing made it the hot spot.
//! This is a flat linear-probing table with a **fixed** hash function
//! (splitmix64 finalizer — no `RandomState`, no ambient seed), so behavior
//! is bit-reproducible run to run. It is never iterated: callers that need
//! ordered traversal keep their own ordered side structures, so hash order
//! can never leak into simulation results.
//!
//! Deletions use backward-shift compaction instead of tombstones, keeping
//! probe chains short under the cache's constant insert/evict churn.

use crate::lru::BlockKey;

/// Key: (block identity, is-old-copy flag) — the same composite the cache
/// previously kept in its `BTreeMap`.
type Key = (BlockKey, bool);

#[derive(Clone, Debug)]
pub(crate) struct BlockMap {
    slots: Vec<Option<(Key, usize)>>,
    /// `slots.len() - 1`; length is always a power of two.
    mask: usize,
    len: usize,
}

#[inline]
fn hash(key: Key) -> u64 {
    let (BlockKey { disk, block }, old) = key;
    let mut z = block
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((disk as u64) << 1)
        .wrapping_add(old as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BlockMap {
    /// A table ready to hold `n` entries without growing.
    pub(crate) fn with_capacity(n: usize) -> BlockMap {
        let slots = (n * 2).max(16).next_power_of_two();
        BlockMap {
            slots: vec![None; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn ideal(&self, key: Key) -> usize {
        (hash(key) as usize) & self.mask
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: Key) -> Option<usize> {
        let mut i = self.ideal(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: Key) -> Option<usize> {
        self.find(key).map(|i| {
            // simlint::allow(panic-policy): find() only returns occupied slots
            self.slots[i].as_ref().expect("occupied slot").1
        })
    }

    #[inline]
    pub(crate) fn contains_key(&self, key: Key) -> bool {
        self.find(key).is_some()
    }

    /// Insert or replace; returns the previous value if the key was present.
    pub(crate) fn insert(&mut self, key: Key, value: usize) -> Option<usize> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.ideal(key);
        loop {
            match &mut self.slots[i] {
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & self.mask,
            }
        }
    }

    /// Remove `key`, compacting the probe chain behind it (backward-shift
    /// deletion: every displaced entry moves at least as close to its ideal
    /// slot, so chains never accumulate tombstone rot).
    pub(crate) fn remove(&mut self, key: Key) -> Option<usize> {
        let mut hole = self.find(key)?;
        // simlint::allow(panic-policy): find() only returns occupied slots
        let (_, value) = self.slots[hole].take().expect("occupied slot");
        self.len -= 1;
        let mut probe = hole;
        loop {
            probe = (probe + 1) & self.mask;
            let Some((k, _)) = self.slots[probe] else {
                break;
            };
            let ideal = self.ideal(k);
            // Shift into the hole only if that does not move the entry to
            // before its ideal slot (cyclic distance comparison).
            if (probe.wrapping_sub(ideal) & self.mask) >= (probe.wrapping_sub(hole) & self.mask) {
                self.slots[hole] = self.slots[probe].take();
                hole = probe;
            }
        }
        Some(value)
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_len]);
        self.mask = new_len - 1;
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert(slot.0, slot.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(disk: u32, block: u64, old: bool) -> Key {
        (BlockKey::new(disk, block), old)
    }

    #[test]
    fn insert_get_remove() {
        let mut m = BlockMap::with_capacity(4);
        assert_eq!(m.insert(k(0, 1, false), 10), None);
        assert_eq!(m.insert(k(0, 1, true), 11), None);
        assert_eq!(m.get(k(0, 1, false)), Some(10));
        assert_eq!(m.get(k(0, 1, true)), Some(11));
        assert_eq!(m.get(k(0, 2, false)), None);
        assert_eq!(m.insert(k(0, 1, false), 12), Some(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(k(0, 1, false)), Some(12));
        assert_eq!(m.remove(k(0, 1, false)), None);
        assert_eq!(m.get(k(0, 1, true)), Some(11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = BlockMap::with_capacity(2);
        for b in 0..1000u64 {
            m.insert(k((b % 7) as u32, b, b.is_multiple_of(3)), b as usize);
        }
        assert_eq!(m.len(), 1000);
        for b in 0..1000u64 {
            assert_eq!(
                m.get(k((b % 7) as u32, b, b.is_multiple_of(3))),
                Some(b as usize)
            );
        }
    }

    /// Churn against a reference model: backward-shift deletion must never
    /// lose or corrupt entries, whatever the interleaving.
    #[test]
    fn differential_churn_against_btreemap() {
        use std::collections::BTreeMap;
        let mut m = BlockMap::with_capacity(8);
        let mut reference: BTreeMap<(u32, u64, bool), usize> = BTreeMap::new();
        let mut x = 0x1234_5678_u64;
        for step in 0..20_000usize {
            // xorshift: deterministic operation mix.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = k((x % 3) as u32, (x >> 8) % 512, x.is_multiple_of(2));
            let rkey = ((x % 3) as u32, (x >> 8) % 512, x.is_multiple_of(2));
            if x % 5 < 3 {
                assert_eq!(
                    m.insert(key, step),
                    reference.insert(rkey, step),
                    "step {step}"
                );
            } else {
                assert_eq!(m.remove(key), reference.remove(&rkey), "step {step}");
            }
            assert_eq!(m.len(), reference.len(), "step {step}");
        }
        for (&(d, b, o), &v) in &reference {
            assert_eq!(m.get(k(d, b, o)), Some(v));
        }
    }
}
