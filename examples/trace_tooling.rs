//! Trace tooling: write a trace to the on-disk text format, read it back,
//! characterize it (the paper's Table 2), and replay it through a
//! simulator — the workflow for substituting a *real* captured trace for
//! the synthetic ones.
//!
//! ```text
//! cargo run --release -p raidsim --example trace_tooling
//! ```

use raidsim::{Organization, ParityPlacement, SimConfig, Simulator};
use tracegen::{fmt, transform, SynthSpec, TraceStats};

fn main() {
    // 1. Produce a trace (stand-in for a real capture).
    let original = SynthSpec::trace2().scaled(0.2).generate();

    // 2. Serialize in the paper-style text format — one line per block run,
    //    zero-delta lines continuing a multiblock request — and reparse.
    let path = std::env::temp_dir().join("raidtp_example.trace");
    std::fs::write(&path, fmt::write_trace(&original, true)).expect("write trace file");
    let text = std::fs::read_to_string(&path).expect("read trace file");
    let parsed = fmt::parse_trace(&text).expect("parse trace file");
    assert_eq!(parsed, original, "format round-trips exactly");
    println!("trace file: {} ({} bytes)\n", path.display(), text.len());

    // 3. Characterize it (Table 2 of the paper, recomputed).
    let stats = TraceStats::of(&parsed);
    println!(
        "characterization: {} I/Os, {:.1}% writes, {:.1}% single-block, \
         {:.1} I/O/s, disk-skew CV {:.2}\n",
        stats.io_accesses,
        stats.write_fraction() * 100.0,
        stats.single_block_fraction() * 100.0,
        stats.arrival_rate(),
        stats.disk_skew_cv(),
    );

    // 4. Replay through Parity Striping at two load levels (the paper's
    //    trace-speed experiment).
    for speed in [1.0, 2.0] {
        let t = transform::at_speed(&parsed, speed);
        let cfg = SimConfig::with_organization(Organization::ParityStriping {
            placement: ParityPlacement::Middle,
        });
        let r = Simulator::new(cfg, &t).run();
        println!("speed {speed}: {}", r.summary());
    }

    std::fs::remove_file(&path).ok();
}
