//! Seeded fault-injection plans and their random-number streams.
//!
//! Failures are *simulation input*, not environment: a [`FaultPlan`] is an
//! explicit, time-ordered schedule of injected events plus a seed from which
//! every probabilistic draw (e.g. per-operation transient media errors)
//! derives. Consumers never construct their own generator — they call
//! [`FaultPlan::stream`] with a stable tag (such as a disk index) and get an
//! independent [`FaultRng`] whose sequence is a pure function of
//! `(plan seed, tag)`. That keeps fault-injected runs bit-for-bit
//! reproducible and makes every draw attributable to the plan, which is what
//! the `fault-rng` simlint rule enforces: only this module may call
//! [`FaultRng::new`].

use crate::time::SimTime;

/// splitmix64 finalizer: the seed/tag mixer used to key streams.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xorshift64* generator for fault draws.
///
/// Deliberately minimal: no distribution zoo, no global state, no `rand`
/// dependency. Construct only inside `simkit::fault` (enforced by simlint's
/// `fault-rng` rule); everywhere else, derive streams via
/// [`FaultPlan::stream`].
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seed a generator. The seed is passed through splitmix64 so that
    /// similar seeds (0, 1, 2, …) still give uncorrelated sequences, and a
    /// zero seed cannot produce the degenerate all-zero xorshift orbit.
    pub fn new(seed: u64) -> FaultRng {
        let mut state = splitmix64(seed);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        FaultRng { state }
    }

    /// Next raw 64-bit draw (xorshift64*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; comparison happens against a fixed-point
    /// `u64` threshold, so the result is identical on every platform.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 2^64 · p as a u64 threshold; the draw is uniform on [0, 2^64).
        let threshold = (p * (u64::MAX as f64)) as u64;
        self.next_u64() < threshold
    }

    /// Uniform draw on `[0, 1)` with 53 bits of precision (the mantissa of
    /// an `f64`), for inversion sampling of continuous distributions.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential inter-arrival draw with mean `mean` (inversion method).
    /// Used to lay out Poisson substreams such as per-disk latent sector
    /// errors; `mean` must be positive and finite.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 − u ∈ (0, 1]: ln never sees zero.
        -(1.0 - self.next_unit()).ln() * mean
    }
}

/// One injected fault event. Times are absolute simulation times.
///
/// Second and overlapping disk failures are expressed by scheduling more
/// than one [`FaultEvent::DiskFail`]: the plan carries an arbitrary number
/// of them and the consumer decides whether the overlap is survivable
/// (rebuild restart onto the next spare) or a data-loss transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Permanent failure of one physical disk (`disk` is local to `array`).
    DiskFail { array: u32, disk: u32, at: SimTime },
    /// A latent sector error silently mars one block of one disk: the block
    /// is unreadable from that disk, discovered only when a scrub pass (or
    /// a rebuild needing the block as a reconstruction peer) touches it.
    LatentError {
        array: u32,
        disk: u32,
        block: u64,
        at: SimTime,
    },
    /// The NV cache's battery fails: dirty data is no longer safe, the
    /// controller must degrade to write-through.
    BatteryFail { at: SimTime },
    /// Battery replaced: write-back caching may resume.
    BatteryRestore { at: SimTime },
}

impl FaultEvent {
    /// When the event fires.
    #[inline]
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::DiskFail { at, .. }
            | FaultEvent::LatentError { at, .. }
            | FaultEvent::BatteryFail { at }
            | FaultEvent::BatteryRestore { at } => at,
        }
    }
}

/// A seeded, time-ordered schedule of injected faults.
///
/// The plan is the single source of fault randomness for a run: scheduled
/// events are explicit, and probabilistic behaviors (transient media
/// errors) draw from per-tag streams split off the plan seed. Two plans
/// with the same seed and events produce identical simulations.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The plan's seed (streams derive from it).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Insert an event, keeping the schedule sorted by fire time. Insertion
    /// is stable: events at equal times keep their insertion order.
    pub fn schedule(&mut self, ev: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at() <= ev.at());
        self.events.insert(pos, ev);
    }

    /// The scheduled events in fire order.
    #[inline]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Split off an independent stream keyed by `tag` (e.g. a physical disk
    /// index). Streams for distinct tags are uncorrelated; the same
    /// `(seed, tag)` always yields the same sequence, regardless of how many
    /// other streams exist or in what order they are drawn from.
    pub fn stream(&self, tag: u64) -> FaultRng {
        FaultRng::new(splitmix64(self.seed) ^ splitmix64(tag.wrapping_add(0x005F_A017_BE11)))
    }

    /// Stream for per-disk latent sector errors. Lives in a tag namespace
    /// disjoint from the per-disk transient-error streams (which use the raw
    /// disk index, `0..total_disks`), so enabling latent-error generation
    /// never perturbs the transient draws of an existing plan.
    pub fn latent_stream(&self, gdisk: u64) -> FaultRng {
        debug_assert!(gdisk < LATENT_STREAM_NS, "disk index overflows namespace");
        self.stream(LATENT_STREAM_NS | gdisk)
    }
}

/// Tag-namespace base for latent sector error streams. Per-class namespaces
/// keep each fault class on its own substream: transient errors use tags
/// `0..total_disks`, latent errors use `LATENT_STREAM_NS | gdisk`.
pub const LATENT_STREAM_NS: u64 = 1 << 48;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let mut c = FaultRng::new(43);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = FaultRng::new(0);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn chance_respects_edge_probabilities() {
        let mut r = FaultRng::new(7);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_hits_roughly_p() {
        let mut r = FaultRng::new(123);
        let hits = (0..100_000).filter(|_| r.chance(0.01)).count();
        // 1% ± generous slack; this is a sanity check, not a statistics test.
        assert!((500..1500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let plan = FaultPlan::new(99);
        let mut s0a = plan.stream(0);
        let mut s0b = plan.stream(0);
        let mut s1 = plan.stream(1);
        let a: Vec<u64> = (0..8).map(|_| s0a.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s0b.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_unit_stays_in_half_open_interval() {
        let mut r = FaultRng::new(9);
        for _ in 0..10_000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn next_exp_is_positive_with_roughly_right_mean() {
        let mut r = FaultRng::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_exp(250.0);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        // Loose band: sanity, not statistics.
        assert!((200.0..300.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn latent_streams_are_disjoint_from_transient_streams() {
        let plan = FaultPlan::new(0x4641_554C);
        for gdisk in 0..16u64 {
            let mut transient = plan.stream(gdisk);
            let mut latent = plan.latent_stream(gdisk);
            let t: Vec<u64> = (0..8).map(|_| transient.next_u64()).collect();
            let l: Vec<u64> = (0..8).map(|_| latent.next_u64()).collect();
            assert_ne!(t, l, "gdisk {gdisk}: namespaces collide");
        }
        // And latent streams are themselves per-disk independent.
        let mut l0 = plan.latent_stream(0);
        let mut l1 = plan.latent_stream(1);
        assert_ne!(l0.next_u64(), l1.next_u64());
    }

    #[test]
    fn streams_ignore_schedule_contents_and_order() {
        // A stream is a pure function of (seed, tag): scheduling events —
        // in any order, of any kind — must not perturb it.
        let bare = FaultPlan::new(77);
        let mut full = FaultPlan::new(77);
        full.schedule(FaultEvent::LatentError {
            array: 0,
            disk: 1,
            block: 42,
            at: SimTime::from_ms(5),
        });
        full.schedule(FaultEvent::DiskFail {
            array: 0,
            disk: 1,
            at: SimTime::from_ms(9),
        });
        for tag in [0u64, 3, LATENT_STREAM_NS | 2] {
            let a: Vec<u64> = {
                let mut s = bare.stream(tag);
                (0..8).map(|_| s.next_u64()).collect()
            };
            let b: Vec<u64> = {
                let mut s = full.stream(tag);
                (0..8).map(|_| s.next_u64()).collect()
            };
            assert_eq!(a, b, "tag {tag}: schedule perturbed the stream");
        }
    }

    #[test]
    fn schedule_keeps_events_time_ordered_and_stable() {
        let mut plan = FaultPlan::new(1);
        plan.schedule(FaultEvent::BatteryFail {
            at: SimTime::from_ms(50),
        });
        plan.schedule(FaultEvent::DiskFail {
            array: 0,
            disk: 3,
            at: SimTime::from_ms(10),
        });
        plan.schedule(FaultEvent::BatteryRestore {
            at: SimTime::from_ms(50),
        });
        let at: Vec<u64> = plan.events().iter().map(|e| e.at().as_ns()).collect();
        assert_eq!(at, vec![10_000_000, 50_000_000, 50_000_000]);
        // Stable at equal times: BatteryFail was inserted first.
        assert!(matches!(plan.events()[1], FaultEvent::BatteryFail { .. }));
        assert!(matches!(
            plan.events()[2],
            FaultEvent::BatteryRestore { .. }
        ));
    }
}
