//! # simlint — determinism & invariant lints for the sim-core crates
//!
//! The paper's organization comparisons (Tables 3/4) are only meaningful
//! because the trace-driven simulation is exactly reproducible: the same
//! trace and seed must yield the same figures. The Rust compiler cannot
//! enforce that, so this tool does. It walks every `.rs` file in the
//! sim-core crates and checks eleven domain invariants (plus two
//! meta-rules about the escape hatch itself):
//!
//! 1. **`hash-collection`** — no `std::collections::HashMap`/`HashSet`:
//!    their iteration order is randomized per process, so any result that
//!    ever iterates one stops being replayable.
//! 2. **`ambient-nondet`** — no `Instant::now`, `SystemTime::now`,
//!    `thread_rng`, `rand::random`, or environment-variable reads: all
//!    randomness must flow from the seeded RNG in the simulation config.
//! 3. **`raw-time-cast`** — no `as`-casts on identifiers that name times
//!    or durations (`*_ns`, `*_ms`, `*_us`, `*time*`, `tick`, `now`,
//!    `deadline`) outside `simkit::time`: the `SimTime` newtype and its
//!    helpers are the only sanctioned unit boundary.
//! 4. **`panic-policy`** — no `.unwrap()`/`.expect(` in library (non-bin,
//!    non-test, non-bench) code: parsers and fallible paths return
//!    `Result`; genuine invariants document themselves via the escape
//!    hatch below.
//! 5. **`fault-rng`** — no `FaultRng::new` outside `simkit::fault`, and no
//!    stream minting (`latent_stream`, the `splitmix64` mixer) outside the
//!    fault-stream boundary: fault randomness must be drawn as named
//!    substreams of a `FaultPlan` (`plan.stream(tag)`) built once at
//!    fault-state construction, so two consumers can never share — or
//!    reorder draws from — one generator, and mid-run code (scrub,
//!    sparing, rebuild) can never re-mint a stream and replay its draws.
//! 6. **`scheduler-seam`** — the layered-core seams stay sealed:
//!    `DiskScheduler` implementations live only in `diskmodel`, and
//!    `Organization::` variant dispatch appears only in `raidsim`'s
//!    config, report, mapping, and `sim/planning` modules. Everything
//!    else must go through the `OrgPlanner`/`DiskScheduler` traits, so a
//!    new organization or discipline is one new impl — not a sweep for
//!    stray `match` arms.
//! 7. **`par-safety`** — no shared mutable state across group partitions:
//!    synchronization primitives (`Mutex`, `RwLock`, `Condvar`, atomics,
//!    `mpsc` channels, `static mut`, `unsafe impl`, `thread::spawn`/
//!    `thread::scope`) appear only in the partition/merge layer
//!    (`raidsim/src/sim/par/`) and the sweep work-stealing pool
//!    (`raidsim/src/sweep.rs`). Partitions communicate exclusively
//!    through the journals the merge replays — anything else would let
//!    scheduling races reach the statistics and break byte-identical
//!    replay.
//! 8. **`unit-safety`** — no `+`/`-` arithmetic that mixes a
//!    time-suffixed identifier (`*_ns`, `*_us`, `*_ms`, `*time*`) with a
//!    block/byte/count identifier outside `simkit::time`: adding a
//!    latency to a block count type-checks (both are `u64`) but is always
//!    a unit error.
//! 9. **`journal-effect`** *(workspace pass)* — any function reachable
//!    from partition execution (`run_as_partition` in `sim/par/`) that
//!    pushes statistics, changes inflight counts, or reschedules destage
//!    ticks must be one of the journal sinks declared in `simlint.toml`;
//!    a direct push anywhere else would bypass the ParNote/ExecFrame
//!    journal and break byte-identical parallel replay.
//! 10. **`layer-boundary`** *(workspace pass)* — calls between the PR 5
//!     layer modules must follow the declared admission → planning →
//!     dispatch → faults → reporting flow; a backward call is layer
//!     erosion and is flagged at the call site (real feedback edges are
//!     waived, with reasons, in the committed baseline).
//! 11. **`fleet-boundary`** — virtual arrays exchange state only through
//!     returned outcomes merged in VA index order, so fleet-interior
//!     files (`raidsim/src/fleet/` except `run.rs`) must stay plain
//!     owned data: shared-ownership and interior-mutability types
//!     (`Rc`, `Arc`, `RefCell`, `Cell`, `UnsafeCell`) are flagged there.
//!
//! A site can opt out with a justified annotation on the same line or the
//! line directly above:
//!
//! ```text
//! // simlint::allow(panic-policy): index validity is the slab's invariant
//! ```
//!
//! An annotation without a reason is itself a diagnostic
//! (`malformed-allow`), and an annotation that suppresses nothing is
//! reported as `unused-allow` so stale escapes cannot accumulate. For
//! whole findings that are accepted architecture (e.g. the
//! reporting → admission wakeup), the committed `simlint.baseline.toml`
//! waives a (rule, file, snippet) triple with a reason; see the
//! [`baseline`] module.
//!
//! `syn` is unavailable in this offline workspace, so the analysis runs on
//! a purpose-built lexer ([`lexer`]): comments, string/char literals, and
//! lifetimes are stripped exactly, `#[cfg(test)]`/`#[test]` items are
//! skipped, and the rules match on the remaining token stream. The
//! workspace rules add a lightweight function/call graph ([`graph`]) over
//! the same tokens. That is deliberately simpler than type resolution —
//! and catches exactly the textual forms that have bitten simulator
//! reproducibility in practice.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
mod graph;
mod lexer;
mod rules;
mod sarif;
mod toml;
mod workspace;

pub use sarif::to_sarif;
pub use workspace::{analyze_workspace, WsConfig};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The eleven determinism/architecture invariants, plus the two meta-rules
/// about the escape-hatch annotations themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashCollection,
    AmbientNondet,
    RawTimeCast,
    PanicPolicy,
    FaultRng,
    SchedulerSeam,
    ParSafety,
    UnitSafety,
    JournalEffect,
    LayerBoundary,
    FleetBoundary,
    MalformedAllow,
    UnusedAllow,
}

pub const RULES: [Rule; 13] = [
    Rule::HashCollection,
    Rule::AmbientNondet,
    Rule::RawTimeCast,
    Rule::PanicPolicy,
    Rule::FaultRng,
    Rule::SchedulerSeam,
    Rule::ParSafety,
    Rule::UnitSafety,
    Rule::JournalEffect,
    Rule::LayerBoundary,
    Rule::FleetBoundary,
    Rule::MalformedAllow,
    Rule::UnusedAllow,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollection => "hash-collection",
            Rule::AmbientNondet => "ambient-nondet",
            Rule::RawTimeCast => "raw-time-cast",
            Rule::PanicPolicy => "panic-policy",
            Rule::FaultRng => "fault-rng",
            Rule::SchedulerSeam => "scheduler-seam",
            Rule::ParSafety => "par-safety",
            Rule::UnitSafety => "unit-safety",
            Rule::JournalEffect => "journal-effect",
            Rule::LayerBoundary => "layer-boundary",
            Rule::FleetBoundary => "fleet-boundary",
            Rule::MalformedAllow => "malformed-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    pub fn from_name(s: &str) -> Option<Rule> {
        RULES.iter().copied().find(|r| r.name() == s)
    }

    pub fn hint(self) -> &'static str {
        match self {
            Rule::HashCollection => {
                "iteration order is nondeterministic; use BTreeMap/BTreeSet, or annotate \
                 `// simlint::allow(hash-collection): <reason>` if the map is never iterated"
            }
            Rule::AmbientNondet => {
                "sim-core must be a pure function of (trace, config); route randomness through \
                 the seeded RNG in the config and take timestamps from simulated time"
            }
            Rule::RawTimeCast => {
                "keep times in SimTime and cross units via simkit::time \
                 (from_ns/as_ns/ns_to_ms/busy_fraction) instead of raw `as` casts"
            }
            Rule::PanicPolicy => {
                "library code returns Result; if this is a real invariant, document it with \
                 `// simlint::allow(panic-policy): <reason>`"
            }
            Rule::FaultRng => {
                "derive fault randomness as a named substream of the plan \
                 (`plan.stream(tag)`) minted once at fault-state construction; only \
                 simkit::fault may construct FaultRng directly, and only the \
                 fault-stream boundary (simkit::fault, raidsim sim/mod.rs) may mint \
                 streams (latent_stream, splitmix64)"
            }
            Rule::SchedulerSeam => {
                "dispatch through the layer traits: implement DiskScheduler in \
                 crates/diskmodel, and match Organization:: only in raidsim's config, \
                 report, or mapping modules (planner construction goes through the \
                 label-keyed PLANNER_REGISTRY; add an OrgPlanner method instead)"
            }
            Rule::ParSafety => {
                "group partitions must not share mutable state: synchronization primitives \
                 (Mutex/RwLock/Condvar, atomics, mpsc, static mut, unsafe impl, \
                 thread::spawn/scope) live only in raidsim's sim/par/ merge layer and \
                 the sweep.rs work-stealing pool; everything else communicates through \
                 the replayed journals"
            }
            Rule::UnitSafety => {
                "adding or subtracting a time quantity and a block/byte/count quantity is a \
                 unit error even though both are plain integers; convert through the \
                 simkit::time helpers (or rename the identifier if its suffix lies)"
            }
            Rule::JournalEffect => {
                "functions reachable from partition execution must route stat pushes, \
                 inflight changes, and destage-tick scheduling through the journal sinks \
                 declared in simlint.toml ([journal-effect] sinks); a direct mutation \
                 bypasses the ParNote/ExecFrame journal and breaks byte-identical replay"
            }
            Rule::LayerBoundary => {
                "this call goes against the declared layer flow (admission → planning → \
                 dispatch → faults → reporting in simlint.toml [layer-boundary]); route it \
                 through the downstream layer's interface, or waive the accepted feedback \
                 edge in simlint.baseline.toml with a reason"
            }
            Rule::FleetBoundary => {
                "virtual arrays exchange state only through returned outcomes merged in \
                 VA index order; shared-ownership and interior-mutability types \
                 (Rc/Arc/RefCell/Cell/UnsafeCell) in the fleet layer outside fleet/run.rs \
                 would let cross-VA state bypass that merge and break the byte-identical \
                 serial/parallel guarantee"
            }
            Rule::MalformedAllow => {
                "write `// simlint::allow(<rule>): <reason>` — the rule must exist and the \
                 reason must be non-empty"
            }
            Rule::UnusedAllow => "this annotation suppresses nothing; remove it",
        }
    }

    /// Default enforcement level before CLI overrides.
    pub fn default_level(self) -> Level {
        match self {
            Rule::UnusedAllow => Level::Warn,
            _ => Level::Deny,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Allow,
    Warn,
    Deny,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// Per-run configuration: enforcement level per rule.
#[derive(Clone, Debug)]
pub struct Config {
    levels: BTreeMap<Rule, Level>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            levels: RULES.iter().map(|&r| (r, r.default_level())).collect(),
        }
    }
}

impl Config {
    pub fn level(&self, rule: Rule) -> Level {
        self.levels[&rule]
    }

    pub fn set_level(&mut self, rule: Rule, level: Level) {
        self.levels.insert(rule, level);
    }

    pub fn set_all(&mut self, level: Level) {
        for r in RULES {
            self.levels.insert(r, level);
        }
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub rule: Rule,
    pub level: Level,
    pub file: String,
    /// 1-based.
    pub line: u32,
    /// 1-based.
    pub col: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {}:{}:{}",
            self.level.name(),
            self.rule.name(),
            self.file,
            self.line,
            self.col
        )?;
        writeln!(f, "  |  {}", self.snippet)?;
        write!(f, "  = help: {}", self.rule.hint())
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a JSON array (machine-readable `--format json`).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"level\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\
             \"snippet\":\"{}\",\"hint\":\"{}\"}}",
            d.rule.name(),
            d.level.name(),
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(&d.snippet),
            json_escape(d.rule.hint())
        ));
    }
    out.push_str("\n]");
    out
}

// ---------------------------------------------------------------------------
// #[cfg(test)] / #[test] item skipping
// ---------------------------------------------------------------------------

use lexer::Token;

/// Token-index ranges covered by test-only items (`#[cfg(test)] mod … { }`,
/// `#[test] fn … { }`), which every rule exempts.
pub(crate) fn test_item_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(attr_end) = matching(tokens, i + 1, '[', ']') {
                if attr_is_test(&tokens[i + 2..attr_end]) {
                    let end = skip_item(tokens, attr_end + 1);
                    ranges.push((i, end));
                    i = end;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Does the attribute body mark a test item? Matches `test`,
/// `cfg(test)`, and `cfg(any(test, …))`.
fn attr_is_test(body: &[Token]) -> bool {
    let first = body.first().and_then(|t| t.ident());
    let mentions_test = body.iter().any(|t| t.ident() == Some("test"));
    matches!(first, Some("test") | Some("cfg")) && mentions_test
}

/// Find the index of the punct closing the group opened at `open_idx`.
pub(crate) fn matching(
    tokens: &[Token],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Starting just past a test attribute, consume any further attributes and
/// then one item (to its closing `}` or terminating `;`); returns the index
/// one past the item.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Subsequent attributes (e.g. `#[cfg(test)] #[allow(…)] mod t { }`).
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching(tokens, i + 1, '[', ']') {
            Some(end) => i = end + 1,
            None => return tokens.len(),
        }
    }
    // The item header: ends at `;` (e.g. `mod tests;`) or at its body brace.
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(';') {
            return i + 1;
        } else if depth == 0 && t.is_punct('{') {
            return matching(tokens, i, '{', '}').map_or(tokens.len(), |e| e + 1);
        }
        i += 1;
    }
    tokens.len()
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FileClass {
    /// Library source: every rule applies.
    Library,
    /// Binary / bench / example / build script: panic-policy exempt.
    Executable,
    /// Test source: all rules exempt.
    Test,
}

pub(crate) fn classify(path: &str) -> FileClass {
    let norm = path.replace('\\', "/");
    let file = norm.rsplit('/').next().unwrap_or(&norm);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let in_dir = |name: &str| norm.split('/').rev().skip(1).any(|c| c == name);
    if in_dir("tests") || file == "tests.rs" || stem.ends_with("_test") || stem.ends_with("_tests")
    {
        return FileClass::Test;
    }
    if in_dir("bin")
        || in_dir("benches")
        || in_dir("examples")
        || file == "main.rs"
        || file == "build.rs"
    {
        return FileClass::Executable;
    }
    FileClass::Library
}

/// Is this file the sanctioned unit-conversion boundary (`simkit::time`)?
fn is_time_boundary(path: &str) -> bool {
    path.replace('\\', "/").ends_with("simkit/src/time.rs")
}

/// Is this file the sanctioned fault-RNG constructor site (`simkit::fault`)?
fn is_fault_boundary(path: &str) -> bool {
    path.replace('\\', "/").ends_with("simkit/src/fault.rs")
}

/// May this file *mint* fault-randomness streams (`latent_stream`, the
/// `splitmix64` mixer)? `simkit::fault` defines the machinery; `raidsim`'s
/// `sim/mod.rs` builds the per-disk streams once at fault-state
/// construction. The scrub / sparing / rebuild machinery (`sim/faults.rs`
/// and friends) must draw from streams minted there — re-minting mid-run
/// replays the same draws and breaks the serial/partitioned identity.
fn is_fault_stream_boundary(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm.ends_with("simkit/src/fault.rs") || norm.ends_with("raidsim/src/sim/mod.rs")
}

/// May this file dispatch on `Organization::` variants? The planner seam
/// confines organization knowledge to configuration, report labeling, and
/// the block-address maps. The planning layer itself is no longer exempt:
/// since planner construction moved behind the label-keyed constructor
/// registry, `sim/planning.rs` holds no dispatch match, and a regression
/// that reintroduces one is flagged like any other file.
fn is_org_boundary(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm.ends_with("raidsim/src/config.rs")
        || norm.ends_with("raidsim/src/report.rs")
        || norm.contains("raidsim/src/mapping")
        // Fleet configuration constructs Organization values the same way
        // SimConfig does: the built-in fleets (config.rs) and the spec
        // parser (spec.rs) are configuration, not dispatch.
        || norm.ends_with("raidsim/src/fleet/config.rs")
        || norm.ends_with("raidsim/src/fleet/spec.rs")
}

/// Is this file inside `diskmodel`, the only crate that may implement
/// [`DiskScheduler`]?
fn is_scheduler_boundary(path: &str) -> bool {
    path.replace('\\', "/").contains("diskmodel/src")
}

/// May this file own cross-thread shared state? The partition/merge layer
/// (`raidsim::sim::par`, a module directory since the streaming-merge
/// split), the sweep work-stealing pool, and the fleet runner (which
/// work-steals whole virtual arrays) are the only sanctioned homes of
/// synchronization primitives in sim-core.
fn is_par_boundary(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm.ends_with("raidsim/src/sim/par.rs")
        || norm.contains("raidsim/src/sim/par/")
        || norm.ends_with("raidsim/src/sweep.rs")
        || norm.ends_with("raidsim/src/fleet/run.rs")
}

/// Is this a fleet-layer file *other than* the runner? `fleet/run.rs` is the
/// one place allowed to hold cross-VA machinery (it is also a par boundary);
/// the rest of the fleet layer — config, alloc, report, spec — must stay
/// plain owned data, so shared-ownership and interior-mutability types are
/// flagged there ([`Rule::FleetBoundary`]).
fn is_fleet_interior(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm.contains("raidsim/src/fleet/") && !norm.ends_with("raidsim/src/fleet/run.rs")
}

// ---------------------------------------------------------------------------
// Lint profiles & per-file analysis units
// ---------------------------------------------------------------------------

/// Which rule set a file is held to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Sim-core sources: every rule.
    Strict,
    /// `tests/` and `crates/bench`: driver code may use wall clocks and
    /// unwraps freely, but files that *pin determinism hashes* (detected
    /// by the `[relaxed] hash_pin_markers` identifiers, e.g. `fnv1a`)
    /// still must not let hash-collection nondeterminism or non-test
    /// panics near the pinned values.
    Relaxed,
}

/// One lexed source file plus everything the passes need to know about it.
pub(crate) struct FileUnit {
    pub(crate) display: String,
    pub(crate) src: String,
    pub(crate) lexed: lexer::Lexed,
    pub(crate) class: FileClass,
    pub(crate) profile: Profile,
    pub(crate) test_ranges: Vec<(usize, usize)>,
}

impl FileUnit {
    pub(crate) fn new(display: String, src: String, profile: Profile) -> FileUnit {
        let lexed = lexer::lex(&src);
        let class = classify(&display);
        let test_ranges = test_item_ranges(&lexed.tokens);
        FileUnit {
            display,
            src,
            lexed,
            class,
            profile,
            test_ranges,
        }
    }

    pub(crate) fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Does the file pin determinism hashes (relaxed-profile marker)?
    fn has_marker(&self, markers: &[String]) -> bool {
        self.lexed.tokens.iter().any(|t| {
            t.ident()
                .is_some_and(|id| markers.iter().any(|m| id.contains(m.as_str())))
        })
    }
}

/// Under this file's profile, does `rule` apply at all? (Orthogonal to the
/// per-rule [`Config`] levels, which the CLI controls.)
fn rule_in_profile(rule: Rule, profile: Profile) -> bool {
    match profile {
        Profile::Strict => true,
        Profile::Relaxed => matches!(rule, Rule::HashCollection | Rule::PanicPolicy),
    }
}

// ---------------------------------------------------------------------------
// Per-file rule matching
// ---------------------------------------------------------------------------

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Does `ident` name a time or duration? Matched per `_`-separated segment
/// so that e.g. `instant` or `snow` never false-positive.
fn is_time_ident(ident: &str) -> bool {
    ident.split('_').any(|seg| {
        let seg = seg.to_ascii_lowercase();
        matches!(
            seg.as_str(),
            "ns" | "ms" | "us" | "now" | "tick" | "ticks" | "deadline"
        ) || seg.contains("time")
    })
}

fn env_read(name: &str) -> bool {
    matches!(name, "var" | "var_os" | "vars" | "vars_os")
}

/// Unit class of an identifier for the `unit-safety` rule, decided by its
/// `_`-separated segments against the configured unit vocabularies.
/// Ambiguous names (segments from both classes) classify as neither.
#[derive(Clone, Copy, PartialEq, Eq)]
enum UnitClass {
    Time,
    Quantity,
}

fn unit_class(ident: &str, ws: &WsConfig) -> Option<UnitClass> {
    let mut time = false;
    let mut qty = false;
    for seg in ident.split('_') {
        let seg = seg.to_ascii_lowercase();
        if ws.units.time_units.contains(&seg) || seg.contains("time") {
            time = true;
        }
        if ws.units.quantity_units.contains(&seg) {
            qty = true;
        }
    }
    match (time, qty) {
        (true, false) => Some(UnitClass::Time),
        (false, true) => Some(UnitClass::Quantity),
        _ => None,
    }
}

/// A rule match before directive suppression: (rule, line, col).
pub(crate) type RawMatch = (Rule, u32, u32);

/// Run every per-file rule over one unit. Under the relaxed profile only
/// hash-collection and panic-policy apply, and only in files that pin
/// determinism hashes; hash-collection stays live even inside `#[test]`
/// items there (a nondeterministic collection feeding a pinned hash is the
/// exact bug the profile exists to catch), while panic-policy keeps the
/// usual test-item exemption.
pub(crate) fn per_file_matches(unit: &FileUnit, ws: &WsConfig) -> Vec<RawMatch> {
    let relaxed = unit.profile == Profile::Relaxed;
    let class = if relaxed {
        if unit.has_marker(&ws.hash_pin_markers) {
            FileClass::Library
        } else {
            return Vec::new();
        }
    } else {
        unit.class
    };
    if class == FileClass::Test {
        return Vec::new();
    }

    let path = unit.display.as_str();
    let toks = &unit.lexed.tokens;
    let mut raw: Vec<RawMatch> = Vec::new();

    for i in 0..toks.len() {
        let in_test = unit.in_test(i);
        if in_test && !relaxed {
            continue;
        }
        let mut add = |rule: Rule, line: u32, col: u32| {
            if relaxed && !rule_in_profile(rule, Profile::Relaxed) {
                return;
            }
            if relaxed && in_test && rule != Rule::HashCollection {
                return;
            }
            raw.push((rule, line, col));
        };
        let path_sep = |j: usize| {
            toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        };
        match toks[i].ident() {
            Some("HashMap" | "HashSet") => {
                add(Rule::HashCollection, toks[i].line, toks[i].col);
            }
            Some("thread_rng") => {
                add(Rule::AmbientNondet, toks[i].line, toks[i].col);
            }
            Some("Instant" | "SystemTime")
                if path_sep(i + 1) && toks.get(i + 3).and_then(|t| t.ident()) == Some("now") =>
            {
                add(Rule::AmbientNondet, toks[i].line, toks[i].col);
            }
            Some("rand")
                if path_sep(i + 1) && toks.get(i + 3).and_then(|t| t.ident()) == Some("random") =>
            {
                add(Rule::AmbientNondet, toks[i].line, toks[i].col);
            }
            Some("env")
                if path_sep(i + 1)
                    && toks
                        .get(i + 3)
                        .and_then(|t| t.ident())
                        .is_some_and(env_read) =>
            {
                add(Rule::AmbientNondet, toks[i].line, toks[i].col);
            }
            Some("FaultRng")
                if !is_fault_boundary(path)
                    && path_sep(i + 1)
                    && toks.get(i + 3).and_then(|t| t.ident()) == Some("new") =>
            {
                add(Rule::FaultRng, toks[i].line, toks[i].col);
            }
            // Stream *minting* is construction too: deriving a substream
            // (`plan.latent_stream(gdisk)`) or mixing a seed by hand
            // (`splitmix64`) is confined to the fault-stream boundary, so
            // the scrub/sparing/rebuild modules can only draw from streams
            // built once at fault-state construction.
            Some("latent_stream" | "splitmix64")
                if !is_fault_stream_boundary(path)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                add(Rule::FaultRng, toks[i].line, toks[i].col);
            }
            Some("Organization") if !is_org_boundary(path) && path_sep(i + 1) => {
                add(Rule::SchedulerSeam, toks[i].line, toks[i].col);
            }
            Some("Mutex" | "RwLock" | "Condvar" | "mpsc") if !is_par_boundary(path) => {
                add(Rule::ParSafety, toks[i].line, toks[i].col);
            }
            Some("Rc" | "Arc" | "RefCell" | "Cell" | "UnsafeCell") if is_fleet_interior(path) => {
                add(Rule::FleetBoundary, toks[i].line, toks[i].col);
            }
            Some(id) if !is_par_boundary(path) && id.starts_with("Atomic") => {
                add(Rule::ParSafety, toks[i].line, toks[i].col);
            }
            Some("static")
                if !is_par_boundary(path)
                    && toks.get(i + 1).and_then(|t| t.ident()) == Some("mut") =>
            {
                add(Rule::ParSafety, toks[i].line, toks[i].col);
            }
            Some("unsafe")
                if !is_par_boundary(path)
                    && toks.get(i + 1).and_then(|t| t.ident()) == Some("impl") =>
            {
                add(Rule::ParSafety, toks[i].line, toks[i].col);
            }
            Some("thread")
                if !is_par_boundary(path)
                    && path_sep(i + 1)
                    && matches!(
                        toks.get(i + 3).and_then(|t| t.ident()),
                        Some("spawn" | "scope")
                    ) =>
            {
                add(Rule::ParSafety, toks[i].line, toks[i].col);
            }
            Some("DiskScheduler")
                if !is_scheduler_boundary(path)
                    && toks.get(i + 1).and_then(|t| t.ident()) == Some("for") =>
            {
                add(Rule::SchedulerSeam, toks[i].line, toks[i].col);
            }
            Some(id)
                if !is_time_boundary(path)
                    && is_time_ident(id)
                    && toks.get(i + 1).and_then(|t| t.ident()) == Some("as")
                    && toks
                        .get(i + 2)
                        .and_then(|t| t.ident())
                        .is_some_and(|t| NUMERIC_TYPES.contains(&t)) =>
            {
                add(Rule::RawTimeCast, toks[i].line, toks[i].col);
            }
            _ => {}
        }
        // panic-policy: `.unwrap()` / `.expect(` in library code.
        if class == FileClass::Library
            && toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .is_some_and(|id| id == "unwrap" || id == "expect")
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            add(Rule::PanicPolicy, toks[i + 1].line, toks[i + 1].col);
        }
        // unit-safety: `time ± quantity` (or `±=`) outside the unit boundary.
        if !ws.units.boundary.iter().any(|b| path.ends_with(b.as_str())) {
            if let Some((line, col)) = unit_mix_at(toks, i, ws) {
                add(Rule::UnitSafety, line, col);
            }
        }
    }
    raw
}

/// Detect `X + Y` / `X - Y` / `X += Y` / `X -= Y` at token `i` (the left
/// operand) where one side names a time and the other a quantity. The right
/// operand may be a `a.b.c` field chain (classified by its final segment)
/// or a call (classified by the callee's name). A side followed by `*`/`/`
/// — or preceded by one, for the left — is skipped: the product's unit is
/// not the identifier's (`ms_per_block * blocks` is a legitimate mix).
fn unit_mix_at(toks: &[Token], i: usize, ws: &WsConfig) -> Option<(u32, u32)> {
    let x = toks[i].ident()?;
    let op = toks.get(i + 1)?;
    if !(op.is_punct('+') || op.is_punct('-')) {
        return None;
    }
    // `a -> b`, `a ++`-style sequences, and `a - -b` all bail here.
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct('=')) {
        j += 1;
    }
    // Left side must not be the tail of a product/quotient.
    if i > 0 && (toks[i - 1].is_punct('*') || toks[i - 1].is_punct('/')) {
        return None;
    }
    // Right side: walk a field chain `self.a.b`, ending on its last ident.
    toks.get(j)?.ident()?;
    while toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(j + 2).is_some_and(|t| t.ident().is_some())
    {
        j += 2;
    }
    let y = toks[j].ident()?;
    // What follows the right operand? Step over a call's argument list
    // first so `t_ms + f(a * b)` inspects the token after `)`.
    let mut after = j + 1;
    if toks.get(after).is_some_and(|t| t.is_punct('(')) {
        after = matching(toks, after, '(', ')')? + 1;
    }
    if toks
        .get(after)
        .is_some_and(|t| t.is_punct('*') || t.is_punct('/'))
    {
        return None;
    }
    let (xu, yu) = (unit_class(x, ws)?, unit_class(y, ws)?);
    if xu != yu {
        Some((toks[i].line, toks[i].col))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Directive application & meta-rules
// ---------------------------------------------------------------------------

/// Apply allow directives to the raw matches of one file, then run the
/// meta-rules over the directives themselves. Consumes the unit's
/// directive `used` state, so call exactly once per file per run.
pub(crate) fn finish_file(
    unit: &mut FileUnit,
    raw: Vec<RawMatch>,
    cfg: &Config,
    ws: &WsConfig,
) -> Vec<Diagnostic> {
    let lines: Vec<&str> = unit.src.lines().collect();
    let path = unit.display.as_str();
    let mut diags = Vec::new();

    // A directive suppresses matching diagnostics on its own line and the
    // line directly below.
    for (rule, line, col) in raw {
        let mut suppressed = false;
        for d in unit.lexed.directives.iter_mut() {
            if d.rule == Some(rule) && d.has_reason && (d.line == line || d.line + 1 == line) {
                d.used = true;
                suppressed = true;
            }
        }
        if !suppressed && cfg.level(rule) != Level::Allow {
            diags.push(make_diag(rule, cfg, path, line, col, &lines));
        }
    }

    // Meta-rules over the directives. `unused-allow` only fires for rules
    // that are actually enforced here (by both CLI level and profile) —
    // a directive cannot be "stale" for a rule nobody is checking. Under
    // the relaxed profile with no hash-pin marker, nothing is enforced.
    let enforced_profile = match unit.profile {
        Profile::Strict => Some(Profile::Strict),
        Profile::Relaxed if unit.has_marker(&ws.hash_pin_markers) => Some(Profile::Relaxed),
        Profile::Relaxed => None,
    };
    for d in &unit.lexed.directives {
        match d.rule {
            Some(rule) if d.has_reason => {
                let enforced = enforced_profile.is_some_and(|p| rule_in_profile(rule, p));
                if !d.used
                    && enforced
                    && cfg.level(rule) != Level::Allow
                    && cfg.level(Rule::UnusedAllow) != Level::Allow
                {
                    diags.push(make_diag(
                        Rule::UnusedAllow,
                        cfg,
                        path,
                        d.line,
                        d.col,
                        &lines,
                    ));
                }
            }
            _ => {
                if cfg.level(Rule::MalformedAllow) != Level::Allow {
                    diags.push(make_diag(
                        Rule::MalformedAllow,
                        cfg,
                        path,
                        d.line,
                        d.col,
                        &lines,
                    ));
                }
            }
        }
    }

    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

fn make_diag(
    rule: Rule,
    cfg: &Config,
    path: &str,
    line: u32,
    col: u32,
    lines: &[&str],
) -> Diagnostic {
    Diagnostic {
        rule,
        level: cfg.level(rule),
        file: path.to_string(),
        line,
        col,
        snippet: lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string()),
    }
}

// ---------------------------------------------------------------------------
// Public per-file entry points
// ---------------------------------------------------------------------------

/// Analyze one source file (given as a string, so unit tests can feed
/// inline fixtures) and return every diagnostic whose rule is not allowed.
/// Runs the per-file rules under the strict profile; the workspace rules
/// (`journal-effect`, `layer-boundary`) need the whole tree — see
/// [`analyze_workspace`].
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let ws = WsConfig::default();
    let mut unit = FileUnit::new(path.to_string(), src.to_string(), Profile::Strict);
    let raw = per_file_matches(&unit, &ws);
    finish_file(&mut unit, raw, cfg, &ws)
}

// ---------------------------------------------------------------------------
// Directory walking
// ---------------------------------------------------------------------------

/// Collect every `.rs` file under `root`, sorted for deterministic output.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if root.is_file() {
        out.push(root.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze every `.rs` file under each root with the per-file rules under
/// the strict profile. Paths in diagnostics are reported relative to
/// `strip_prefix` when possible. (Explicit-paths CLI mode; the default
/// no-paths invocation uses [`analyze_workspace`] instead, which adds the
/// cross-file rules and the relaxed surface.)
pub fn analyze_paths(
    roots: &[PathBuf],
    strip_prefix: &Path,
    cfg: &Config,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for root in roots {
        for file in collect_rs_files(root)? {
            let display = file
                .strip_prefix(strip_prefix)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&file)?;
            diags.extend(analyze_source(&display, &src, cfg));
        }
    }
    Ok(diags)
}

/// Process exit code for a finished run: nonzero iff anything denied.
pub fn exit_code(diags: &[Diagnostic]) -> i32 {
    i32::from(diags.iter().any(|d| d.level == Level::Deny))
}

// ---------------------------------------------------------------------------
// Fixture tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        analyze_source("crates/simkit/src/lib.rs", src, &Config::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn flags_hash_collections_with_position() {
        let d = lint("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n");
        assert_eq!(
            rules_of(&d),
            vec![Rule::HashCollection, Rule::HashCollection]
        );
        assert_eq!((d[0].line, d[0].col), (1, 23));
        assert_eq!(d[0].snippet, "use std::collections::HashMap;");
        assert_eq!(d[1].line, 2);
        assert_eq!(exit_code(&d), 1);
    }

    #[test]
    fn flags_ambient_nondeterminism() {
        let d = lint(
            "fn f() {\n    let t = Instant::now();\n    let u = std::time::SystemTime::now();\n    \
             let r = rand::thread_rng();\n    let x: f64 = rand::random();\n    \
             let e = std::env::var(\"SEED\");\n}\n",
        );
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|d| d.rule == Rule::AmbientNondet));
        assert_eq!(d[0].line, 2);
        assert_eq!(d[4].line, 6);
    }

    #[test]
    fn flags_raw_time_casts_but_not_elsewhere_idents() {
        let d = lint(
            "fn f(busy_ns: u64, n: u64) -> f64 {\n    let a = busy_ns as f64;\n    \
             let b = n as f64;\n    let snow = n; let c = snow as f64;\n    a + b + c\n}\n",
        );
        assert_eq!(rules_of(&d), vec![Rule::RawTimeCast]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn time_boundary_file_is_exempt_from_casts() {
        let d = analyze_source(
            "crates/simkit/src/time.rs",
            "pub fn ns_to_ms(ns: u64) -> f64 { ns as f64 / 1e6 }\nfn g(t_ns: u64) { t_ns as f64; }\n",
            &Config::default(),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_unwrap_and_expect_in_library_code_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"y\") }\n";
        let d = lint(src);
        assert_eq!(rules_of(&d), vec![Rule::PanicPolicy, Rule::PanicPolicy]);
        // Same source in a binary or a test file: exempt.
        for path in [
            "crates/bench/src/bin/figures.rs",
            "crates/raidsim/src/sim/tests.rs",
            "tests/end_to_end.rs",
        ] {
            assert!(analyze_source(path, src, &Config::default()).is_empty());
        }
    }

    #[test]
    fn flags_fault_rng_construction_outside_simkit_fault() {
        let src = "fn f() { let r = FaultRng::new(7); }\n";
        let d = lint(src);
        assert_eq!(rules_of(&d), vec![Rule::FaultRng]);
        assert_eq!(d[0].level, Level::Deny);
        // The fault module itself is the sanctioned constructor site.
        let d = analyze_source("crates/simkit/src/fault.rs", src, &Config::default());
        assert!(d.is_empty(), "{d:?}");
        // The fully qualified form is caught too.
        let d = lint("fn f() { let r = simkit::fault::FaultRng::new(7); }\n");
        assert_eq!(rules_of(&d), vec![Rule::FaultRng]);
        // Deriving a named substream from the plan is the sanctioned way.
        let d = lint("fn f(p: &FaultPlan) { let _r = p.stream(3); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_stream_minting_outside_the_fault_stream_boundary() {
        // Scrub/sparing/rebuild code must not re-mint a latent stream
        // mid-run — it would replay the construction-time draws.
        let src = "fn f(p: &FaultPlan) { let _r = p.latent_stream(3); }\n";
        let d = analyze_source("crates/raidsim/src/sim/faults.rs", src, &Config::default());
        assert_eq!(rules_of(&d), vec![Rule::FaultRng]);
        // Nor mix seeds by hand instead of going through the plan.
        let d = analyze_source(
            "crates/raidsim/src/sim/faults.rs",
            "fn f(s: u64) -> u64 { splitmix64(s ^ 3) }\n",
            &Config::default(),
        );
        assert_eq!(rules_of(&d), vec![Rule::FaultRng]);
        // The boundary files build the streams once, legitimately.
        for path in [
            "crates/simkit/src/fault.rs",
            "crates/raidsim/src/sim/mod.rs",
        ] {
            let d = analyze_source(path, src, &Config::default());
            assert!(d.is_empty(), "{path}: {d:?}");
        }
        // Mentioning the name without a call (docs, a field) is fine.
        let d = lint("fn f() { let latent_stream = 3; let _ = latent_stream; }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_organization_dispatch_outside_planner_modules() {
        let src = "fn f(o: Organization) -> bool { matches!(o, Organization::Base) }\n";
        let d = analyze_source("crates/raidsim/src/sim/mod.rs", src, &Config::default());
        assert_eq!(rules_of(&d), vec![Rule::SchedulerSeam]);
        assert_eq!(d[0].level, Level::Deny);
        // The sanctioned homes of organization knowledge are exempt.
        for path in [
            "crates/raidsim/src/config.rs",
            "crates/raidsim/src/report.rs",
            "crates/raidsim/src/mapping/mod.rs",
            "crates/raidsim/src/mapping/degraded.rs",
        ] {
            assert!(
                analyze_source(path, src, &Config::default()).is_empty(),
                "{path} should be allowed to dispatch on Organization::"
            );
        }
        // The planning layer lost its exemption when construction moved
        // behind the label-keyed registry: a reintroduced match is flagged.
        let d = analyze_source(
            "crates/raidsim/src/sim/planning.rs",
            src,
            &Config::default(),
        );
        assert_eq!(rules_of(&d), vec![Rule::SchedulerSeam]);
        // Naming the type (not a variant) is fine anywhere.
        let d = analyze_source(
            "crates/raidsim/src/sim/mod.rs",
            "use crate::config::Organization;\nfn g(_o: Organization) {}\n",
            &Config::default(),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_disk_scheduler_impls_outside_diskmodel() {
        let src = "struct MyQ;\nimpl DiskScheduler for MyQ {}\n";
        let d = analyze_source(
            "crates/raidsim/src/sim/dispatch.rs",
            src,
            &Config::default(),
        );
        assert_eq!(rules_of(&d), vec![Rule::SchedulerSeam]);
        // diskmodel is the sanctioned implementation site.
        let d = analyze_source("crates/diskmodel/src/scheduler.rs", src, &Config::default());
        assert!(d.is_empty(), "{d:?}");
        // Using the trait (imports, bounds, method calls) is fine anywhere.
        let d = analyze_source(
            "crates/raidsim/src/sim/dispatch.rs",
            "use diskmodel::DiskScheduler;\nfn g<T: DiskScheduler>(q: &T) -> usize { q.len() }\n",
            &Config::default(),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_shared_state_outside_the_partition_layer() {
        let src = "use std::sync::{Mutex, mpsc};\nuse std::sync::atomic::AtomicU64;\n\
                   static mut COUNT: u64 = 0;\nfn f() { std::thread::spawn(|| {}); }\n\
                   struct S;\nunsafe impl Sync for S {}\n";
        let d = analyze_source(
            "crates/raidsim/src/sim/dispatch.rs",
            src,
            &Config::default(),
        );
        assert_eq!(d.len(), 6, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::ParSafety));
        // The partition/merge layer and the sweep pool are the sanctioned
        // homes of synchronization.
        for path in [
            "crates/raidsim/src/sim/par.rs",
            "crates/raidsim/src/sim/par/mod.rs",
            "crates/raidsim/src/sim/par/journal.rs",
            "crates/raidsim/src/sim/par/merge.rs",
            "crates/raidsim/src/sweep.rs",
        ] {
            assert!(
                analyze_source(path, src, &Config::default()).is_empty(),
                "{path} must be allowed to synchronize"
            );
        }
        // `&'static mut` never fires: the lifetime is not the keyword.
        let d = lint("fn g(x: &'static mut u32) -> u32 { *x }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let d = lint(
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    \
             #[test]\n    fn t() { Some(1).unwrap(); let _ = Instant::now(); }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // …including `#[test] fn` outside a module and `mod tests;` forms.
        let d = lint("#[test]\nfn t() { Some(1).unwrap(); }\n#[cfg(test)]\nmod tests;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn code_after_test_module_is_still_checked() {
        let d = lint(
            "#[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n\
             pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(rules_of(&d), vec![Rule::PanicPolicy]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let d = lint(
            "// simlint::allow(panic-policy): slab indices are always live\n\
             pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint(
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // simlint::allow(panic-policy): ok\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let d = lint(
            "// simlint::allow(panic-policy)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert_eq!(rules_of(&d), vec![Rule::MalformedAllow, Rule::PanicPolicy]);
    }

    #[test]
    fn allow_of_unknown_rule_is_malformed() {
        let d = lint("// simlint::allow(no-such-rule): reason\npub fn f() {}\n");
        assert_eq!(rules_of(&d), vec![Rule::MalformedAllow]);
    }

    #[test]
    fn unused_allow_is_reported() {
        let d = lint("// simlint::allow(hash-collection): stale excuse\npub fn f() {}\n");
        assert_eq!(rules_of(&d), vec![Rule::UnusedAllow]);
        assert_eq!(d[0].level, Level::Warn);
        assert_eq!(exit_code(&d), 0, "warnings alone never fail the run");
    }

    #[test]
    fn strings_comments_and_lifetimes_never_fire() {
        let d = lint(
            "/* HashMap in /* nested */ comments */\n\
             pub fn f<'a>(s: &'a str) -> String {\n    \
             let c = 'h'; let esc = '\\'';\n    \
             let x = \"HashMap Instant::now .unwrap()\";\n    \
             let y = r#\"thread_rng \"quoted\" SystemTime::now\"#;\n    \
             format!(\"{x}{y}{c}{esc}\")\n}\n// HashMap mentioned in prose is fine\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn levels_and_json_output() {
        let mut cfg = Config::default();
        cfg.set_all(Level::Warn);
        let d = analyze_source(
            "crates/simkit/src/lib.rs",
            "use std::collections::HashMap;\n",
            &cfg,
        );
        assert_eq!(d[0].level, Level::Warn);
        assert_eq!(exit_code(&d), 0);
        cfg.set_level(Rule::HashCollection, Level::Deny);
        let d = analyze_source(
            "crates/simkit/src/lib.rs",
            "use std::collections::HashMap;\n",
            &cfg,
        );
        assert_eq!(exit_code(&d), 1);

        let json = to_json(&d);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"rule\":\"hash-collection\""));
        assert!(json.contains("\"line\":1"));
        // The snippet is embedded with quotes escaped.
        assert!(json.contains("use std::collections::HashMap;"));
    }

    #[test]
    fn diagnostic_display_has_file_line_col_and_hint() {
        let d = lint("use std::collections::HashSet;\n");
        let text = d[0].to_string();
        assert!(text.contains("deny[hash-collection]"), "{text}");
        assert!(text.contains("crates/simkit/src/lib.rs:1:23"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }

    // --- unit-safety ------------------------------------------------------

    #[test]
    fn unit_safety_flags_time_quantity_mixes() {
        let d = lint("fn f(seek_ms: f64, nblocks: f64) -> f64 { seek_ms + nblocks }\n");
        assert_eq!(rules_of(&d), vec![Rule::UnitSafety]);
        // Both directions, and the compound-assignment forms.
        let d = lint("fn f(mut total_blocks: u64, xfer_ns: u64) { total_blocks += xfer_ns; }\n");
        assert_eq!(rules_of(&d), vec![Rule::UnitSafety]);
        let d = lint("fn f(t_ns: u64, len: u64) -> u64 { t_ns - len }\n");
        assert_eq!(rules_of(&d), vec![Rule::UnitSafety]);
        // Field chains classify by their final segment.
        let d = lint("fn f(s: &S) -> u64 { s.op.start_ns + s.req.nblocks }\n");
        assert_eq!(rules_of(&d), vec![Rule::UnitSafety]);
    }

    #[test]
    fn unit_safety_allows_homogeneous_and_scaled_arithmetic() {
        // Same-unit arithmetic is fine.
        let d = lint("fn f(seek_ms: f64, xfer_ms: f64) -> f64 { seek_ms + xfer_ms }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = lint("fn f(a_blocks: u64, b_blocks: u64) -> u64 { a_blocks + b_blocks }\n");
        assert!(d.is_empty(), "{d:?}");
        // Multiplication/division legitimately crosses units…
        let d = lint("fn f(ms_per_block: f64, blocks: f64) -> f64 { ms_per_block * blocks }\n");
        assert!(d.is_empty(), "{d:?}");
        // …including as an operand of +: the product's unit is time again.
        let d = lint(
            "fn f(seek_ms: f64, blocks: f64, per_ms: f64) -> f64 { seek_ms + blocks * per_ms }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        let d = lint(
            "fn f(seek_ms: f64, blocks: f64, per_ms: f64) -> f64 { blocks * per_ms + seek_ms }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // Unknown identifiers never classify.
        let d = lint("fn f(a: u64, dur_ms: u64) -> u64 { dur_ms + a }\n");
        assert!(d.is_empty(), "{d:?}");
        // The unit boundary module is exempt.
        let d = analyze_source(
            "crates/simkit/src/time.rs",
            "pub fn at(t_ms: f64, blocks: f64) -> f64 { t_ms + blocks }\n",
            &Config::default(),
        );
        assert!(d.is_empty(), "{d:?}");
        // Ambiguous names (both vocabularies) classify as neither.
        let d = lint("fn f(block_time_ms: u64, blocks: u64) -> u64 { block_time_ms + blocks }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unit_safety_can_be_suppressed_like_any_rule() {
        let d = lint(
            "// simlint::allow(unit-safety): blocks is a pre-scaled ms contribution here\n\
             fn f(t_ms: u64, blocks: u64) -> u64 { t_ms + blocks }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    // --- relaxed profile --------------------------------------------------

    fn lint_relaxed(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = WsConfig::default();
        let mut unit = FileUnit::new(path.to_string(), src.to_string(), Profile::Relaxed);
        let raw = per_file_matches(&unit, &ws);
        finish_file(&mut unit, raw, &Config::default(), &ws)
    }

    #[test]
    fn relaxed_profile_only_guards_hash_pinning_files() {
        // A driver-style test file without a hash-pin marker: anything goes.
        let noisy = "use std::collections::HashMap;\n\
                     fn helper() { let _ = Instant::now(); Some(1).unwrap(); }\n";
        assert!(lint_relaxed("tests/end_to_end.rs", noisy).is_empty());

        // The same file pinning determinism hashes: hash-collection and
        // (non-test) panic-policy come back.
        let pinning = "use std::collections::HashMap;\n\
                       fn fnv1a(bytes: &[u8]) -> u64 { 0 }\n\
                       fn helper() { let _ = Instant::now(); Some(1).unwrap(); }\n";
        let d = lint_relaxed("tests/determinism.rs", pinning);
        assert_eq!(
            rules_of(&d),
            vec![Rule::HashCollection, Rule::PanicPolicy],
            "{d:?}"
        );

        // Inside #[test] items: unwraps stay exempt, but a hash collection
        // feeding the pinned hash is still flagged.
        let in_test = "fn fnv1a(bytes: &[u8]) -> u64 { 0 }\n\
                       #[test]\nfn t() {\n    let m = HashMap::new();\n    Some(1).unwrap();\n}\n";
        let d = lint_relaxed("tests/determinism.rs", in_test);
        assert_eq!(rules_of(&d), vec![Rule::HashCollection], "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn relaxed_profile_reports_no_stale_allows_for_unenforced_rules() {
        // ambient-nondet is not enforced under the relaxed profile, so an
        // (unnecessary) directive for it must not surface as unused-allow.
        let src = "fn fnv1a() -> u64 { 0 }\n\
                   // simlint::allow(ambient-nondet): driver timestamping\n\
                   fn helper() { let _ = Instant::now(); }\n";
        let d = lint_relaxed("tests/determinism.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    // --- lexer hardening --------------------------------------------------

    #[test]
    fn directives_inside_strings_do_not_suppress() {
        // The directive text lives in a string literal, not a comment: the
        // unwrap on the next line must still be flagged.
        let d = lint(
            "pub fn f(x: Option<u32>) -> u32 {\n    \
             let _m = \"// simlint::allow(panic-policy): spoofed\";\n    x.unwrap()\n}\n",
        );
        assert_eq!(rules_of(&d), vec![Rule::PanicPolicy]);
    }

    #[test]
    fn block_comment_directives_suppress_and_are_audited() {
        let d = lint(
            "/* simlint::allow(panic-policy): checked by caller */\n\
             pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // A malformed block-comment directive is caught like a line one.
        let d = lint("/* simlint::allow(panic-policy) */\npub fn f() {}\n");
        assert_eq!(rules_of(&d), vec![Rule::MalformedAllow]);
    }

    #[test]
    fn raw_strings_with_hashes_and_comment_markers_lex_exactly() {
        // `//` and `*/` inside raw strings are content, not comments; the
        // code after them is still live and its violation is still seen.
        let d = lint(
            "pub fn f() -> u32 {\n    \
             let _p = r##\"// not a comment \"# still open\" HashMap\"##;\n    \
             let _q = r#\"/* also not */\"#;\n    Some(1).unwrap()\n}\n",
        );
        assert_eq!(rules_of(&d), vec![Rule::PanicPolicy]);
        assert_eq!(d[0].line, 4);
    }
}
