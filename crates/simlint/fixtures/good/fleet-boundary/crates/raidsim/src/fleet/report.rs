pub struct FleetTotals {
    pub events: u64,
}
