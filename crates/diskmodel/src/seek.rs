//! The paper's seek-time function and its calibration.
//!
//! Section 3.2: "To compute the seek time as a function of the seek distance,
//! we use a non-linear function of the form `a√(x−1) + b(x−1) + c`", with
//! Table 1 specifying an 11.2 ms average and a 28 ms maximal seek over 1260
//! cylinders. The paper does not give `a`, `b`, `c`; we recover them by
//! fixing the single-cylinder seek `c` (arm settle time, 2 ms by default) and
//! solving the remaining 2×2 linear system:
//!
//! * full-stroke: `a·√(C−2) + b·(C−2) + c = max_seek`
//! * expectation over uniformly random seeks, conditioned on actually
//!   moving: `a·E[√(D−1)] + b·E[D−1] + c = avg_seek`, where the seek
//!   distance `D` between two independent uniform cylinders has
//!   `P(D = d) = 2(C−d)/(C²−C)` for `d ≥ 1`.

use serde::{Deserialize, Serialize};
use simkit::time::ms_to_ns;

/// Seek-time curve `t(x) = a·√(x−1) + b·(x−1) + c` for a seek of `x ≥ 1`
/// cylinders; `t(0) = 0`. Coefficients are in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeekCurve {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl SeekCurve {
    /// Solve `a` and `b` for a disk with `cylinders` cylinders so that the
    /// expected seek time over uniformly random (moving) seeks equals
    /// `avg_seek_ms` and the full-stroke seek equals `max_seek_ms`, with the
    /// single-cylinder seek pinned at `single_cyl_ms`.
    ///
    /// Panics if the three constraints are mutually inconsistent (would
    /// require a negative `a` or `b`), which cannot happen for the Table 1
    /// values.
    pub fn calibrate(
        cylinders: u32,
        avg_seek_ms: f64,
        max_seek_ms: f64,
        single_cyl_ms: f64,
    ) -> SeekCurve {
        assert!(cylinders >= 3, "need at least 3 cylinders to calibrate");
        assert!(max_seek_ms > avg_seek_ms && avg_seek_ms > single_cyl_ms);
        let c_cyl = cylinders as u64;

        // Moments of (D−1) under P(D=d) ∝ (C−d), d = 1..C−1.
        let mut weight_sum = 0.0f64;
        let mut e_sqrt = 0.0f64;
        let mut e_lin = 0.0f64;
        for d in 1..c_cyl {
            let w = (c_cyl - d) as f64;
            weight_sum += w;
            e_sqrt += w * ((d - 1) as f64).sqrt();
            e_lin += w * (d - 1) as f64;
        }
        e_sqrt /= weight_sum;
        e_lin /= weight_sum;

        // Full-stroke terms at distance C−1.
        let f_sqrt = ((c_cyl - 2) as f64).sqrt();
        let f_lin = (c_cyl - 2) as f64;

        // Solve  [e_sqrt e_lin][a]   [avg − c]
        //        [f_sqrt f_lin][b] = [max − c]
        let rhs_avg = avg_seek_ms - single_cyl_ms;
        let rhs_max = max_seek_ms - single_cyl_ms;
        let det = e_sqrt * f_lin - e_lin * f_sqrt;
        assert!(det.abs() > 1e-9, "degenerate calibration system");
        let a = (rhs_avg * f_lin - e_lin * rhs_max) / det;
        let b = (e_sqrt * rhs_max - rhs_avg * f_sqrt) / det;
        assert!(
            a >= 0.0 && b >= 0.0,
            "inconsistent seek constraints: a={a}, b={b}"
        );
        SeekCurve {
            a,
            b,
            c: single_cyl_ms,
        }
    }

    /// Table 1 calibration: 1260 cylinders, 11.2 ms average, 28 ms maximal,
    /// 2 ms single-cylinder.
    pub fn table1() -> SeekCurve {
        SeekCurve::calibrate(1260, 11.2, 28.0, 2.0)
    }

    /// Seek time in milliseconds for a move of `distance` cylinders.
    #[inline]
    pub fn seek_ms(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let x = (distance - 1) as f64;
        self.a * x.sqrt() + self.b * x + self.c
    }

    /// Seek time in nanoseconds for a move of `distance` cylinders.
    #[inline]
    pub fn seek_ns(&self, distance: u32) -> u64 {
        if distance == 0 {
            0
        } else {
            ms_to_ns(self.seek_ms(distance))
        }
    }

    /// Mean seek time in milliseconds over uniformly random moving seeks —
    /// used by tests to verify the calibration closes.
    pub fn mean_seek_ms(&self, cylinders: u32) -> f64 {
        self.seek_moment_ms(cylinders, 1)
    }

    /// k-th moment (ms^k) of the seek time over uniformly random *moving*
    /// seeks (`P(D=d) ∝ C−d, d ≥ 1`). The second moment feeds M/G/1
    /// response-time predictions (`raidsim::analytic`).
    pub fn seek_moment_ms(&self, cylinders: u32, k: u32) -> f64 {
        let c_cyl = cylinders as u64;
        let mut weight_sum = 0.0;
        let mut acc = 0.0;
        for d in 1..c_cyl {
            let w = (c_cyl - d) as f64;
            weight_sum += w;
            acc += w * self.seek_ms(d as u32).powi(k as i32);
        }
        acc / weight_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_calibration_closes() {
        let s = SeekCurve::table1();
        assert!(s.a > 0.0 && s.b > 0.0);
        assert_eq!(s.c, 2.0);
        // Full stroke hits the 28 ms maximum.
        assert!((s.seek_ms(1259) - 28.0).abs() < 1e-9, "{}", s.seek_ms(1259));
        // Mean over random moving seeks hits the 11.2 ms average.
        assert!(
            (s.mean_seek_ms(1260) - 11.2).abs() < 1e-9,
            "{}",
            s.mean_seek_ms(1260)
        );
    }

    #[test]
    fn seek_moments_are_consistent() {
        let s = SeekCurve::table1();
        let m1 = s.seek_moment_ms(1260, 1);
        let m2 = s.seek_moment_ms(1260, 2);
        assert!((m1 - 11.2).abs() < 1e-9);
        // Var = E[X²] − E[X]² must be positive and below (max−min)²/4.
        let var = m2 - m1 * m1;
        assert!(var > 0.0);
        assert!(var < (28.0f64 - 2.0).powi(2) / 4.0);
    }

    #[test]
    fn boundary_distances() {
        let s = SeekCurve::table1();
        assert_eq!(s.seek_ms(0), 0.0);
        assert_eq!(s.seek_ns(0), 0);
        // Single-cylinder seek is exactly the settle constant.
        assert_eq!(s.seek_ms(1), 2.0);
        assert_eq!(s.seek_ns(1), 2_000_000);
    }

    #[test]
    fn monotone_in_distance() {
        let s = SeekCurve::table1();
        let mut prev = 0.0;
        for d in 1..1260 {
            let t = s.seek_ms(d);
            assert!(t > prev, "seek not monotone at d={d}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "max_seek_ms > avg_seek_ms")]
    fn rejects_avg_above_max() {
        SeekCurve::calibrate(1260, 30.0, 28.0, 2.0);
    }

    proptest! {
        /// Calibration closes for a range of plausible disk profiles.
        #[test]
        fn prop_calibration_closes(
            cyls in 100u32..4000,
            max in 20.0f64..40.0,
        ) {
            // Average seek for real drives sits near 1/3 of full stroke time;
            // pick a consistent mid value.
            let avg = max * 0.4;
            let single = avg * 0.18;
            let s = SeekCurve::calibrate(cyls, avg, max, single);
            prop_assert!((s.seek_ms(cyls - 1) - max).abs() < 1e-6);
            prop_assert!((s.mean_seek_ms(cyls) - avg).abs() < 1e-6);
        }

        /// seek_ns never truncates to zero for a real move.
        #[test]
        fn prop_seek_ns_positive(d in 1u32..1260) {
            let s = SeekCurve::table1();
            prop_assert!(s.seek_ns(d) >= 1_000_000); // ≥ c = 2ms ⇒ surely ≥ 1ms
        }
    }
}
