//! The event-driven array simulator.
//!
//! One [`Simulator`] runs one trace against one configuration. Logical
//! disks are grouped `N` per array; each array has its own disks, channel,
//! track buffers and (optionally) NV cache, exactly as in Section 3.2 —
//! arrays interact only through the shared trace.
//!
//! ## Layers
//!
//! The core is five layers, one module each, with narrow interfaces:
//!
//! * **admission** ([`admission`], with `cached` as its NV-cache front-end)
//!   — trace feed, track-buffer/array admission control, record → request
//!   decomposition.
//! * **planning** ([`planning`]) — one `OrgPlanner` per organization turns
//!   logical addresses into per-disk operations (healthy and degraded),
//!   backed by `mapping::OrgMap`. The only simulator code that knows which
//!   organization is running.
//! * **dispatch** ([`dispatch`]) — per-drive queues behind the
//!   `diskmodel::DiskScheduler` seam (FCFS — the paper's discipline — by
//!   default; SSTF and SCAN selectable), service start/completion, parity
//!   synchronization (Section 3.3).
//! * **faults** ([`faults`]) — failure injection, degraded operation,
//!   online rebuild, battery failover.
//! * **reporting** ([`reporting`]) — phase attribution, time series, event
//!   log, [`SimReport`] assembly. Pure observation.
//!
//! This module keeps only what the layers share: the entity types, the
//! simulator state, construction, and the event loop.
//!
//! ## Event flow
//!
//! Requests arrive at trace-specified times and are decomposed by the
//! organization's planner into per-disk operations. Disks serve three
//! bands (parity-priority / normal / background) under the configured
//! discipline; when an operation starts service its media timing is fully
//! determined ([`diskmodel::Disk::plan`]), so read-completion times are known
//! at dispatch and parity-update synchronization (Section 3.3) can be
//! resolved with at most a few rescheduled completion events: a parity
//! read-modify-write whose new contents are not ready when the head returns
//! simply holds the disk for further full rotations, precisely the paper's
//! behavior.

mod admission;
mod cached;
mod dispatch;
mod faults;
mod par;
mod planning;
mod reporting;
mod slab;
mod soa;

use crate::config::{FaultConfig, Organization, SimConfig, SparingMode, SyncPolicy};
use crate::mapping::{OrgMap, Run, StripeMode};
use crate::report::{
    ClassReport, FaultReport, PhaseSample, PhaseWelfords, ReliabilityReport, SchedulerReport,
    SimReport,
};
use diskmodel::{
    rmw_write_complete, AccessKind, Band, Discipline, Disk, DiskScheduler, SchedulerQueue,
};
use iochannel::{BufferPool, Channel, RetryPolicy};
use nvcache::{NvCache, ParitySpool};
use raidtp_stats::{DiskCounters, Histogram, TimeSeries, Welford};
use simkit::{Engine, EventId, FaultEvent, FaultPlan, FaultRng, SimTime};
use slab::Slab;
use soa::{JobSlab, OpSlab};
use std::collections::VecDeque;
use tracegen::{AccessType, Trace};

use faults::{FaultKind, FaultState};
use par::{ParState, StatPush};
use planning::{OrgPlanner, Planner};

/// What a disk operation is doing, which determines what happens when it
/// completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum OpRole {
    /// Host read (non-cached): completion triggers a channel transfer that
    /// finishes the request's share.
    HostRead,
    /// Plain data write on behalf of a request.
    HostWrite,
    /// Data-disk read-modify-write of an update (pre-reads old data).
    RmwData,
    /// Reconstruct-write helper read; feeds the parity job only.
    ExtraRead,
    /// Parity read-modify-write (resolved against the job's ready time).
    ParityRmw,
    /// Plain parity write (full-stripe / reconstruct).
    ParityWrite,
    /// Cache-miss fetch; finishes the request's share, then the tail
    /// channel transfer runs.
    CacheFetch,
    /// Synchronous writeback of an evicted dirty block.
    Writeback,
    /// Background destage data write.
    DestageData,
    /// Background destage parity op (RAID5/Parity Striping).
    DestageParity,
    /// RAID4 parity-spool drain write.
    SpoolDrain,
    /// Degraded-mode peer read used to XOR-reconstruct a lost block;
    /// finishes the request's share (reconstructed data leaves via the
    /// request's tail channel transfer).
    ReconstructRead,
    /// Online-rebuild peer read: feeds the rebuild batch's job only.
    RebuildRead,
    /// Online-rebuild write of reconstructed blocks onto the hot spare (or,
    /// under distributed sparing, onto a surviving disk's spare area).
    RebuildWrite,
    /// Background-scrub sequential verify read: discovers latent sector
    /// errors in its range on completion.
    ScrubRead,
    /// Rewrite of a scrub-discovered latent error from reconstructed
    /// redundancy (completion is a no-op: the repair was already accounted
    /// when the covering scrub read finished).
    ScrubRepair,
}

/// When a parity job's parity operations get enqueued (Section 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EnqueueRule {
    /// SI: already enqueued with the data.
    AlreadyIssued,
    /// RF (and reconstruct-writes): at the ready time.
    AtReady,
    /// DF: the moment every data access has acquired its disk.
    AtAllStarted,
}

/// Per-op timestamps and timing components for the phase decomposition.
/// `enqueue`/`bg_snap` are stamped by [`Simulator::enqueue_op`]; the rest at
/// service start.
#[derive(Clone, Copy, Debug)]
struct OpMarks {
    enqueue: SimTime,
    start: SimTime,
    seek_ns: u64,
    latency_ns: u64,
    /// Snapshot of the disk's cumulative background-busy counter at enqueue
    /// (adjusted for a background op mid-service), so the destage
    /// interference suffered while queued is `bg_busy_cum − bg_snap`.
    bg_snap: u64,
}

impl Default for OpMarks {
    fn default() -> Self {
        OpMarks {
            enqueue: SimTime::ZERO,
            start: SimTime::ZERO,
            seek_ns: 0,
            latency_ns: 0,
            bg_snap: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct DiskOp {
    role: OpRole,
    req: Option<u32>,
    job: Option<u32>,
    dgroup: Option<u32>,
    gdisk: u32,
    block: u64,
    nblocks: u32,
    kind: AccessKind,
    band: Band,
    /// Whether this op's read phase feeds its parity job's ready time
    /// (data RMW pre-reads and reconstruct helper reads).
    feeds: bool,
    /// Filled in at service start.
    read_end: SimTime,
    transfer_ns: u64,
    /// Completed services that drew a transient media error (retry count).
    attempts: u32,
    marks: OpMarks,
}

impl DiskOp {
    /// The parent request of an op whose role always has one (host reads
    /// and writes, RMW data ops, cache fetches, reconstruct reads).
    #[inline]
    fn req_id(&self) -> u32 {
        // simlint::allow(panic-policy): host-facing roles are constructed with a parent request; losing it is a scheduling bug that must stop the run, not skew the stats
        self.req.expect("host-facing op lost its parent request")
    }
}

#[derive(Clone, Debug)]
struct ParityJob {
    /// Data (or extra-read) ops not yet in service.
    data_not_started: u32,
    /// Max read-end among started feeder ops: when the new parity is
    /// computable.
    ready: SimTime,
    pending_parity: Vec<u32>,
    rule: EnqueueRule,
    refs: u32,
}

#[derive(Clone, Debug)]
struct Request {
    arrive: SimTime,
    is_read: bool,
    array: u32,
    pending: u32,
    finish: SimTime,
    buffers_held: u32,
    tail_channel_bytes: u64,
    /// Monotonic id for the event log (slab indices get recycled).
    serial: u64,
    /// When processing started (arrival + admission wait).
    admit: SimTime,
    /// When the request's disk ops could first be enqueued: `admit`, or the
    /// end of the channel staging transfer for non-cached writes.
    stage_end: SimTime,
    /// Phase breakdown of the part that currently defines `finish` (the
    /// critical path so far); components sum exactly to `finish − arrive`.
    phase: PhaseSample,
    /// Array state when the request arrived: 0 healthy, 1 degraded (no
    /// rebuild running), 2 rebuilding, 3 data loss. Buckets the per-window
    /// response statistics of [`FaultReport`].
    window: u8,
    /// Request class (fleet tenant id); 0 unless classes are tagged.
    class: u16,
}

/// Parameters of one write decomposition (host write or cache writeback).
pub(super) struct WriteOps {
    pub(super) req: Option<u32>,
    pub(super) array: u32,
    pub(super) laddr: u64,
    pub(super) n: u32,
    pub(super) band: Band,
    pub(super) data_role: OpRole,
    /// Cached old data available (writeback with a retained old copy):
    /// data disks skip the pre-read and parity RMWs resolve immediately.
    pub(super) old_known: bool,
    /// RAID4 parity caching: parity updates go to the spool.
    pub(super) spool: bool,
}

#[derive(Clone, Debug)]
struct DestageJob {
    group: nvcache::DestageGroup,
    remaining: u32,
}

#[derive(Debug)]
enum Ev {
    /// Process the next trace record. Never scheduled in the event queue:
    /// synthesized by [`Simulator::next_step`] when the arrival feed's head
    /// precedes every pending event (see "Event flow" above).
    Arrive,
    DiskDone {
        gdisk: u32,
        op: u32,
    },
    /// Enqueue prepared operations (channel staging done / ready time hit).
    Issue(Box<[u32]>),
    /// RF / reconstruct: parity ops released at the job's ready time.
    EnqueueParity(u32),
    DestageTick {
        array: u32,
    },
    /// An injected fault fires (disk failure, latent sector error, battery
    /// failure/restore).
    Fault(FaultKind),
    /// Reconstruct the next batch of `array`'s failed disk onto its spare
    /// target. `epoch` identifies the rebuild attempt: a throttled step
    /// scheduled before the rebuild restarted (spare died, next spare drawn)
    /// is stale and ignored.
    RebuildStep {
        array: u32,
        epoch: u32,
    },
    /// Verify the next batch of `array`'s background scrub sweep.
    ScrubStep {
        array: u32,
    },
    /// Periodic state sampler (read-only: never perturbs timing).
    Sample,
}

/// Engine-level counters of a finished run, reported by
/// [`Simulator::run_instrumented`]: throughput denominators for the perf
/// harness, deliberately kept out of [`SimReport`].
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Total events dispatched by the engine — for a parallel run, summed
    /// across partitions (the actual work performed, virtual merge-extension
    /// ticks excluded).
    pub events_processed: u64,
    /// Future-event-list high-water mark (peak simultaneously pending; max
    /// over partitions for a parallel run).
    pub peak_pending: usize,
    /// Per-partition counters of a parallel run; empty for a serial run.
    pub partitions: Vec<PartStats>,
    /// Total flat-encoded journal bytes streamed from partitions to the
    /// merge (0 for a serial run).
    pub journal_bytes: u64,
    /// Events executed across partitions ÷ events the merged serial
    /// schedule contains: how much redundant replay the partitioning paid.
    /// 1.0 means every executed event was owned work (serial runs report
    /// exactly 1.0).
    pub replay_amplification: f64,
}

/// One partition's share of a parallel run (see [`RunStats::partitions`]).
#[derive(Clone, Copy, Debug)]
pub struct PartStats {
    /// Owned array range `[lo, hi)`.
    pub arrays: (u32, u32),
    /// Trace arrivals owned (pre-split list length).
    pub arrivals_owned: u64,
    /// Events the partition executed (arrivals + its queue pops).
    pub events_processed: u64,
    /// Exec frames journaled (= events executed, kept separate as a
    /// cross-check on the journal stream).
    pub journal_frames: u64,
    /// Flat-encoded journal bytes this partition produced.
    pub journal_bytes: u64,
}

/// Pre-built disk models for warm-starting construction. The per-disk
/// state is a pure function of (seed, geometry, seek curve, disk index),
/// so one pool built for the largest configuration serves every run that
/// shares those parameters — smaller configurations use a prefix, and a
/// run whose parameters differ falls back to cold construction (the pool
/// is an optimization, never a correctness input).
pub struct WarmDisks {
    seed: u64,
    geometry: diskmodel::DiskGeometry,
    seek: diskmodel::SeekCurve,
    disks: Vec<Disk>,
}

impl WarmDisks {
    /// Build a pool of `total_disks` pristine drives for `cfg`'s seed,
    /// geometry, and seek curve.
    pub fn new(cfg: &SimConfig, total_disks: u32) -> WarmDisks {
        let rot_ns = cfg.geometry.rotation_ns();
        WarmDisks {
            seed: cfg.seed,
            geometry: cfg.geometry.clone(),
            seek: cfg.seek,
            disks: (0..total_disks as u64)
                .map(|i| {
                    Disk::new(
                        cfg.geometry.clone(),
                        cfg.seek,
                        spindle_phase(cfg.seed, i, rot_ns),
                    )
                })
                .collect(),
        }
    }

    /// Whether a configuration can reuse this pool's drives.
    /// Whether `cfg` would produce drives identical to this pool's — the
    /// pool is reusable for any run agreeing on seed, geometry, and seek
    /// curve (a *disk class*, in fleet terms), regardless of organization,
    /// cache, or fault plan.
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        self.seed == cfg.seed && self.geometry == cfg.geometry && self.seek == cfg.seek
    }
}

/// Opt-in request-class tagging: `of_record[i]` is the class of trace
/// record `i` (the fleet layer assigns one class per tenant), with one
/// response accumulator set per class, pushed at request completion in
/// completion order. Purely observational — tagging never touches timing.
struct ClassState {
    of_record: Vec<u16>,
    reports: Vec<ClassReport>,
}

/// Partition scope handed to construction by the parallel runner: the
/// owned array range and arrival share, used to size the future-event list
/// and entity slabs from the partition's own workload and to skip building
/// full-size NV caches for foreign arrays (which receive no events).
struct PartScope {
    lo: u32,
    hi: u32,
    own_arrivals: usize,
}

/// Trace-driven simulator for one configuration. Construct with
/// [`Simulator::new`], consume with [`Simulator::run`].
pub struct Simulator<'t> {
    cfg: SimConfig,
    trace: &'t Trace,
    planner: Planner,
    engine: Engine<Ev>,

    // Per physical disk (global index = array·disks_per_array + local).
    disks: Vec<Disk>,
    queues: Vec<SchedulerQueue>,
    in_service: Vec<Option<u32>>,
    /// Completion event of the op in service, cancellable on disk failure.
    service_ev: Vec<Option<EventId>>,
    // Per array.
    channels: Vec<Channel>,
    buffers: Vec<BufferPool>,
    admission_wait: Vec<VecDeque<(usize, u32)>>,
    caches: Vec<NvCache>,
    spools: Vec<ParitySpool>,

    ops: OpSlab,
    jobs: JobSlab,
    reqs: Slab<Request>,
    dgroups: Slab<DestageJob>,

    // Cached constants (failed_local / dataloss are runtime *state*: set by
    // a static config or mid-run failure events, cleared — failed_local
    // only — when a rebuild completes; dataloss is sticky).
    arrays: u32,
    dpa: u32,
    /// Per array: local index of its failed disk, if any. Planning stays
    /// degraded around this disk; a second failure in the same array is
    /// resolved by the fault layer (spare restart / exhaustion / data loss)
    /// without changing which disk planning routes around.
    failed_local: Vec<Option<u32>>,
    /// Per array: whether a stripe lost more blocks than its redundancy
    /// covers. Sticky until the end of the run.
    dataloss: Vec<bool>,
    fault: Option<FaultState>,
    n: u32,
    bpd: u64,
    rot_ns: u64,
    block_bytes: u64,
    destage_period_ns: u64,
    parity_cached: bool,

    // Progress and stats.
    next_arrival: usize,
    inflight: u64,
    resp_all: Welford,
    resp_reads: Welford,
    resp_writes: Welford,
    hist: Histogram,
    phase_reads: PhaseWelfords,
    phase_writes: PhaseWelfords,
    disk_counts: DiskCounters,
    disk_ops: u64,
    buffer_waits: u64,
    spool_stalls: u64,
    completed: u64,
    completed_reads: u64,
    completed_writes: u64,
    req_serial: u64,

    // Destage-interference accounting, per physical disk: cumulative ns of
    // background service dispatched (incremented by the full service time at
    // start, and again on RMW holds), plus the busy horizon of the
    // currently/last running background op for the mid-service correction.
    bg_busy_cum: Vec<u64>,
    bg_until: Vec<SimTime>,

    // Dispatch-layer statistics (collected unconditionally — pure
    // observation; attached to the report only off the FCFS default or on
    // `observability.scheduler_stats`).
    sched_seek_cyl: Welford,
    sched_qdepth: [Welford; 3],

    // Partition-mode state (parallel runs only): owned array range plus the
    // per-event journal note the merge replays. `None` in serial runs, so
    // the hot paths pay one branch.
    par: Option<Box<ParState>>,

    // Request-class tagging (fleet tenants); `None` unless set_classes was
    // called, so untagged runs pay one branch per completion.
    classes: Option<Box<ClassState>>,

    // Observability (never affects timing).
    sample_period_ns: u64,
    last_sample_ns: u64,
    prev_disk_busy: Vec<u64>,
    prev_chan_busy: Vec<u64>,
    ts: Option<TimeSeries>,
    event_log: Option<std::io::BufWriter<std::fs::File>>,
}

/// Deterministic pseudo-random spindle phase of disk `i` (splitmix64 over
/// the config seed). Hot spares draw fresh phases past the installed-disk
/// index range.
fn spindle_phase(seed: u64, i: u64, rot_ns: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % rot_ns
}

impl<'t> Simulator<'t> {
    /// Build a simulator for `cfg` over `trace`.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or a trace that does not fit it; use
    /// [`Simulator::try_new`] to handle the error as a value instead.
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Simulator<'t> {
        match Self::try_new(cfg, trace) {
            Ok(sim) => sim,
            Err(e) => panic!("Simulator::new: {e}"),
        }
    }

    /// Fallible constructor: validates `cfg` against `trace` and returns
    /// the configuration error instead of panicking.
    pub fn try_new(cfg: SimConfig, trace: &'t Trace) -> Result<Simulator<'t>, String> {
        Self::try_new_inner(cfg, trace, None, None)
    }

    /// Like [`Simulator::try_new`], but reusing pre-built disk models from
    /// `warm` when its parameters match `cfg` (cold construction otherwise).
    /// Byte-identical results either way; only construction cost differs.
    pub fn try_new_warm(
        cfg: SimConfig,
        trace: &'t Trace,
        warm: &WarmDisks,
    ) -> Result<Simulator<'t>, String> {
        Self::try_new_inner(cfg, trace, None, Some(warm))
    }

    fn try_new_inner(
        cfg: SimConfig,
        trace: &'t Trace,
        scope: Option<&PartScope>,
        warm: Option<&WarmDisks>,
    ) -> Result<Simulator<'t>, String> {
        cfg.validate()?;
        let n = cfg.data_disks_per_array;
        let bpd = cfg.geometry.blocks_per_disk();
        if trace.blocks_per_disk > bpd {
            return Err("trace addresses exceed the physical disk size".into());
        }
        let arrays = cfg.arrays_for(trace.n_disks);
        let planner = Planner::new(cfg.organization, n, bpd)?;
        let dpa = planner.disks_per_array();
        let total_disks = (arrays * dpa) as usize;

        // Un-synchronized spindles: deterministic pseudo-random phases from
        // the seed (splitmix64 over the disk index). A matching warm pool
        // already holds exactly these drives; a pool built for a larger
        // configuration serves smaller ones as a prefix.
        let rot_ns = cfg.geometry.rotation_ns();
        let cold_disk = |i: usize| {
            Disk::new(
                cfg.geometry.clone(),
                cfg.seek,
                spindle_phase(cfg.seed, i as u64, rot_ns),
            )
        };
        let disks: Vec<Disk> = match warm.filter(|w| w.matches(&cfg)) {
            Some(w) => (0..total_disks)
                .map(|i| w.disks.get(i).cloned().unwrap_or_else(|| cold_disk(i)))
                .collect(),
            None => (0..total_disks).map(cold_disk).collect(),
        };

        let cache_blocks = cfg
            .cache
            .map(|c| nvcache::blocks_for_mb(c.size_mb, cfg.geometry.block_bytes as u64) as usize);
        let caches = match cache_blocks {
            Some(blocks) => (0..arrays)
                .map(|a| {
                    // A partition only drives its own arrays; foreign arrays
                    // get minimum-size placeholder caches that are never
                    // touched (no foreign arrivals, no foreign ticks) and
                    // are discarded by the merge's hardware graft.
                    let foreign = scope.is_some_and(|s| !(s.lo..s.hi).contains(&a));
                    NvCache::new(if foreign { 2 } else { blocks })
                })
                .collect(),
            None => Vec::new(),
        };
        let parity_cached = planner.caches_parity(cfg.cache.is_some());
        let spools = if parity_cached {
            (0..arrays).map(|_| ParitySpool::new()).collect()
        } else {
            Vec::new()
        };

        if let Some((a, _)) = cfg.failed_disk {
            if a >= arrays {
                return Err("failed disk's array out of range".into());
            }
        }
        let mut failed_local: Vec<Option<u32>> = vec![None; arrays as usize];
        if let Some((a, d)) = cfg.failed_disk {
            failed_local[a as usize] = Some(d);
        }

        // Last trace arrival: sizes the calendar queue below and bounds the
        // fault timeline (an event past it would never fire).
        let horizon_ns = trace.records.last().map_or(0, |r| r.at.as_ns());

        // Fault-injection plan: injected events resolved against the trace's
        // array count, per-disk error streams split off the fault seed.
        let fault = match cfg.fault {
            None => None,
            Some(fc) => {
                let mut plan = FaultPlan::new(fc.fault_seed);
                for df in [fc.disk_failure, fc.second_failure].into_iter().flatten() {
                    if df.array >= arrays {
                        return Err("injected disk failure's array out of range".into());
                    }
                    plan.schedule(FaultEvent::DiskFail {
                        array: df.array,
                        disk: df.disk,
                        at: SimTime::from_ms(df.at_ms),
                    });
                }
                if let Some(ms) = fc.battery_fail_at_ms {
                    plan.schedule(FaultEvent::BatteryFail {
                        at: SimTime::from_ms(ms),
                    });
                }
                if let Some(ms) = fc.battery_restore_at_ms {
                    plan.schedule(FaultEvent::BatteryRestore {
                        at: SimTime::from_ms(ms),
                    });
                }
                // Scheduled events past the trace horizon never fire: reject
                // them at construction instead of silently under-faulting
                // (opt out with `allow_idle_faults`).
                if !fc.allow_idle_faults {
                    if let Some(ev) = plan.events().iter().find(|e| e.at().as_ns() > horizon_ns) {
                        return Err(format!(
                            "fault at {:.0} ms is past the last trace arrival at {:.0} ms and \
                             would never fire (set allow_idle_faults to accept)",
                            ev.at().as_ms_f64(),
                            SimTime::from_ns(horizon_ns).as_ms_f64(),
                        ));
                    }
                }
                // Latent sector errors: one Poisson substream per disk, laid
                // out over the trace horizon at plan-build time so the
                // schedule is a pure function of (fault seed, geometry,
                // horizon) — independent of anything the run does.
                if fc.latent_rate_per_hour > 0.0 {
                    let mean_ms = 3.6e6 / fc.latent_rate_per_hour;
                    let horizon_ms = SimTime::from_ns(horizon_ns).as_ms_f64();
                    for g in 0..total_disks {
                        let mut rng = plan.latent_stream(g as u64);
                        let mut t = rng.next_exp(mean_ms);
                        while t <= horizon_ms {
                            let block = rng.next_u64() % bpd;
                            plan.schedule(FaultEvent::LatentError {
                                array: g as u32 / dpa,
                                disk: g as u32 % dpa,
                                block,
                                at: SimTime::from_ms_f64(t),
                            });
                            t += rng.next_exp(mean_ms);
                        }
                    }
                }
                let rngs = (0..total_disks).map(|g| plan.stream(g as u64)).collect();
                Some(FaultState::new(fc, plan, rngs, arrays, total_disks))
            }
        };

        let sample_period_ns = cfg
            .observability
            .sample_period_ms
            .map_or(0, |ms| ms * 1_000_000);
        let ts = (sample_period_ns > 0).then(|| {
            let mut cols: Vec<String> = Vec::new();
            cols.extend((0..total_disks).map(|g| format!("qdepth.d{g}")));
            cols.extend((0..total_disks).map(|g| format!("util.d{g}")));
            cols.extend((0..arrays).map(|a| format!("chan.a{a}")));
            if cache_blocks.is_some() {
                cols.extend((0..arrays).map(|a| format!("dirty.a{a}")));
                cols.extend((0..arrays).map(|a| format!("clean.a{a}")));
            }
            TimeSeries::new(cols)
        });
        let event_log = match cfg.observability.event_log.as_ref() {
            Some(p) => {
                let f = std::fs::File::create(p)
                    .map_err(|e| format!("cannot create event log {}: {e}", p.display()))?;
                Some(std::io::BufWriter::new(f))
            }
            None => None,
        };

        // Pre-size the future-event list and entity slabs from the records
        // this simulator will actually feed — the whole trace serially, the
        // partition's own pre-split share in a parallel run. Pending events
        // and live entities scale with in-flight requests, a small fraction
        // of that count, so cap the reservation. Purely an allocation hint —
        // results are identical without it.
        let own_records = scope.map_or(trace.records.len(), |s| s.own_arrivals);
        let ev_cap = (own_records / 4).clamp(64, 1 << 14);
        // Size the calendar-queue bucket width from the workload: each record
        // expands to a handful of events, so mean event spacing is about
        // the horizon over 8× the record count. Clamp to at most ~131 µs:
        // the pending population is tiny (tens of events spanning one
        // response time), so narrow buckets keep the per-pop in-bucket
        // scan at O(1) — widths near the millisecond arrival spacing
        // measured ~30% slower on the OLTP traces. The pop order, and
        // therefore every result, is identical for any width (which is also
        // why partitions may size from their own share without perturbing
        // the merged byte-identical result).
        let width_ns = if horizon_ns > 0 {
            (horizon_ns / (own_records as u64 * 8).max(1)).clamp(1 << 10, 1 << 17)
        } else {
            0
        };
        let engine = if width_ns > 0 {
            Engine::with_profile(width_ns, 1024)
        } else {
            Engine::with_capacity(ev_cap)
        };
        Ok(Simulator {
            engine,
            disks,
            queues: (0..total_disks)
                .map(|_| SchedulerQueue::new(cfg.scheduler))
                .collect(),
            in_service: vec![None; total_disks],
            service_ev: vec![None; total_disks],
            channels: (0..arrays)
                .map(|_| Channel::new(cfg.channel_bytes_per_sec))
                .collect(),
            buffers: (0..arrays)
                .map(|_| BufferPool::new(cfg.track_buffers_per_disk * dpa))
                .collect(),
            admission_wait: (0..arrays).map(|_| VecDeque::new()).collect(),
            caches,
            spools,
            ops: OpSlab::with_capacity(ev_cap),
            jobs: JobSlab::with_capacity(ev_cap / 4),
            reqs: Slab::with_capacity(ev_cap / 2),
            dgroups: Slab::new(),
            arrays,
            dpa,
            failed_local,
            dataloss: vec![false; arrays as usize],
            fault,
            n,
            bpd,
            rot_ns,
            block_bytes: cfg.geometry.block_bytes as u64,
            destage_period_ns: cfg.cache.map_or(0, |c| c.destage_period_ms * 1_000_000),
            parity_cached,
            next_arrival: 0,
            inflight: 0,
            resp_all: Welford::new(),
            resp_reads: Welford::new(),
            resp_writes: Welford::new(),
            hist: Histogram::response_time_ms(),
            phase_reads: PhaseWelfords::new(),
            phase_writes: PhaseWelfords::new(),
            disk_counts: DiskCounters::new(total_disks),
            disk_ops: 0,
            buffer_waits: 0,
            spool_stalls: 0,
            completed: 0,
            completed_reads: 0,
            completed_writes: 0,
            req_serial: 0,
            bg_busy_cum: vec![0; total_disks],
            bg_until: vec![SimTime::ZERO; total_disks],
            sched_seek_cyl: Welford::new(),
            sched_qdepth: [Welford::new(); 3],
            par: None,
            classes: None,
            sample_period_ns,
            last_sample_ns: 0,
            prev_disk_busy: vec![0; total_disks],
            prev_chan_busy: vec![0; arrays as usize],
            ts,
            event_log,
            planner,
            cfg,
            trace,
        })
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> SimReport {
        self.run_instrumented().0
    }

    /// Tag every trace record with a request class (`of_record[i]` is the
    /// class of record `i`, each `< n_classes`). The fleet layer uses one
    /// class per tenant; [`Simulator::run_classed`] then returns one
    /// [`ClassReport`] per class alongside the unchanged [`SimReport`].
    /// Tagged runs execute serially (`run_par` falls back): class pushes
    /// are not journaled, so a partitioned run would silently drop them.
    pub fn set_classes(&mut self, of_record: Vec<u16>, n_classes: u16) -> Result<(), String> {
        if of_record.len() != self.trace.records.len() {
            return Err(format!(
                "class tagging covers {} records but the trace has {}",
                of_record.len(),
                self.trace.records.len()
            ));
        }
        if let Some(&c) = of_record.iter().find(|&&c| c >= n_classes) {
            return Err(format!("record class {c} out of range (< {n_classes})"));
        }
        self.classes = Some(Box::new(ClassState {
            of_record,
            reports: (0..n_classes).map(|_| ClassReport::new()).collect(),
        }));
        Ok(())
    }

    /// Run to completion, returning the report plus engine-level counters
    /// (events dispatched, future-event-list high-water mark). The counters
    /// describe the simulator, not the modeled array, so they live outside
    /// [`SimReport`] and cannot perturb its serialized form.
    pub fn run_instrumented(self) -> (SimReport, RunStats) {
        let (report, stats, _) = self.run_classed();
        (report, stats)
    }

    /// [`Simulator::run_instrumented`] plus the per-class response reports
    /// (empty unless [`Simulator::set_classes`] tagged the trace).
    pub fn run_classed(mut self) -> (SimReport, RunStats, Vec<ClassReport>) {
        if self.cfg.cache.is_some() {
            for a in 0..self.arrays {
                self.engine
                    .schedule_after(self.destage_period_ns, Ev::DestageTick { array: a });
            }
        }
        if self.sample_period_ns > 0 {
            self.engine
                .schedule_after(self.sample_period_ns, Ev::Sample);
        }
        let fault_evs: Vec<(SimTime, FaultKind)> = match self.fault.as_ref() {
            Some(fs) => fs
                .plan
                .events()
                .iter()
                .map(|e| match *e {
                    FaultEvent::DiskFail { array, disk, at } => (
                        at,
                        FaultKind::DiskFail {
                            gdisk: array * self.dpa + disk,
                        },
                    ),
                    FaultEvent::LatentError {
                        array,
                        disk,
                        block,
                        at,
                    } => (
                        at,
                        FaultKind::LatentError {
                            gdisk: array * self.dpa + disk,
                            block,
                        },
                    ),
                    FaultEvent::BatteryFail { at } => (at, FaultKind::BatteryFail),
                    FaultEvent::BatteryRestore { at } => (at, FaultKind::BatteryRestore),
                })
                .collect(),
            None => Vec::new(),
        };
        for (at, kind) in fault_evs {
            self.engine.schedule_at(at, Ev::Fault(kind));
        }
        // Background scrub sweeps start at time zero, one per array, after
        // the plan events (roots at equal times pop in scheduling order; the
        // partition runner and the merge replicate this exact order).
        if self
            .fault
            .as_ref()
            .is_some_and(|f| f.fcfg.scrub_rate_mbps > 0)
        {
            for a in 0..self.arrays {
                self.engine
                    .schedule_at(SimTime::ZERO, Ev::ScrubStep { array: a });
            }
        }
        while let Some(ev) = self.next_step() {
            self.dispatch(ev);
        }
        debug_assert!(!self.arrivals_remaining(), "arrival feed not drained");
        debug_assert_eq!(self.inflight, 0, "requests left in flight");
        debug_assert_eq!(self.ops.len(), 0, "disk ops leaked");
        debug_assert_eq!(self.jobs.len(), 0, "parity jobs leaked");
        debug_assert_eq!(self.dgroups.len(), 0, "destage jobs leaked");
        if let Some(w) = self.event_log.as_mut() {
            use std::io::Write as _;
            let _ = w.flush();
        }
        let stats = RunStats {
            events_processed: self.engine.events_processed(),
            peak_pending: self.engine.peak_pending(),
            partitions: Vec::new(),
            journal_bytes: 0,
            replay_amplification: 1.0,
        };
        let classes = self.classes.take().map_or(Vec::new(), |c| c.reports);
        (self.report(), stats, classes)
    }

    /// One step of the unified event loop: the next queue event or the next
    /// feed arrival, whichever is earlier. Arrivals are never *scheduled* —
    /// the trace is already a time-sorted stream, so the loop merges it
    /// with the future-event list here, saving a queue round-trip per
    /// record and letting a partition consume exactly its own arrivals.
    ///
    /// Tie rule: an arrival fires before queue events carrying the same
    /// timestamp. The rule only matters when an arrival's nanosecond
    /// timestamp exactly equals an internal event's (rounded exponential
    /// inter-arrival sums vs. service-time sums — coincidences the pinned
    /// determinism hashes would surface); what it must be is *identical in
    /// serial and partition runs*, which a fixed rule guarantees.
    fn next_step(&mut self) -> Option<Ev> {
        match (self.peek_feed(), self.engine.next_time()) {
            (Some(a), Some(q)) if a > q => self.engine.next_event(),
            (None, Some(_)) => self.engine.next_event(),
            (Some(a), _) => {
                self.engine.feed_event(a);
                Some(Ev::Arrive)
            }
            (None, None) => None,
        }
    }

    /// Arrival time at the head of this simulator's feed: the global
    /// cursor serially, the partition's own pre-split list in a parallel
    /// run.
    fn peek_feed(&self) -> Option<SimTime> {
        match self.par.as_deref() {
            Some(p) => p.own.get(p.pos).map(|&i| self.trace.records[i as usize].at),
            None => self.trace.records.get(self.next_arrival).map(|r| r.at),
        }
    }

    /// Consume the head of the arrival feed, returning the global trace
    /// index of the record to process.
    pub(super) fn pop_feed(&mut self) -> usize {
        match self.par.as_deref_mut() {
            Some(p) => {
                let i = p.own[p.pos] as usize;
                p.pos += 1;
                i
            }
            None => {
                let i = self.next_arrival;
                self.next_arrival += 1;
                i
            }
        }
    }

    /// Whether this simulator's feed still holds arrivals (the partition's
    /// own share in a parallel run). Drives the destage-tick keep-alive and
    /// the sampler.
    pub(super) fn arrivals_remaining(&self) -> bool {
        match self.par.as_deref() {
            Some(p) => p.pos < p.own.len(),
            None => self.next_arrival < self.trace.records.len(),
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive => self.on_arrive(),
            Ev::DiskDone { gdisk, op } => self.on_disk_done(gdisk, op),
            Ev::Issue(tokens) => {
                for &t in tokens.iter() {
                    self.enqueue_op(t);
                }
            }
            Ev::EnqueueParity(job) => {
                let pending = std::mem::take(&mut self.jobs.pending_parity[job as usize]);
                for t in pending {
                    self.enqueue_op(t);
                }
            }
            Ev::DestageTick { array } => self.on_destage_tick(array),
            Ev::Fault(kind) => match kind {
                FaultKind::DiskFail { gdisk } => self.on_disk_fail(gdisk),
                FaultKind::LatentError { gdisk, block } => self.on_latent_error(gdisk, block),
                FaultKind::BatteryFail => self.on_battery_fail(),
                FaultKind::BatteryRestore => self.on_battery_restore(),
            },
            Ev::RebuildStep { array, epoch } => self.on_rebuild_step(array, epoch),
            Ev::ScrubStep { array } => self.on_scrub_step(array),
            Ev::Sample => self.on_sample(),
        }
    }
}

#[cfg(test)]
mod tests;
