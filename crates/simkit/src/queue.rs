//! Future-event list: a binary-heap priority queue keyed on
//! ([`SimTime`], insertion sequence) with O(1) slot-table cancellation.
//!
//! Ties are broken by insertion order so that two events scheduled for the
//! same instant fire in the order they were scheduled. This determinism
//! matters: disk-array response times are sensitive to who wins a
//! simultaneous arrival at a queue.
//!
//! ## Slot table
//!
//! Every scheduled event owns a slot in a `Vec`-backed table; its
//! [`EventId`] is the (slot, generation) pair. Cancellation flips the
//! slot's live bit — O(1), no tree walk — and the heap entry is discarded
//! lazily when it surfaces. Slots are recycled through a free list; the
//! generation counter bumps on every reuse, so a stale id (fired or
//! cancelled long ago) can never cancel the slot's new occupant.
//!
//! The queue maintains the invariant that the heap's top entry is always
//! live: `cancel` and `pop` drain dead entries off the top before
//! returning. That makes [`EventQueue::peek_time`] a true `&self` peek.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Internally a (slot, generation) pair into the queue's slot table;
/// generations make ids single-use, so an id kept past its event's firing
/// or cancellation is harmlessly rejected even after the slot is reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

// Min-heap ordering: earliest time first, then lowest sequence number.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One slot of the liveness table. `live` is true from `schedule` until the
/// event is popped or cancelled; `gen` counts reuses of this slot.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

/// Priority queue of future events.
///
/// `pop` returns events in nondecreasing time order; events with equal
/// timestamps come out in scheduling order (the (time, seq) tie-break).
/// `cancel` is O(1): the slot's live bit is cleared and the heap entry is
/// skipped lazily when it reaches the top.
///
/// All bookkeeping lives in flat `Vec`s (slot table + free list) — no
/// ordered sets, no hashing — so the structure is cache-friendly and
/// trivially deterministic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Scheduled minus popped minus cancelled.
    live_count: usize,
    /// High-water mark of `live_count` over the queue's lifetime.
    peak_live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the heap and slot table for `cap` simultaneously pending
    /// events (they still grow on demand past that).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live_count: 0,
            peak_live: 0,
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                self.slots.push(Slot { gen: 0, live: true });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live_count += 1;
        if self.live_count > self.peak_live {
            self.peak_live = self.live_count;
        }
        self.heap.push(Entry {
            at,
            seq,
            slot,
            event,
        });
        EventId { slot, gen }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or already cancelled). A stale id
    /// — fired, already cancelled, or from a recycled slot — is rejected by
    /// the generation check and never touches the slot's current occupant.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if slot.gen != id.gen || !slot.live {
            return false;
        }
        slot.live = false;
        self.live_count -= 1;
        // Keep the top-of-heap-is-live invariant for `peek_time`.
        self.drain_dead();
        true
    }

    /// Retire `slot` back to the free list, invalidating outstanding ids.
    #[inline]
    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.free.push(slot);
    }

    /// Pop dead (cancelled) entries off the top of the heap so the top is
    /// always a live event.
    fn drain_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.slots[top.slot as usize].live {
                break;
            }
            let slot = top.slot;
            self.heap.pop();
            self.release_slot(slot);
        }
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // `drain_dead` after every mutation keeps the top live, so the
        // first entry is the answer; the loop is belt-and-braces.
        while let Some(entry) = self.heap.pop() {
            let live = self.slots[entry.slot as usize].live;
            self.release_slot(entry.slot);
            if !live {
                continue;
            }
            self.live_count -= 1;
            self.drain_dead();
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Invariant: the heap's top entry is live (dead entries are drained
        // by `cancel` and `pop`), so no mutation is needed here.
        self.heap.peek().map(|e| e.at)
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live_count
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Most events simultaneously pending over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(5), "c");
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(2);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { slot: 42, gen: 0 }));
    }

    /// Regression: cancelling an id that already fired used to insert a
    /// tombstone that nothing could consume, making `len()` underflow.
    #[test]
    fn cancel_of_fired_event_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a), "cancel of a fired event must report false");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue remains fully usable afterwards.
        q.schedule(SimTime::from_ms(2), "b");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert_eq!(q.pop(), None);
    }

    /// Regression: the same stale-cancel scenario with another event still
    /// pending; `len()` must not drift as the tombstone is never consumed.
    #[test]
    fn stale_cancel_does_not_corrupt_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(5), "b")));
        assert!(q.is_empty());
    }

    /// A fired event's slot is recycled by the next schedule; the stale id
    /// must not cancel (or even see) the slot's new occupant.
    #[test]
    fn stale_id_does_not_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        // Slot is reused with a bumped generation.
        let b = q.schedule(SimTime::from_ms(2), "b");
        assert!(!q.cancel(a), "stale id must not cancel the new occupant");
        assert_eq!(q.len(), 1, "the new occupant is untouched");
        assert_eq!(q.pop(), Some((SimTime::from_ms(2), "b")));
        assert!(!q.cancel(b), "fired reuser's own id is stale too");
    }

    /// Same, when the first occupant was cancelled rather than popped: the
    /// cancelled id stays dead through the slot's next life.
    #[test]
    fn cancelled_id_stays_dead_after_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        assert!(q.cancel(a));
        // The dead entry was drained off the heap, so the slot is free.
        let b = q.schedule(SimTime::from_ms(3), "b");
        assert!(!q.cancel(a), "cancelled id is single-use");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "b")));
        assert!(!q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    /// Ids from consecutive lives of one slot are distinct values.
    #[test]
    fn recycled_slot_yields_distinct_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), 0);
        q.pop();
        let b = q.schedule(SimTime::from_ms(1), 1);
        assert_ne!(a, b, "generation must differ on slot reuse");
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(9), "b")));
        assert_eq!(q.peek_time(), None);
    }

    /// Cancelling a buried (non-top) entry leaves it in the heap; it must
    /// be skipped when it later surfaces, and `peek_time` must never report
    /// it.
    #[test]
    fn buried_cancellation_is_skipped_when_it_surfaces() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(1), "a");
        let b = q.schedule(SimTime::from_ms(2), "b");
        q.schedule(SimTime::from_ms(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(1), "a")));
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(3)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(SimTime::from_ms(1), "a");
        q.schedule(SimTime::from_ms(2), "b");
        q.schedule(SimTime::from_ms(3), "c");
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::from_ms(4), "d");
        assert_eq!(q.peak_len(), 3, "peak is a lifetime high-water mark");
    }

    /// Naive reference model: the observable behavior the slot-table queue
    /// must reproduce exactly. Linear scans everywhere — unambiguously
    /// correct, hopelessly slow.
    struct ModelQueue {
        // (time_ns, seq, cancelled)
        pending: Vec<(u64, u64, bool)>,
        next_seq: u64,
    }

    impl ModelQueue {
        fn new() -> Self {
            ModelQueue {
                pending: Vec::new(),
                next_seq: 0,
            }
        }

        fn schedule(&mut self, t: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push((t, seq, false));
            seq
        }

        /// Cancel by scheduling sequence; true iff still pending.
        fn cancel(&mut self, seq: u64) -> bool {
            match self.pending.iter_mut().find(|e| e.1 == seq && !e.2) {
                Some(e) => {
                    e.2 = true;
                    true
                }
                None => false,
            }
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            let i = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.2)
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i)?;
            let e = self.pending.remove(i);
            // Cancelled entries at or before the popped one can never be
            // observed again; drop them like the real queue drops tombstones.
            self.pending.retain(|x| !x.2);
            Some((e.0, e.1))
        }

        fn peek_time(&self) -> Option<u64> {
            self.pending
                .iter()
                .filter(|e| !e.2)
                .map(|e| (e.0, e.1))
                .min()
                .map(|(t, _)| t)
        }

        fn len(&self) -> usize {
            self.pending.iter().filter(|e| !e.2).count()
        }
    }

    /// One step of the differential interpreter.
    #[derive(Clone, Debug)]
    enum Op {
        Schedule(u64),
        /// Cancel the id issued by the i-th Schedule so far (mod count);
        /// may be live, fired, cancelled, or from a since-recycled slot.
        Cancel(usize),
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..10_000).prop_map(Op::Schedule),
            2 => (0usize..64).prop_map(Op::Cancel),
            2 => Just(Op::Pop),
            1 => Just(Op::Peek),
        ]
    }

    proptest! {
        /// Popped timestamps are nondecreasing, and every scheduled,
        /// non-cancelled event comes out exactly once.
        #[test]
        fn prop_time_order_and_completeness(
            times in proptest::collection::vec(0u64..10_000, 1..200),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                ids.push((q.schedule(SimTime::from_ns(t), i), t));
            }
            let mut live = Vec::new();
            for (i, (id, t)) in ids.into_iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert!(q.cancel(id));
                } else {
                    live.push((t, i));
                }
            }
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some((at, idx)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
                out.push((at.as_ns(), idx));
            }
            live.sort();
            out.sort();
            prop_assert_eq!(live, out);
        }

        /// Differential property: drive the slot-table queue and the naive
        /// reference model through a random interleaving of schedule /
        /// cancel / pop / peek — including cancels of stale and recycled
        /// ids — and require identical observable behavior at every step.
        #[test]
        fn prop_differential_against_model(
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            let mut real = EventQueue::new();
            let mut model = ModelQueue::new();
            // i-th Schedule's handles in both worlds: (EventId, model seq).
            let mut issued: Vec<(EventId, u64)> = Vec::new();
            for op in ops {
                match op {
                    Op::Schedule(t) => {
                        let seq = model.schedule(t);
                        let id = real.schedule(SimTime::from_ns(t), seq);
                        issued.push((id, seq));
                    }
                    Op::Cancel(i) => {
                        if issued.is_empty() {
                            continue;
                        }
                        let (id, seq) = issued[i % issued.len()];
                        prop_assert_eq!(
                            real.cancel(id),
                            model.cancel(seq),
                            "cancel of schedule #{} disagrees", i
                        );
                    }
                    Op::Pop => {
                        let got = real.pop().map(|(at, seq)| (at.as_ns(), seq));
                        prop_assert_eq!(got, model.pop());
                    }
                    Op::Peek => {
                        let got = real.peek_time().map(|t| t.as_ns());
                        prop_assert_eq!(got, model.peek_time());
                    }
                }
                prop_assert_eq!(real.len(), model.len());
                prop_assert_eq!(real.is_empty(), model.len() == 0);
                // peek is pure: always consistent with len.
                prop_assert_eq!(real.peek_time().is_some(), !real.is_empty());
            }
            // Drain both to the end: same residue in the same order.
            loop {
                let got = real.pop().map(|(at, seq)| (at.as_ns(), seq));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
