//! CLI for the simlint determinism pass.
//!
//! ```text
//! cargo run -p simlint -- --deny                 # CI gate: everything denied
//! cargo run -p simlint -- --warn hash-collection # demote one rule
//! cargo run -p simlint -- --format sarif         # code-scanning output
//! cargo run -p simlint -- --write-baseline       # snapshot current findings
//! cargo run -p simlint -- path/to/file.rs        # explicit targets
//! ```

use simlint::{
    analyze_paths, analyze_workspace, baseline, exit_code, to_json, to_sarif, Config, Level, Rule,
    WsConfig, RULES,
};
use std::path::PathBuf;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

const USAGE: &str = "\
simlint — determinism & invariant lints for the sim-core crates

USAGE:
    cargo run -p simlint -- [OPTIONS] [PATHS…]

OPTIONS:
    --deny [RULE]      enforce every rule (or just RULE) as an error
    --warn [RULE]      report every rule (or just RULE) without failing
    --allow RULE       disable RULE entirely
    --format FMT       `text` (default), `json`, or `sarif`
    --root DIR         workspace root (default: autodetected)
    --config FILE      workspace config (default: <root>/simlint.toml)
    --baseline FILE    waiver file (default: <root>/simlint.baseline.toml)
    --no-baseline      ignore the waiver file even if present
    --write-baseline   snapshot the current denied findings as the waiver
                       file (fill in the reasons before committing), then exit
    --list-rules       print the rules and their default levels
    -h, --help         this help

With no PATHS the whole workspace is analyzed: the sim-core crates under
the strict profile, tests/ and crates/bench under the relaxed profile, and
the cross-file rules (journal-effect, layer-boundary) over the function
graph, minus the committed baseline. With explicit PATHS only the per-file
rules run on those paths. A site opts out with
`// simlint::allow(<rule>): <reason>` on the offending or preceding line;
accepted whole findings live in simlint.baseline.toml with reasons.";

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("simlint: error: {e}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<i32, String> {
    let mut cfg = Config::default();
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" | "--warn" | "--allow" => {
                let level = match arg.as_str() {
                    "--deny" => Level::Deny,
                    "--warn" => Level::Warn,
                    _ => Level::Allow,
                };
                // An immediately following rule name scopes the flag; plain
                // `--deny`/`--warn` applies to every rule.
                let scoped = args.peek().and_then(|next| Rule::from_name(next));
                if scoped.is_some() {
                    args.next();
                }
                match scoped {
                    Some(rule) => cfg.set_level(rule, level),
                    None if level == Level::Allow => {
                        return Err("--allow requires a rule name (refusing to disable \
                                    every rule at once)"
                            .into());
                    }
                    None => cfg.set_all(level),
                }
            }
            "--format" => {
                let fmt = args
                    .next()
                    .ok_or("--format requires `text`, `json`, or `sarif`")?;
                format = match fmt.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(
                    args.next().ok_or("--config requires a file path")?,
                ));
            }
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline requires a file path")?,
                ));
            }
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for r in RULES {
                    println!("{:<16} (default: {})", r.name(), r.default_level().name());
                    println!("    {}", r.hint());
                }
                return Ok(0);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    // Workspace root: the parent of this crate's `crates/` directory, so
    // the tool works from any invocation directory.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crate lives at <root>/crates/simlint")
            .to_path_buf()
    });

    let mut diags = if paths.is_empty() {
        let config_path = config_path.unwrap_or_else(|| root.join("simlint.toml"));
        let ws = WsConfig::load(&config_path)?;
        analyze_workspace(&root, &ws, &cfg)?
    } else {
        if write_baseline {
            return Err("--write-baseline only applies to whole-workspace runs".into());
        }
        analyze_paths(&paths, &root, &cfg).map_err(|e| e.to_string())?
    };

    let baseline_path = baseline_path.unwrap_or_else(|| root.join("simlint.baseline.toml"));
    if write_baseline {
        let text = baseline::render(&diags);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let n = diags.iter().filter(|d| d.level == Level::Deny).count();
        eprintln!(
            "simlint: wrote {n} waiver(s) to {} — fill in each `reason` before committing",
            baseline_path.display()
        );
        return Ok(0);
    }

    let mut stale: Vec<baseline::Waiver> = Vec::new();
    if paths.is_empty() && !no_baseline {
        match std::fs::read_to_string(&baseline_path) {
            Ok(src) => {
                let waivers = baseline::parse(&src)
                    .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
                stale = baseline::apply(&mut diags, &waivers);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
        }
    }

    match format {
        Format::Json => println!("{}", to_json(&diags)),
        Format::Sarif => println!("{}", to_sarif(&diags)),
        Format::Text => {
            for d in &diags {
                println!("{d}\n");
            }
            let denies = diags.iter().filter(|d| d.level == Level::Deny).count();
            let warns = diags.len() - denies;
            eprintln!("simlint: {denies} error(s), {warns} warning(s)");
        }
    }
    for w in &stale {
        eprintln!(
            "simlint: warning: stale baseline waiver ({} @ {}) covers nothing — delete it",
            w.rule, w.file
        );
    }
    Ok(exit_code(&diags))
}
