//! Logical→physical address mapping for every organization.
//!
//! The trace addresses a *logical database*: `n_logical` disks of
//! `blocks_per_disk` 4 KB blocks. Logical disks are grouped `N` per array;
//! within an array a request is a run of consecutive blocks at a *logical
//! array address* `laddr ∈ [0, N·blocks_per_disk)`. Each mapping turns such
//! runs into per-physical-disk runs, and for writes produces a
//! [`WritePlan`] describing the data, extra-read, and parity accesses each
//! touched stripe needs.

mod degraded;
mod parstrip;
mod raid;
mod simple;

pub(crate) use degraded::distributed_spare_target;
pub use degraded::DegradedRead;
pub use parstrip::ParStripMap;
pub use raid::RaidMap;
pub use simple::{BaseMap, MirrorMap};

use crate::config::Organization;

/// A run of consecutive physical blocks on one disk of the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// Physical disk index within the array.
    pub disk: u32,
    /// First physical block on that disk.
    pub block: u64,
    pub nblocks: u32,
}

/// How a stripe's worth of a write is carried out (Section 2.1 / 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StripeMode {
    /// Every data block of the stripe is written: parity is computed from
    /// the new data and written outright; nothing is read.
    Full,
    /// More than half the stripe is written: read the *remaining* units,
    /// compute parity from new data + read data, write data and parity
    /// (no read-modify-write rotations).
    Reconstruct,
    /// Less than half: read-modify-write — data disks pre-read old data,
    /// the parity disk pre-reads old parity; both pay the extra rotation.
    Rmw,
}

/// One stripe's (or parity row group's) share of a write request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripeWrite {
    pub mode: StripeMode,
    /// New-data runs (RMW runs pre-read old data in `Rmw` mode).
    pub data: Vec<Run>,
    /// `Reconstruct` only: other units' blocks to read first.
    pub extra_reads: Vec<Run>,
    /// Parity runs to update.
    pub parity: Vec<Run>,
}

/// Decomposition of a whole write request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WritePlan {
    pub stripes: Vec<StripeWrite>,
}

/// Append `(disk, block)` to `runs`, merging with the last run when
/// physically consecutive on the same disk.
pub(crate) fn push_merged(runs: &mut Vec<Run>, disk: u32, block: u64) {
    if let Some(last) = runs.last_mut() {
        if last.disk == disk && last.block + last.nblocks as u64 == block {
            last.nblocks += 1;
            return;
        }
    }
    runs.push(Run {
        disk,
        block,
        nblocks: 1,
    });
}

/// Organization-polymorphic mapping.
#[derive(Clone, Debug)]
pub enum OrgMap {
    Base(BaseMap),
    Mirror(MirrorMap),
    Raid(RaidMap),
    ParStrip(ParStripMap),
}

impl OrgMap {
    /// Build the mapping for `org` with `n` logical disks per array of
    /// `blocks_per_disk` blocks each.
    pub fn new(org: Organization, n: u32, blocks_per_disk: u64) -> OrgMap {
        match org {
            Organization::Base => OrgMap::Base(BaseMap::new(n, blocks_per_disk)),
            Organization::Mirror => OrgMap::Mirror(MirrorMap::new(n, blocks_per_disk)),
            Organization::Raid5 { striping_unit } => {
                OrgMap::Raid(RaidMap::new(n, blocks_per_disk, striping_unit, true))
            }
            Organization::Raid4 { striping_unit } => {
                OrgMap::Raid(RaidMap::new(n, blocks_per_disk, striping_unit, false))
            }
            Organization::ParityStriping { placement } => {
                OrgMap::ParStrip(ParStripMap::new(n, blocks_per_disk, placement))
            }
        }
    }

    /// Physical disks per array.
    pub fn disks_per_array(&self) -> u32 {
        match self {
            OrgMap::Base(m) => m.n,
            OrgMap::Mirror(m) => 2 * m.n,
            OrgMap::Raid(m) => m.n + 1,
            OrgMap::ParStrip(m) => m.n + 1,
        }
    }

    /// Physical runs a read of `[laddr, laddr + n)` touches (primary copy
    /// for mirrors; the simulator picks the replica per run).
    pub fn read_runs(&self, laddr: u64, n: u32) -> Vec<Run> {
        match self {
            OrgMap::Base(m) => m.runs(laddr, n),
            OrgMap::Mirror(m) => m.runs(laddr, n),
            OrgMap::Raid(m) => m.data_runs(laddr, n),
            OrgMap::ParStrip(m) => m.data_runs(laddr, n),
        }
    }

    /// Decompose a write of `[laddr, laddr + n)`.
    pub fn write_plan(&self, laddr: u64, n: u32) -> WritePlan {
        match self {
            OrgMap::Base(m) => WritePlan {
                stripes: vec![StripeWrite {
                    mode: StripeMode::Full, // plain writes: no parity work
                    data: m.runs(laddr, n),
                    extra_reads: Vec::new(),
                    parity: Vec::new(),
                }],
            },
            OrgMap::Mirror(m) => {
                // Both copies are written; the simulator completes the
                // request at the max of the two.
                let primary = m.runs(laddr, n);
                let mut data = primary.clone();
                data.extend(primary.iter().map(|r| m.mirror_of(*r)));
                WritePlan {
                    stripes: vec![StripeWrite {
                        mode: StripeMode::Full,
                        data,
                        extra_reads: Vec::new(),
                        parity: Vec::new(),
                    }],
                }
            }
            OrgMap::Raid(m) => m.write_plan(laddr, n),
            OrgMap::ParStrip(m) => m.write_plan(laddr, n),
        }
    }

    /// The mirror copy of a physical run (mirror organization only).
    pub fn mirror_of(&self, run: Run) -> Option<Run> {
        match self {
            OrgMap::Mirror(m) => Some(m.mirror_of(run)),
            _ => None,
        }
    }

    /// Logical array addresses usable by the trace (Parity Striping rounds
    /// areas down; addresses past this are wrapped by the simulator).
    pub fn logical_capacity(&self) -> u64 {
        match self {
            OrgMap::Base(m) => m.n as u64 * m.blocks_per_disk,
            OrgMap::Mirror(m) => m.n as u64 * m.blocks_per_disk,
            OrgMap::Raid(m) => m.logical_capacity(),
            OrgMap::ParStrip(m) => m.logical_capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParityPlacement;

    #[test]
    fn push_merged_coalesces_consecutive() {
        let mut runs = Vec::new();
        push_merged(&mut runs, 0, 10);
        push_merged(&mut runs, 0, 11);
        push_merged(&mut runs, 0, 13); // gap
        push_merged(&mut runs, 1, 14); // other disk
        assert_eq!(
            runs,
            vec![
                Run {
                    disk: 0,
                    block: 10,
                    nblocks: 2
                },
                Run {
                    disk: 0,
                    block: 13,
                    nblocks: 1
                },
                Run {
                    disk: 1,
                    block: 14,
                    nblocks: 1
                },
            ]
        );
    }

    #[test]
    fn orgmap_disks_per_array() {
        let bpd = 1800;
        assert_eq!(
            OrgMap::new(Organization::Base, 10, bpd).disks_per_array(),
            10
        );
        assert_eq!(
            OrgMap::new(Organization::Mirror, 10, bpd).disks_per_array(),
            20
        );
        assert_eq!(
            OrgMap::new(Organization::Raid5 { striping_unit: 1 }, 10, bpd).disks_per_array(),
            11
        );
        assert_eq!(
            OrgMap::new(
                Organization::ParityStriping {
                    placement: ParityPlacement::End
                },
                10,
                bpd
            )
            .disks_per_array(),
            11
        );
    }

    #[test]
    fn mirror_write_plan_covers_both_copies() {
        let m = OrgMap::new(Organization::Mirror, 4, 1000);
        let plan = m.write_plan(2500, 2);
        assert_eq!(plan.stripes.len(), 1);
        let s = &plan.stripes[0];
        assert_eq!(s.data.len(), 2);
        assert_eq!(
            s.data[0],
            Run {
                disk: 4,
                block: 500,
                nblocks: 2
            }
        );
        assert_eq!(
            s.data[1],
            Run {
                disk: 5,
                block: 500,
                nblocks: 2
            }
        );
        assert!(s.parity.is_empty());
    }

    #[test]
    fn base_write_plan_has_no_parity() {
        let m = OrgMap::new(Organization::Base, 4, 1000);
        let plan = m.write_plan(0, 3);
        assert_eq!(
            plan.stripes[0].data,
            vec![Run {
                disk: 0,
                block: 0,
                nblocks: 3
            }]
        );
        assert!(plan.stripes[0].parity.is_empty());
        assert_eq!(plan.stripes[0].mode, StripeMode::Full);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use crate::config::{Organization, ParityPlacement};

    #[test]
    fn raid_capacity_truncates_to_whole_stripes() {
        // 226800 % 13 != 0: the tail sliver is unused.
        let m = OrgMap::new(Organization::Raid5 { striping_unit: 13 }, 10, 226_800);
        let stripes = 226_800 / 13;
        assert_eq!(m.logical_capacity(), 10 * stripes * 13);
        assert!(m.logical_capacity() < 10 * 226_800);
        // The last mappable address stays within the disk.
        let runs = m.read_runs(m.logical_capacity() - 1, 1);
        assert!(runs[0].block < 226_800);
    }

    #[test]
    fn parstrip_capacity_truncates_to_whole_areas() {
        let m = OrgMap::new(
            Organization::ParityStriping {
                placement: ParityPlacement::Middle,
            },
            10,
            226_800,
        );
        // 226800 / 11 = 20618 blocks per area (2 blocks unused per disk).
        assert_eq!(m.logical_capacity(), 11 * 10 * 20_618);
    }

    #[test]
    fn base_and_mirror_use_full_capacity() {
        assert_eq!(
            OrgMap::new(Organization::Base, 10, 226_800).logical_capacity(),
            2_268_000
        );
        assert_eq!(
            OrgMap::new(Organization::Mirror, 10, 226_800).logical_capacity(),
            2_268_000
        );
    }
}
