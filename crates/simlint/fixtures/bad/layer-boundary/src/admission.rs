pub fn admit(s: &mut Sim) {
    enqueue_op(s);
}
