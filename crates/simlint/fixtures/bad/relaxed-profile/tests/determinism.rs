//! Pins a determinism hash (fnv1a), so the relaxed profile lints it:
//! feeding a nondeterministically-ordered collection into the pinned
//! hash is exactly the bug the profile exists to catch.

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf29ce484222325, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[test]
fn pins_digest() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    assert_eq!(fnv1a(b"seed"), 0x9b);
}
