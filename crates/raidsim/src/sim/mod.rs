//! The event-driven array simulator.
//!
//! One [`Simulator`] runs one trace against one configuration. Logical
//! disks are grouped `N` per array; each array has its own disks, channel,
//! track buffers and (optionally) NV cache, exactly as in Section 3.2 —
//! arrays interact only through the shared trace.
//!
//! ## Event flow
//!
//! Requests arrive at trace-specified times and are decomposed by the
//! organization's [`OrgMap`] into per-disk operations. Disks are FIFO
//! servers with three service bands (parity-priority / normal /
//! background); when an operation starts service its media timing is fully
//! determined ([`diskmodel::Disk::plan`]), so read-completion times are known
//! at dispatch and parity-update synchronization (Section 3.3) can be
//! resolved with at most a few rescheduled completion events: a parity
//! read-modify-write whose new contents are not ready when the head returns
//! simply holds the disk for further full rotations, precisely the paper's
//! behavior.

mod cached;
mod slab;

use crate::config::{FaultConfig, Organization, SimConfig, SyncPolicy};
use crate::mapping::{OrgMap, Run, StripeMode};
use crate::report::{FaultReport, PhaseSample, PhaseWelfords, SimReport};
use diskmodel::{rmw_write_complete, AccessKind, Band, Disk, OpQueue};
use iochannel::{BufferPool, Channel, RetryPolicy};
use nvcache::{NvCache, ParitySpool};
use raidtp_stats::{DiskCounters, Histogram, TimeSeries, Welford};
use simkit::{Engine, EventId, FaultEvent, FaultPlan, FaultRng, SimTime};
use slab::Slab;
use std::collections::VecDeque;
use std::io::Write as _;
use tracegen::{AccessType, Trace, TraceRecord};

/// What a disk operation is doing, which determines what happens when it
/// completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum OpRole {
    /// Host read (non-cached): completion triggers a channel transfer that
    /// finishes the request's share.
    HostRead,
    /// Plain data write on behalf of a request.
    HostWrite,
    /// Data-disk read-modify-write of an update (pre-reads old data).
    RmwData,
    /// Reconstruct-write helper read; feeds the parity job only.
    ExtraRead,
    /// Parity read-modify-write (resolved against the job's ready time).
    ParityRmw,
    /// Plain parity write (full-stripe / reconstruct).
    ParityWrite,
    /// Cache-miss fetch; finishes the request's share, then the tail
    /// channel transfer runs.
    CacheFetch,
    /// Synchronous writeback of an evicted dirty block.
    Writeback,
    /// Background destage data write.
    DestageData,
    /// Background destage parity op (RAID5/Parity Striping).
    DestageParity,
    /// RAID4 parity-spool drain write.
    SpoolDrain,
    /// Degraded-mode peer read used to XOR-reconstruct a lost block;
    /// finishes the request's share (reconstructed data leaves via the
    /// request's tail channel transfer).
    ReconstructRead,
    /// Online-rebuild peer read: feeds the rebuild batch's job only.
    RebuildRead,
    /// Online-rebuild write of reconstructed blocks onto the hot spare.
    RebuildWrite,
}

/// When a parity job's parity operations get enqueued (Section 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EnqueueRule {
    /// SI: already enqueued with the data.
    AlreadyIssued,
    /// RF (and reconstruct-writes): at the ready time.
    AtReady,
    /// DF: the moment every data access has acquired its disk.
    AtAllStarted,
}

/// Per-op timestamps and timing components for the phase decomposition.
/// `enqueue`/`bg_snap` are stamped by [`Simulator::enqueue_op`]; the rest at
/// service start.
#[derive(Clone, Copy, Debug)]
struct OpMarks {
    enqueue: SimTime,
    start: SimTime,
    seek_ns: u64,
    latency_ns: u64,
    /// Snapshot of the disk's cumulative background-busy counter at enqueue
    /// (adjusted for a background op mid-service), so the destage
    /// interference suffered while queued is `bg_busy_cum − bg_snap`.
    bg_snap: u64,
}

impl Default for OpMarks {
    fn default() -> Self {
        OpMarks {
            enqueue: SimTime::ZERO,
            start: SimTime::ZERO,
            seek_ns: 0,
            latency_ns: 0,
            bg_snap: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct DiskOp {
    role: OpRole,
    req: Option<u32>,
    job: Option<u32>,
    dgroup: Option<u32>,
    gdisk: u32,
    block: u64,
    nblocks: u32,
    kind: AccessKind,
    band: Band,
    /// Whether this op's read phase feeds its parity job's ready time
    /// (data RMW pre-reads and reconstruct helper reads).
    feeds: bool,
    /// Filled in at service start.
    read_end: SimTime,
    transfer_ns: u64,
    /// Completed services that drew a transient media error (retry count).
    attempts: u32,
    marks: OpMarks,
}

impl DiskOp {
    /// The parent request of an op whose role always has one (host reads
    /// and writes, RMW data ops, cache fetches, reconstruct reads).
    #[inline]
    fn req_id(&self) -> u32 {
        // simlint::allow(panic-policy): host-facing roles are constructed with a parent request; losing it is a scheduling bug that must stop the run, not skew the stats
        self.req.expect("host-facing op lost its parent request")
    }
}

#[derive(Clone, Debug)]
struct ParityJob {
    /// Data (or extra-read) ops not yet in service.
    data_not_started: u32,
    /// Max read-end among started feeder ops: when the new parity is
    /// computable.
    ready: SimTime,
    pending_parity: Vec<u32>,
    rule: EnqueueRule,
    refs: u32,
}

#[derive(Clone, Debug)]
struct Request {
    arrive: SimTime,
    is_read: bool,
    array: u32,
    pending: u32,
    finish: SimTime,
    buffers_held: u32,
    tail_channel_bytes: u64,
    /// Monotonic id for the event log (slab indices get recycled).
    serial: u64,
    /// When processing started (arrival + admission wait).
    admit: SimTime,
    /// When the request's disk ops could first be enqueued: `admit`, or the
    /// end of the channel staging transfer for non-cached writes.
    stage_end: SimTime,
    /// Phase breakdown of the part that currently defines `finish` (the
    /// critical path so far); components sum exactly to `finish − arrive`.
    phase: PhaseSample,
    /// Array state when the request arrived: 0 healthy, 1 degraded (no
    /// rebuild running), 2 rebuilding. Buckets the per-window response
    /// statistics of [`FaultReport`].
    window: u8,
}

/// Parameters of one write decomposition (host write or cache writeback).
pub(super) struct WriteOps {
    pub(super) req: Option<u32>,
    pub(super) array: u32,
    pub(super) laddr: u64,
    pub(super) n: u32,
    pub(super) band: Band,
    pub(super) data_role: OpRole,
    /// Cached old data available (writeback with a retained old copy):
    /// data disks skip the pre-read and parity RMWs resolve immediately.
    pub(super) old_known: bool,
    /// RAID4 parity caching: parity updates go to the spool.
    pub(super) spool: bool,
}

#[derive(Clone, Debug)]
struct DestageJob {
    group: nvcache::DestageGroup,
    remaining: u32,
}

/// An injected fault hitting the simulated hardware, resolved to engine
/// coordinates (global disk index).
#[derive(Clone, Copy, Debug)]
enum FaultKind {
    DiskFail { gdisk: u32 },
    BatteryFail,
    BatteryRestore,
}

/// Number of spare blocks reconstructed per rebuild batch. One batch is one
/// background write to the spare fed by peer reads; small enough that
/// foreground traffic interleaves between batches, large enough that the
/// sweep is not all seeks.
const REBUILD_BATCH_BLOCKS: u64 = 64;

/// Runtime state of the fault-injection engine, present iff
/// [`SimConfig::fault`] is set. Owns the injected-event plan, the per-disk
/// transient-error streams, the failure/rebuild timeline, and every counter
/// reported in [`FaultReport`].
struct FaultState {
    fcfg: FaultConfig,
    plan: FaultPlan,
    /// One independent error stream per physical disk, split off the fault
    /// seed, so one disk's draw sequence never depends on another's op
    /// count.
    rngs: Vec<FaultRng>,
    // Disk-failure / rebuild timeline.
    failed_at: Option<SimTime>,
    healthy_at: Option<SimTime>,
    rebuild_started: Option<SimTime>,
    rebuild_done: Option<SimTime>,
    rebuild_active: bool,
    /// Next spare block to reconstruct.
    rebuild_cursor: u64,
    /// When the in-flight rebuild batch was dispatched (rate throttling).
    step_started: SimTime,
    rebuild_blocks: u64,
    // NVRAM battery.
    battery_out: bool,
    battery_fail_at: SimTime,
    battery_window_ns: u64,
    writes_written_through: u64,
    // Error/recovery counters.
    transient_errors: u64,
    retries: u64,
    escalations: u64,
    ops_aborted: u64,
    ops_replayed: u64,
    // Response split by the array state the request arrived under.
    resp_healthy: Welford,
    resp_degraded: Welford,
    resp_rebuilding: Welford,
}

impl FaultState {
    fn new(fcfg: FaultConfig, plan: FaultPlan, rngs: Vec<FaultRng>) -> FaultState {
        FaultState {
            fcfg,
            plan,
            rngs,
            failed_at: None,
            healthy_at: None,
            rebuild_started: None,
            rebuild_done: None,
            rebuild_active: false,
            rebuild_cursor: 0,
            step_started: SimTime::ZERO,
            rebuild_blocks: 0,
            battery_out: false,
            battery_fail_at: SimTime::ZERO,
            battery_window_ns: 0,
            writes_written_through: 0,
            transient_errors: 0,
            retries: 0,
            escalations: 0,
            ops_aborted: 0,
            ops_replayed: 0,
            resp_healthy: Welford::new(),
            resp_degraded: Welford::new(),
            resp_rebuilding: Welford::new(),
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Process the next trace record.
    Arrive,
    DiskDone {
        gdisk: u32,
        op: u32,
    },
    /// Enqueue prepared operations (channel staging done / ready time hit).
    Issue(Box<[u32]>),
    /// RF / reconstruct: parity ops released at the job's ready time.
    EnqueueParity(u32),
    DestageTick {
        array: u32,
    },
    /// An injected fault fires (disk failure, battery failure/restore).
    Fault(FaultKind),
    /// Reconstruct the next batch of the failed disk onto the hot spare.
    RebuildStep,
    /// Periodic state sampler (read-only: never perturbs timing).
    Sample,
}

/// Engine-level counters of a finished run, reported by
/// [`Simulator::run_instrumented`]: throughput denominators for the perf
/// harness, deliberately kept out of [`SimReport`].
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Total events dispatched by the engine.
    pub events_processed: u64,
    /// Future-event-list high-water mark (peak simultaneously pending).
    pub peak_pending: usize,
}

/// Trace-driven simulator for one configuration. Construct with
/// [`Simulator::new`], consume with [`Simulator::run`].
pub struct Simulator<'t> {
    cfg: SimConfig,
    trace: &'t Trace,
    map: OrgMap,
    engine: Engine<Ev>,

    // Per physical disk (global index = array·disks_per_array + local).
    disks: Vec<Disk>,
    queues: Vec<OpQueue<u32>>,
    in_service: Vec<Option<u32>>,
    /// Completion event of the op in service, cancellable on disk failure.
    service_ev: Vec<Option<EventId>>,
    // Per array.
    channels: Vec<Channel>,
    buffers: Vec<BufferPool>,
    admission_wait: Vec<VecDeque<(usize, u32)>>,
    caches: Vec<NvCache>,
    spools: Vec<ParitySpool>,

    ops: Slab<DiskOp>,
    jobs: Slab<ParityJob>,
    reqs: Slab<Request>,
    dgroups: Slab<DestageJob>,

    // Cached constants (failed_gdisk is a runtime *state*: set by a static
    // config or a mid-run failure event, cleared when a rebuild completes).
    arrays: u32,
    dpa: u32,
    failed_gdisk: Option<u32>,
    fault: Option<FaultState>,
    n: u32,
    bpd: u64,
    rot_ns: u64,
    block_bytes: u64,
    destage_period_ns: u64,
    parity_cached: bool,

    // Progress and stats.
    next_arrival: usize,
    inflight: u64,
    resp_all: Welford,
    resp_reads: Welford,
    resp_writes: Welford,
    hist: Histogram,
    phase_reads: PhaseWelfords,
    phase_writes: PhaseWelfords,
    disk_counts: DiskCounters,
    disk_ops: u64,
    buffer_waits: u64,
    spool_stalls: u64,
    completed: u64,
    completed_reads: u64,
    completed_writes: u64,
    req_serial: u64,

    // Destage-interference accounting, per physical disk: cumulative ns of
    // background service dispatched (incremented by the full service time at
    // start, and again on RMW holds), plus the busy horizon of the
    // currently/last running background op for the mid-service correction.
    bg_busy_cum: Vec<u64>,
    bg_until: Vec<SimTime>,

    // Observability (never affects timing).
    sample_period_ns: u64,
    last_sample_ns: u64,
    prev_disk_busy: Vec<u64>,
    prev_chan_busy: Vec<u64>,
    ts: Option<TimeSeries>,
    event_log: Option<std::io::BufWriter<std::fs::File>>,
}

/// Deterministic pseudo-random spindle phase of disk `i` (splitmix64 over
/// the config seed). Hot spares draw fresh phases past the installed-disk
/// index range.
fn spindle_phase(seed: u64, i: u64, rot_ns: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % rot_ns
}

impl<'t> Simulator<'t> {
    /// Build a simulator for `cfg` over `trace`.
    ///
    /// # Panics
    ///
    /// On an invalid configuration or a trace that does not fit it; use
    /// [`Simulator::try_new`] to handle the error as a value instead.
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Simulator<'t> {
        match Self::try_new(cfg, trace) {
            Ok(sim) => sim,
            Err(e) => panic!("Simulator::new: {e}"),
        }
    }

    /// Fallible constructor: validates `cfg` against `trace` and returns
    /// the configuration error instead of panicking.
    pub fn try_new(cfg: SimConfig, trace: &'t Trace) -> Result<Simulator<'t>, String> {
        cfg.validate()?;
        let n = cfg.data_disks_per_array;
        let bpd = cfg.geometry.blocks_per_disk();
        if trace.blocks_per_disk > bpd {
            return Err("trace addresses exceed the physical disk size".into());
        }
        let arrays = cfg.arrays_for(trace.n_disks);
        let map = OrgMap::new(cfg.organization, n, bpd);
        let dpa = map.disks_per_array();
        let total_disks = (arrays * dpa) as usize;

        // Un-synchronized spindles: deterministic pseudo-random phases from
        // the seed (splitmix64 over the disk index).
        let rot_ns = cfg.geometry.rotation_ns();
        let disks = (0..total_disks)
            .map(|i| {
                Disk::new(
                    cfg.geometry.clone(),
                    cfg.seek,
                    spindle_phase(cfg.seed, i as u64, rot_ns),
                )
            })
            .collect();

        let cache_blocks = cfg
            .cache
            .map(|c| nvcache::blocks_for_mb(c.size_mb, cfg.geometry.block_bytes as u64) as usize);
        let caches = match cache_blocks {
            Some(blocks) => (0..arrays).map(|_| NvCache::new(blocks)).collect(),
            None => Vec::new(),
        };
        let parity_cached =
            cfg.cache.is_some() && matches!(cfg.organization, Organization::Raid4 { .. });
        let spools = if parity_cached {
            (0..arrays).map(|_| ParitySpool::new()).collect()
        } else {
            Vec::new()
        };

        if let Some((a, _)) = cfg.failed_disk {
            if a >= arrays {
                return Err("failed disk's array out of range".into());
            }
        }
        let failed_gdisk = cfg.failed_disk.map(|(a, d)| a * dpa + d);

        // Fault-injection plan: injected events resolved against the trace's
        // array count, per-disk error streams split off the fault seed.
        let fault = match cfg.fault {
            None => None,
            Some(fc) => {
                let mut plan = FaultPlan::new(fc.fault_seed);
                if let Some(df) = fc.disk_failure {
                    if df.array >= arrays {
                        return Err("injected disk failure's array out of range".into());
                    }
                    plan.schedule(FaultEvent::DiskFail {
                        array: df.array,
                        disk: df.disk,
                        at: SimTime::from_ms(df.at_ms),
                    });
                }
                if let Some(ms) = fc.battery_fail_at_ms {
                    plan.schedule(FaultEvent::BatteryFail {
                        at: SimTime::from_ms(ms),
                    });
                }
                if let Some(ms) = fc.battery_restore_at_ms {
                    plan.schedule(FaultEvent::BatteryRestore {
                        at: SimTime::from_ms(ms),
                    });
                }
                let rngs = (0..total_disks).map(|g| plan.stream(g as u64)).collect();
                Some(FaultState::new(fc, plan, rngs))
            }
        };

        let sample_period_ns = cfg
            .observability
            .sample_period_ms
            .map_or(0, |ms| ms * 1_000_000);
        let ts = (sample_period_ns > 0).then(|| {
            let mut cols: Vec<String> = Vec::new();
            cols.extend((0..total_disks).map(|g| format!("qdepth.d{g}")));
            cols.extend((0..total_disks).map(|g| format!("util.d{g}")));
            cols.extend((0..arrays).map(|a| format!("chan.a{a}")));
            if cache_blocks.is_some() {
                cols.extend((0..arrays).map(|a| format!("dirty.a{a}")));
                cols.extend((0..arrays).map(|a| format!("clean.a{a}")));
            }
            TimeSeries::new(cols)
        });
        let event_log = match cfg.observability.event_log.as_ref() {
            Some(p) => {
                let f = std::fs::File::create(p)
                    .map_err(|e| format!("cannot create event log {}: {e}", p.display()))?;
                Some(std::io::BufWriter::new(f))
            }
            None => None,
        };

        // Pre-size the future-event list and entity slabs from the trace:
        // pending events and live entities scale with in-flight requests,
        // a small fraction of trace length, so cap the reservation. Purely
        // an allocation hint — results are identical without it.
        let ev_cap = (trace.records.len() / 4).clamp(64, 1 << 14);
        Ok(Simulator {
            engine: Engine::with_capacity(ev_cap),
            disks,
            queues: (0..total_disks).map(|_| OpQueue::new()).collect(),
            in_service: vec![None; total_disks],
            service_ev: vec![None; total_disks],
            channels: (0..arrays)
                .map(|_| Channel::new(cfg.channel_bytes_per_sec))
                .collect(),
            buffers: (0..arrays)
                .map(|_| BufferPool::new(cfg.track_buffers_per_disk * dpa))
                .collect(),
            admission_wait: (0..arrays).map(|_| VecDeque::new()).collect(),
            caches,
            spools,
            ops: Slab::with_capacity(ev_cap),
            jobs: Slab::with_capacity(ev_cap / 4),
            reqs: Slab::with_capacity(ev_cap / 2),
            dgroups: Slab::new(),
            arrays,
            dpa,
            failed_gdisk,
            fault,
            n,
            bpd,
            rot_ns,
            block_bytes: cfg.geometry.block_bytes as u64,
            destage_period_ns: cfg.cache.map_or(0, |c| c.destage_period_ms * 1_000_000),
            parity_cached,
            next_arrival: 0,
            inflight: 0,
            resp_all: Welford::new(),
            resp_reads: Welford::new(),
            resp_writes: Welford::new(),
            hist: Histogram::response_time_ms(),
            phase_reads: PhaseWelfords::new(),
            phase_writes: PhaseWelfords::new(),
            disk_counts: DiskCounters::new(total_disks),
            disk_ops: 0,
            buffer_waits: 0,
            spool_stalls: 0,
            completed: 0,
            completed_reads: 0,
            completed_writes: 0,
            req_serial: 0,
            bg_busy_cum: vec![0; total_disks],
            bg_until: vec![SimTime::ZERO; total_disks],
            sample_period_ns,
            last_sample_ns: 0,
            prev_disk_busy: vec![0; total_disks],
            prev_chan_busy: vec![0; arrays as usize],
            ts,
            event_log,
            map,
            cfg,
            trace,
        })
    }

    /// Append one pre-formatted line to the JSONL event log, if enabled.
    fn write_log(&mut self, line: &str) {
        if let Some(w) = self.event_log.as_mut() {
            let _ = writeln!(w, "{line}");
        }
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> SimReport {
        self.run_instrumented().0
    }

    /// Run to completion, returning the report plus engine-level counters
    /// (events dispatched, future-event-list high-water mark). The counters
    /// describe the simulator, not the modeled array, so they live outside
    /// [`SimReport`] and cannot perturb its serialized form.
    pub fn run_instrumented(mut self) -> (SimReport, RunStats) {
        if let Some(first) = self.trace.records.first() {
            self.engine.schedule_at(first.at, Ev::Arrive);
        }
        if self.cfg.cache.is_some() {
            for a in 0..self.arrays {
                self.engine
                    .schedule_after(self.destage_period_ns, Ev::DestageTick { array: a });
            }
        }
        if self.sample_period_ns > 0 {
            self.engine
                .schedule_after(self.sample_period_ns, Ev::Sample);
        }
        let fault_evs: Vec<(SimTime, FaultKind)> = match self.fault.as_ref() {
            Some(fs) => fs
                .plan
                .events()
                .iter()
                .map(|e| match *e {
                    FaultEvent::DiskFail { array, disk, at } => (
                        at,
                        FaultKind::DiskFail {
                            gdisk: array * self.dpa + disk,
                        },
                    ),
                    FaultEvent::BatteryFail { at } => (at, FaultKind::BatteryFail),
                    FaultEvent::BatteryRestore { at } => (at, FaultKind::BatteryRestore),
                })
                .collect(),
            None => Vec::new(),
        };
        for (at, kind) in fault_evs {
            self.engine.schedule_at(at, Ev::Fault(kind));
        }
        while let Some(ev) = self.engine.next_event() {
            self.dispatch(ev);
        }
        debug_assert_eq!(self.inflight, 0, "requests left in flight");
        debug_assert!(self.ops.is_empty(), "disk ops leaked");
        debug_assert_eq!(self.jobs.len(), 0, "parity jobs leaked");
        debug_assert_eq!(self.dgroups.len(), 0, "destage jobs leaked");
        if let Some(w) = self.event_log.as_mut() {
            let _ = w.flush();
        }
        let stats = RunStats {
            events_processed: self.engine.events_processed(),
            peak_pending: self.engine.peak_pending(),
        };
        (self.report(), stats)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive => self.on_arrive(),
            Ev::DiskDone { gdisk, op } => self.on_disk_done(gdisk, op),
            Ev::Issue(tokens) => {
                for &t in tokens.iter() {
                    self.enqueue_op(t);
                }
            }
            Ev::EnqueueParity(job) => {
                let pending = std::mem::take(&mut self.jobs.get_mut(job).pending_parity);
                for t in pending {
                    self.enqueue_op(t);
                }
            }
            Ev::DestageTick { array } => self.on_destage_tick(array),
            Ev::Fault(kind) => match kind {
                FaultKind::DiskFail { gdisk } => self.on_disk_fail(gdisk),
                FaultKind::BatteryFail => self.on_battery_fail(),
                FaultKind::BatteryRestore => self.on_battery_restore(),
            },
            Ev::RebuildStep => self.on_rebuild_step(),
            Ev::Sample => self.on_sample(),
        }
    }

    // ------------------------------------------------------------------
    // arrivals and request setup
    // ------------------------------------------------------------------

    fn on_arrive(&mut self) {
        let idx = self.next_arrival;
        self.next_arrival += 1;
        if let Some(next) = self.trace.records.get(self.next_arrival) {
            self.engine.schedule_at(next.at, Ev::Arrive);
        }
        let rec = self.trace.records[idx];
        let array = rec.disk / self.n;

        if self.cfg.cache.is_none() {
            // Track-buffer admission control (non-cached controllers stage
            // all data through the buffer pool).
            let needed = rec.nblocks.min(self.buffers[array as usize].capacity());
            if !self.buffers[array as usize].try_acquire(needed) {
                self.buffer_waits += 1;
                self.admission_wait[array as usize].push_back((idx, needed));
                return;
            }
            self.process_record(&rec, needed);
        } else {
            self.process_record(&rec, 0);
        }
    }

    fn process_record(&mut self, rec: &TraceRecord, buffers_held: u32) {
        let array = rec.disk / self.n;
        let ldisk = rec.disk % self.n;
        let laddr = (ldisk as u64 * self.bpd + rec.block) % self.map.logical_capacity();
        let now = self.engine.now();
        let serial = self.req_serial;
        self.req_serial += 1;
        let window = match self.failed_in(array) {
            None => 0,
            Some(_) if self.fault.as_ref().is_some_and(|f| f.rebuild_active) => 2,
            Some(_) => 1,
        };
        let req = self.reqs.insert(Request {
            arrive: rec.at,
            is_read: rec.kind == AccessType::Read,
            array,
            pending: 0,
            finish: rec.at,
            buffers_held,
            tail_channel_bytes: 0,
            serial,
            admit: now,
            stage_end: now,
            phase: PhaseSample::default(),
            window,
        });
        self.inflight += 1;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"arrive\",\"req\":{},\"read\":{},\"arrive_ns\":{},\"disk\":{},\"block\":{},\"nblocks\":{}}}",
                now.as_ns(),
                serial,
                rec.kind == AccessType::Read,
                rec.at.as_ns(),
                rec.disk,
                rec.block,
                rec.nblocks
            );
            self.write_log(&line);
        }

        if self.cfg.cache.is_some() {
            match rec.kind {
                AccessType::Read => self.cached_read(req, rec, array, laddr),
                AccessType::Write => self.cached_write(req, rec, array, laddr),
            }
        } else {
            match rec.kind {
                AccessType::Read => self.noncached_read(req, array, laddr, rec.nblocks),
                AccessType::Write => self.noncached_write(req, array, laddr, rec.nblocks),
            }
        }
        // A request with no pending parts (e.g. a pure cache hit) finishes
        // immediately.
        if self.reqs.get(req).pending == 0 {
            self.finalize_request(req);
        }
    }

    fn noncached_read(&mut self, req: u32, array: u32, laddr: u64, n: u32) {
        if let Some(f) = self.failed_in(array) {
            let degraded = self.map.degraded_read_runs(laddr, n, f);
            for run in degraded.direct {
                let run = self.choose_replica(array, run);
                self.read_op(req, array, run, OpRole::HostRead);
            }
            if !degraded.reconstruct.is_empty() {
                // The rebuilt blocks go to the host once every peer read
                // lands.
                self.reqs.get_mut(req).tail_channel_bytes = n as u64 * self.block_bytes;
                for run in degraded.reconstruct {
                    self.read_op(req, array, run, OpRole::ReconstructRead);
                }
            }
            return;
        }
        for run in self.map.read_runs(laddr, n) {
            let run = self.choose_replica(array, run);
            self.read_op(req, array, run, OpRole::HostRead);
        }
    }

    /// Enqueue a normal-band read on behalf of a request.
    fn read_op(&mut self, req: u32, array: u32, run: Run, role: OpRole) {
        let t = self.new_op(DiskOp {
            role,
            req: Some(req),
            job: None,
            dgroup: None,
            gdisk: self.gdisk(array, run.disk),
            block: run.block,
            nblocks: run.nblocks,
            kind: AccessKind::Read,
            band: Band::Normal,
            feeds: false,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        });
        self.reqs.get_mut(req).pending += 1;
        self.enqueue_op(t);
    }

    fn noncached_write(&mut self, req: u32, array: u32, laddr: u64, n: u32) {
        // Write data crosses the channel into the track buffers first; disk
        // operations are released when the staging transfer completes.
        let now = self.engine.now();
        let tr = self.channels[array as usize].request(now, n as u64 * self.block_bytes);
        self.reqs.get_mut(req).stage_end = tr.end;
        let immediate = self.build_write_ops(WriteOps {
            req: Some(req),
            array,
            laddr,
            n,
            band: Band::Normal,
            data_role: OpRole::HostWrite,
            old_known: false,
            spool: false,
        });
        self.note_channel_finish(req, tr.end);
        self.engine.schedule_at(tr.end, Ev::Issue(immediate.into()));
    }

    /// A channel transfer directly bounds the request's completion (cache
    /// hits, write staging): account it as a candidate critical path whose
    /// time beyond admission is all channel.
    pub(super) fn note_channel_finish(&mut self, req: u32, end: SimTime) {
        let r = self.reqs.get_mut(req);
        if end >= r.finish {
            r.finish = end;
            r.phase = PhaseSample {
                admission_ns: r.admit - r.arrive,
                channel_ns: end - r.admit,
                ..PhaseSample::default()
            };
        }
    }

    /// Create the disk ops (and parity jobs) for a write of
    /// `[laddr, laddr+n)` under the organization's (possibly degraded)
    /// plan; returns the immediately issuable tokens — parity ops gated by
    /// a synchronization rule are issued later by their job.
    pub(super) fn build_write_ops(&mut self, w: WriteOps) -> Vec<u32> {
        let WriteOps {
            req,
            array,
            laddr,
            n,
            band,
            data_role,
            old_known,
            spool,
        } = w;
        let plan = self.plan_write(array, laddr, n);
        let parity_band = if band == Band::Normal && self.cfg.sync.has_priority() {
            Band::Priority
        } else {
            band
        };
        let mut immediate = Vec::new();
        for stripe in plan.stripes {
            if spool && !stripe.parity.is_empty() {
                // RAID4 parity caching: buffer the update instead of
                // touching the parity disk. Full-stripe and reconstruct
                // writes hold real parity; RMW deltas still need the
                // old-parity pre-read at drain time.
                let full = stripe.mode != StripeMode::Rmw;
                for p in &stripe.parity {
                    for b in 0..p.nblocks as u64 {
                        self.spool_parity(array, p.block + b, full, req);
                    }
                }
            }
            match stripe.mode {
                StripeMode::Full => {
                    for r in &stripe.data {
                        let t =
                            self.data_op(req, array, r, data_role, AccessKind::Write, band, None);
                        immediate.push(t);
                    }
                    if !spool {
                        for p in &stripe.parity {
                            let t = self.data_op(
                                req,
                                array,
                                p,
                                OpRole::ParityWrite,
                                AccessKind::Write,
                                parity_band,
                                None,
                            );
                            immediate.push(t);
                        }
                    }
                }
                StripeMode::Reconstruct => {
                    // Parity is recomputed from the surviving reads; when it
                    // is spooled (RAID4) or absent (degraded parity disk),
                    // the helper reads serve no one and are skipped.
                    let job = (!spool && !stripe.parity.is_empty()).then(|| {
                        self.jobs.insert(ParityJob {
                            data_not_started: stripe.extra_reads.len() as u32,
                            ready: SimTime::ZERO,
                            pending_parity: Vec::new(),
                            rule: EnqueueRule::AtReady,
                            refs: (stripe.extra_reads.len() + stripe.parity.len()) as u32,
                        })
                    });
                    if let Some(job) = job {
                        for p in &stripe.parity {
                            let t = self.data_op(
                                req,
                                array,
                                p,
                                OpRole::ParityWrite,
                                AccessKind::Write,
                                parity_band,
                                Some(job),
                            );
                            self.jobs.get_mut(job).pending_parity.push(t);
                        }
                        if stripe.extra_reads.is_empty() {
                            // Parity computable from new data alone.
                            let pending =
                                std::mem::take(&mut self.jobs.get_mut(job).pending_parity);
                            immediate.extend(pending);
                        }
                        for r in &stripe.extra_reads {
                            let t = self.extra_read_op(array, r, job, band);
                            immediate.push(t);
                        }
                    }
                    for r in &stripe.data {
                        let t =
                            self.data_op(req, array, r, data_role, AccessKind::Write, band, None);
                        immediate.push(t);
                    }
                }
                StripeMode::Rmw => {
                    let rule = match self.cfg.sync {
                        SyncPolicy::SimultaneousIssue => EnqueueRule::AlreadyIssued,
                        SyncPolicy::ReadFirst | SyncPolicy::ReadFirstPriority => {
                            EnqueueRule::AtReady
                        }
                        SyncPolicy::DiskFirst | SyncPolicy::DiskFirstPriority => {
                            EnqueueRule::AtAllStarted
                        }
                    };
                    // With the old data cached (writeback of a block whose
                    // old copy was retained) the parity delta is computable
                    // up front: data goes out as a plain write and the
                    // parity RMW needs no feeder. A spooled parity still
                    // wants the pre-read when the old data is unknown, to
                    // form the delta, but nothing waits on it.
                    let pre_read = !stripe.parity.is_empty() && !old_known;
                    let data_kind = if pre_read {
                        AccessKind::RmwData
                    } else {
                        AccessKind::Write
                    };
                    let needs_job = !spool && pre_read;
                    let job = needs_job.then(|| {
                        self.jobs.insert(ParityJob {
                            data_not_started: stripe.data.len() as u32,
                            ready: SimTime::ZERO,
                            pending_parity: Vec::new(),
                            rule,
                            refs: (stripe.data.len() + stripe.parity.len()) as u32,
                        })
                    });
                    for r in &stripe.data {
                        let role = if job.is_some() {
                            OpRole::RmwData
                        } else {
                            data_role
                        };
                        let t = self.data_op(req, array, r, role, data_kind, band, job);
                        immediate.push(t);
                    }
                    if spool {
                        continue;
                    }
                    for p in &stripe.parity {
                        let t = self.data_op(
                            req,
                            array,
                            p,
                            OpRole::ParityRmw,
                            AccessKind::RmwParityRead,
                            parity_band,
                            job,
                        );
                        match job {
                            None => immediate.push(t), // ready immediately
                            Some(j) => {
                                if rule == EnqueueRule::AlreadyIssued {
                                    immediate.push(t);
                                } else {
                                    self.jobs.get_mut(j).pending_parity.push(t);
                                }
                            }
                        }
                    }
                }
            }
        }
        immediate
    }

    #[allow(clippy::too_many_arguments)] // a plain op builder; a params struct would add noise
    fn data_op(
        &mut self,
        req: Option<u32>,
        array: u32,
        run: &Run,
        role: OpRole,
        kind: AccessKind,
        band: Band,
        job: Option<u32>,
    ) -> u32 {
        if let Some(q) = req {
            self.reqs.get_mut(q).pending += 1;
        }
        self.new_op(DiskOp {
            role,
            req,
            job,
            dgroup: None,
            gdisk: self.gdisk(array, run.disk),
            block: run.block,
            nblocks: run.nblocks,
            kind,
            band,
            feeds: kind == AccessKind::RmwData && job.is_some(),
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        })
    }

    /// Reconstruct helper read: feeds its parity job and never counts
    /// toward the request (the parity write it feeds always finishes
    /// later).
    fn extra_read_op(&mut self, array: u32, run: &Run, job: u32, band: Band) -> u32 {
        self.new_op(DiskOp {
            role: OpRole::ExtraRead,
            req: None,
            job: Some(job),
            dgroup: None,
            gdisk: self.gdisk(array, run.disk),
            block: run.block,
            nblocks: run.nblocks,
            kind: AccessKind::Read,
            band,
            feeds: true,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        })
    }

    // ------------------------------------------------------------------
    // disk machinery
    // ------------------------------------------------------------------

    #[inline]
    fn gdisk(&self, array: u32, disk_in_array: u32) -> u32 {
        array * self.dpa + disk_in_array
    }

    /// The failed disk's index within `array`, if the failure is in it.
    #[inline]
    pub(super) fn failed_in(&self, array: u32) -> Option<u32> {
        self.failed_gdisk
            .filter(|&g| g / self.dpa == array)
            .map(|g| g % self.dpa)
    }

    /// The organization-appropriate write plan, accounting for a failed
    /// disk in this array.
    pub(super) fn plan_write(&self, array: u32, laddr: u64, n: u32) -> crate::mapping::WritePlan {
        match self.failed_in(array) {
            Some(f) => self.map.degraded_write_plan(laddr, n, f),
            None => self.map.write_plan(laddr, n),
        }
    }

    fn new_op(&mut self, op: DiskOp) -> u32 {
        self.ops.insert(op)
    }

    /// For mirrors, send a read to the pair member with the shorter queue,
    /// breaking ties by arm distance ("shortest seek optimization") then
    /// disk id.
    fn choose_replica(&self, array: u32, run: Run) -> Run {
        let Some(alt) = self.map.mirror_of(run) else {
            return run;
        };
        // A failed pair member is never selected.
        if self.failed_in(array) == Some(run.disk) {
            return alt;
        }
        if self.failed_in(array) == Some(alt.disk) {
            return run;
        }
        let load = |r: &Run| {
            let g = self.gdisk(array, r.disk) as usize;
            (
                self.queues[g].foreground_len() + self.in_service[g].is_some() as usize,
                self.disks[g].arm_distance(r.block),
                r.disk,
            )
        };
        if load(&alt) < load(&run) {
            alt
        } else {
            run
        }
    }

    fn enqueue_op(&mut self, token: u32) {
        let now = self.engine.now();
        let (gdisk, band, role) = {
            let op = self.ops.get(token);
            (op.gdisk, op.band, op.role)
        };
        let g = gdisk as usize;
        // Background-busy snapshot, credited with the *remaining* time of a
        // background op currently in service so the interference window
        // counts only overlap with [enqueue, start].
        let snap = self.bg_busy_cum[g] - self.bg_until[g].saturating_since(now);
        {
            let op = self.ops.get_mut(token);
            op.marks.enqueue = now;
            op.marks.bg_snap = snap;
        }
        // A disk that failed after this op was planned cannot serve it:
        // abort and (for reads of lost data) re-plan through the degraded
        // path. This catches stragglers staged before the failure — boxed
        // Issue events, gated parity ops, delayed retries. Rebuild writes
        // are exempt: they target the hot spare occupying the failed slot.
        if self.failed_gdisk == Some(gdisk) && role != OpRole::RebuildWrite {
            self.abort_op(token, false);
            return;
        }
        self.queues[g].push(band, token);
        self.try_start(gdisk);
    }

    fn try_start(&mut self, gdisk: u32) {
        if self.in_service[gdisk as usize].is_some() {
            return;
        }
        let Some((_, token)) = self.queues[gdisk as usize].pop() else {
            return;
        };
        self.start_op(gdisk, token);
    }

    fn start_op(&mut self, gdisk: u32, token: u32) {
        let now = self.engine.now();
        let (block, nblocks, kind, job, feeds, band, role) = {
            let op = self.ops.get(token);
            (
                op.block, op.nblocks, op.kind, op.job, op.feeds, op.band, op.role,
            )
        };
        let timing = self.disks[gdisk as usize].plan(now, block, nblocks, kind);
        self.disk_counts.add(gdisk as usize, 1);
        self.disk_ops += 1;
        {
            let op = self.ops.get_mut(token);
            op.read_end = timing.read_end;
            op.transfer_ns = timing.transfer_ns;
            op.marks.start = now;
            op.marks.seek_ns = timing.seek_ns;
            op.marks.latency_ns = timing.latency_ns;
        }
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"dispatch\",\"disk\":{},\"role\":\"{:?}\",\"band\":\"{:?}\",\"block\":{},\"nblocks\":{},\"seek_ns\":{},\"rotation_ns\":{},\"transfer_ns\":{}}}",
                now.as_ns(),
                gdisk,
                role,
                band,
                block,
                nblocks,
                timing.seek_ns,
                timing.latency_ns,
                timing.transfer_ns
            );
            self.write_log(&line);
        }

        // Feeder ops report their read-completion to the parity job the
        // moment service starts (the timing is deterministic from here).
        if feeds {
            if let Some(j) = job {
                self.feed_job(j, timing.read_end);
            }
        }

        // Parity RMW ops whose readiness is already known can commit their
        // final completion outright.
        let complete = if kind == AccessKind::RmwParityRead {
            match job {
                Some(j) if self.jobs.get(j).data_not_started > 0 => timing.complete,
                Some(j) => rmw_write_complete(
                    timing.read_end,
                    timing.transfer_ns,
                    self.rot_ns,
                    self.jobs.get(j).ready,
                ),
                None => timing.complete, // ready immediately: read_end + rot
            }
        } else {
            timing.complete
        };
        self.disks[gdisk as usize].commit(&timing, complete);
        if band == Band::Background {
            // Destage/spool work holds the disk for [now, complete); host
            // ops queued behind it attribute that overlap to interference.
            self.bg_busy_cum[gdisk as usize] += complete - now;
            self.bg_until[gdisk as usize] = complete;
        }
        self.in_service[gdisk as usize] = Some(token);
        let ev = self
            .engine
            .schedule_at(complete, Ev::DiskDone { gdisk, op: token });
        self.service_ev[gdisk as usize] = Some(ev);
    }

    /// A feeder (data RMW / reconstruct read) started service: update the
    /// job's ready time and release parity ops per the synchronization rule.
    fn feed_job(&mut self, job: u32, read_end: SimTime) {
        let (became_ready, rule, ready) = {
            let j = self.jobs.get_mut(job);
            j.ready = j.ready.max(read_end);
            j.data_not_started -= 1;
            j.refs -= 1;
            (j.data_not_started == 0, j.rule, j.ready)
        };
        if became_ready {
            match rule {
                EnqueueRule::AlreadyIssued => {}
                EnqueueRule::AtReady => {
                    if !self.jobs.get(job).pending_parity.is_empty() {
                        self.engine.schedule_at(ready, Ev::EnqueueParity(job));
                    }
                }
                EnqueueRule::AtAllStarted => {
                    let pending = std::mem::take(&mut self.jobs.get_mut(job).pending_parity);
                    for t in pending {
                        self.enqueue_op(t);
                    }
                }
            }
        }
        self.maybe_free_job(job);
    }

    fn maybe_free_job(&mut self, job: u32) {
        if self.jobs.get(job).refs == 0 {
            debug_assert!(self.jobs.get(job).pending_parity.is_empty());
            self.jobs.remove(job);
        }
    }

    fn on_disk_done(&mut self, gdisk: u32, token: u32) {
        let now = self.engine.now();
        // Parity RMWs may need to hold the disk for more rotations if the
        // new parity was not ready when the head came back (Section 3.3).
        if self.ops.get(token).kind == AccessKind::RmwParityRead {
            let (read_end, transfer_ns, job) = {
                let op = self.ops.get(token);
                (op.read_end, op.transfer_ns, op.job)
            };
            let hold_until = match job {
                Some(j) if self.jobs.get(j).data_not_started > 0 => Some(now + self.rot_ns),
                Some(j) => {
                    let actual = rmw_write_complete(
                        read_end,
                        transfer_ns,
                        self.rot_ns,
                        self.jobs.get(j).ready,
                    );
                    (actual > now).then_some(actual)
                }
                None => None,
            };
            if let Some(until) = hold_until {
                self.disks[gdisk as usize].extend_busy(until);
                if self.ops.get(token).band == Band::Background {
                    self.bg_busy_cum[gdisk as usize] += until - now;
                    self.bg_until[gdisk as usize] = until;
                }
                let ev = self
                    .engine
                    .schedule_at(until, Ev::DiskDone { gdisk, op: token });
                self.service_ev[gdisk as usize] = Some(ev);
                return;
            }
        }

        // Transient media errors: the completed service may turn out to have
        // failed. The controller re-drives the op after an exponential
        // backoff; when the retry budget runs out the error escalates to a
        // permanent disk failure (survivable only with redundancy). Feeder
        // ops are exempt — they reported their read-completion to the parity
        // job at dispatch and cannot be un-fed.
        let transient_p = self
            .fault
            .as_ref()
            .map_or(0.0, |f| f.fcfg.transient_error_prob);
        if transient_p > 0.0 && !self.ops.get(token).feeds {
            let erred = self
                .fault
                .as_mut()
                .is_some_and(|f| f.rngs[gdisk as usize].chance(transient_p));
            if erred {
                let attempts = {
                    let op = self.ops.get_mut(token);
                    op.attempts += 1;
                    op.attempts
                };
                let policy = self.fault.as_ref().map_or(RetryPolicy::new(0, 0), |f| {
                    RetryPolicy::new(f.fcfg.retry_backoff_us * 1_000, f.fcfg.max_retries)
                });
                if let Some(f) = self.fault.as_mut() {
                    f.transient_errors += 1;
                }
                if policy.retries_left(attempts) {
                    if let Some(f) = self.fault.as_mut() {
                        f.retries += 1;
                    }
                    self.in_service[gdisk as usize] = None;
                    self.service_ev[gdisk as usize] = None;
                    self.try_start(gdisk);
                    self.engine
                        .schedule_after(policy.backoff_ns(attempts), Ev::Issue([token].into()));
                    return;
                }
                if !matches!(self.cfg.organization, Organization::Base)
                    && self.failed_gdisk.is_none()
                {
                    if let Some(f) = self.fault.as_mut() {
                        f.escalations += 1;
                    }
                    self.service_ev[gdisk as usize] = None;
                    self.on_disk_fail(gdisk);
                    return;
                }
                // No redundancy left to escalate into: deliver the data
                // anyway so the run can complete (heroic recovery).
            }
        }

        let op = self.ops.remove(token);
        self.in_service[gdisk as usize] = None;
        self.service_ev[gdisk as usize] = None;
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"complete\",\"disk\":{},\"role\":\"{:?}\",\"block\":{},\"nblocks\":{}}}",
                now.as_ns(),
                gdisk,
                op.role,
                op.block,
                op.nblocks
            );
            self.write_log(&line);
        }

        match op.role {
            OpRole::HostRead => {
                // Disk → track buffer done; now the channel transfer to the
                // host.
                let tr = self.channels[(gdisk / self.dpa) as usize]
                    .request(now, op.nblocks as u64 * self.block_bytes);
                let phase = self.op_phase(&op, now, tr.end);
                self.request_part_done(op.req_id(), tr.end, phase);
            }
            OpRole::HostWrite | OpRole::RmwData => {
                let phase = self.op_phase(&op, now, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::ParityRmw | OpRole::ParityWrite => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
                if let Some(j) = op.job {
                    self.jobs.get_mut(j).refs -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::ExtraRead => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
                // Job bookkeeping happened at start.
            }
            OpRole::CacheFetch | OpRole::ReconstructRead => {
                let phase = self.op_phase(&op, now, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::Writeback => {
                if let Some(req) = op.req {
                    let phase = self.op_phase(&op, now, now);
                    self.request_part_done(req, now, phase);
                }
            }
            OpRole::DestageData => {
                // simlint::allow(panic-policy): destage ops are created from a destage group; absence is a cache-scheduler bug worth a loud stop
                let dg = op.dgroup.expect("destage op lost its group");
                self.dgroups.get_mut(dg).remaining -= 1;
                if self.dgroups.get(dg).remaining == 0 {
                    let dj = self.dgroups.remove(dg);
                    let array = (gdisk / self.dpa) as usize;
                    self.caches[array].destage_complete(&dj.group);
                }
            }
            OpRole::DestageParity => {
                if let Some(j) = op.job {
                    self.jobs.get_mut(j).refs -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::SpoolDrain => {
                let array = (gdisk / self.dpa) as usize;
                self.caches[array].release_slots(op.nblocks as usize);
            }
            OpRole::RebuildRead => {
                // Fed its rebuild job at dispatch; nothing further.
            }
            OpRole::RebuildWrite => {
                if let Some(j) = op.job {
                    self.jobs.get_mut(j).refs -= 1;
                    self.maybe_free_job(j);
                }
                self.on_rebuild_batch_done(&op);
            }
        }

        self.try_start(gdisk);
        if op.role == OpRole::SpoolDrain {
            self.try_drain_spool(gdisk / self.dpa);
        }
    }

    // ------------------------------------------------------------------
    // request completion
    // ------------------------------------------------------------------

    /// Decompose a finished disk op into request phases. `done` is when the
    /// disk finished; `at` is when the request part completed (later than
    /// `done` only for the post-read channel transfer). The eight components
    /// telescope exactly: they sum to `at − arrive` in nanoseconds.
    fn op_phase(&self, op: &DiskOp, done: SimTime, at: SimTime) -> PhaseSample {
        let r = self.reqs.get(op.req_id());
        let m = &op.marks;
        let media = m.seek_ns + m.latency_ns + op.transfer_ns;
        let service = done - m.start;
        let queue_raw = m.start - m.enqueue;
        // How much background (destage/spool) service overlapped this op's
        // queue wait; the rest of the wait was behind foreground work.
        let interference = (self.bg_busy_cum[op.gdisk as usize] - m.bg_snap).min(queue_raw);
        PhaseSample {
            admission_ns: r.admit - r.arrive,
            channel_ns: (r.stage_end - r.admit) + (at - done),
            disk_queue_ns: queue_raw - interference,
            destage_interference_ns: interference,
            seek_ns: m.seek_ns,
            rotation_ns: m.latency_ns,
            transfer_ns: op.transfer_ns,
            // Sync wait before the op could even enqueue, plus any extra
            // rotations the disk was held beyond the media time (RMW
            // turnaround, Section 3.3).
            parity_ns: (m.enqueue - r.stage_end) + (service - media),
        }
    }

    fn request_part_done(&mut self, req: u32, at: SimTime, phase: PhaseSample) {
        let r = self.reqs.get_mut(req);
        // Keep the breakdown of the critical path: the part finishing last
        // carries the request's phase decomposition.
        if at >= r.finish {
            r.finish = at;
            r.phase = phase;
        }
        r.pending -= 1;
        if r.pending == 0 {
            self.finalize_request(req);
        }
    }

    fn finalize_request(&mut self, req: u32) {
        let mut r = self.reqs.remove(req);
        if r.tail_channel_bytes > 0 {
            let tr = self.channels[r.array as usize].request(r.finish, r.tail_channel_bytes);
            r.phase.channel_ns += tr.end - r.finish;
            r.finish = tr.end;
        }
        let total_ns = r.finish - r.arrive;
        debug_assert_eq!(
            r.phase.sum_ns(),
            total_ns,
            "phase components must sum exactly to the response time"
        );
        let ms = simkit::time::ns_to_ms(total_ns);
        self.resp_all.push(ms);
        self.hist.record(ms);
        self.completed += 1;
        if let Some(f) = self.fault.as_mut() {
            match r.window {
                0 => f.resp_healthy.push(ms),
                1 => f.resp_degraded.push(ms),
                _ => f.resp_rebuilding.push(ms),
            }
        }
        if r.is_read {
            self.resp_reads.push(ms);
            self.completed_reads += 1;
            self.phase_reads.push(&r.phase);
        } else {
            self.resp_writes.push(ms);
            self.completed_writes += 1;
            self.phase_writes.push(&r.phase);
        }
        self.inflight -= 1;
        if self.event_log.is_some() {
            let p = &r.phase;
            let line = format!(
                "{{\"t\":{},\"ev\":\"req_done\",\"req\":{},\"read\":{},\"resp_ns\":{},\"admission_ns\":{},\"channel_ns\":{},\"disk_queue_ns\":{},\"destage_interference_ns\":{},\"seek_ns\":{},\"rotation_ns\":{},\"transfer_ns\":{},\"parity_ns\":{}}}",
                r.finish.as_ns(),
                r.serial,
                r.is_read,
                total_ns,
                p.admission_ns,
                p.channel_ns,
                p.disk_queue_ns,
                p.destage_interference_ns,
                p.seek_ns,
                p.rotation_ns,
                p.transfer_ns,
                p.parity_ns
            );
            self.write_log(&line);
        }

        if r.buffers_held > 0 {
            self.buffers[r.array as usize].release(r.buffers_held);
            self.admit_waiters(r.array);
        }
    }

    fn admit_waiters(&mut self, array: u32) {
        while let Some(&(idx, needed)) = self.admission_wait[array as usize].front() {
            if !self.buffers[array as usize].try_acquire(needed) {
                break;
            }
            self.admission_wait[array as usize].pop_front();
            let rec = self.trace.records[idx];
            self.process_record(&rec, needed);
        }
    }

    // ------------------------------------------------------------------
    // fault injection and recovery
    // ------------------------------------------------------------------

    /// A disk permanently fails (injected or escalated from exhausted
    /// retries): every op queued on or in service at it is aborted and
    /// re-planned through the degraded machinery; the array switches to
    /// degraded planning; with a hot spare configured, the online rebuild
    /// starts immediately.
    fn on_disk_fail(&mut self, gdisk: u32) {
        if self.failed_gdisk.is_some() {
            return; // already degraded; config validation forbids a second
        }
        let now = self.engine.now();
        self.failed_gdisk = Some(gdisk);
        if let Some(f) = self.fault.as_mut() {
            f.failed_at = Some(now);
        }
        if self.event_log.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"disk_fail\",\"disk\":{}}}",
                now.as_ns(),
                gdisk
            );
            self.write_log(&line);
        }
        let g = gdisk as usize;
        if let Some(ev) = self.service_ev[g].take() {
            self.engine.cancel(ev);
        }
        let mut lost: Vec<(u32, bool)> = Vec::new();
        if let Some(t) = self.in_service[g].take() {
            lost.push((t, true));
        }
        while let Some((_, t)) = self.queues[g].pop() {
            lost.push((t, false));
        }
        for (t, started) in lost {
            self.abort_op(t, started);
        }
        // A failed RAID4 parity disk orphans the spool: nothing can drain
        // it anymore, so give the reserved cache slots back.
        if self.parity_cached && gdisk % self.dpa == self.n {
            let a = (gdisk / self.dpa) as usize;
            while let Some(run) = self.spools[a].pop_run(u32::MAX) {
                self.caches[a].release_slots(run.nblocks as usize);
            }
        }
        if self.fault.as_ref().is_some_and(|f| f.fcfg.spare) {
            // The hot spare takes the failed slot with a fresh spindle.
            let phase = spindle_phase(self.cfg.seed, (self.disks.len() + g) as u64, self.rot_ns);
            self.disks[g] = Disk::new(self.cfg.geometry.clone(), self.cfg.seek, phase);
            if let Some(f) = self.fault.as_mut() {
                f.rebuild_started = Some(now);
                f.rebuild_active = true;
                f.rebuild_cursor = 0;
            }
            self.engine.schedule_now(Ev::RebuildStep);
        }
    }

    /// Remove an op addressed to a failed disk, settle its bookkeeping, and
    /// re-plan host-facing reads of lost data through the degraded path.
    /// `started` marks an op that was in service: its feeder contribution,
    /// if any, already happened at dispatch.
    fn abort_op(&mut self, token: u32, started: bool) {
        let now = self.engine.now();
        let op = self.ops.remove(token);
        if let Some(f) = self.fault.as_mut() {
            f.ops_aborted += 1;
        }
        // A queued feeder never started: its parity job must not wait for a
        // read that will never happen.
        if op.feeds && !started {
            if let Some(j) = op.job {
                self.feed_job(j, now);
            }
        }
        match op.role {
            OpRole::HostRead | OpRole::CacheFetch | OpRole::ReconstructRead => {
                self.replan_lost_read(&op, now);
            }
            OpRole::HostWrite | OpRole::RmwData => {
                let phase = self.abort_phase(&op, now);
                self.request_part_done(op.req_id(), now, phase);
            }
            OpRole::ParityRmw | OpRole::ParityWrite => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
                if let Some(j) = op.job {
                    self.jobs.get_mut(j).refs -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::ExtraRead | OpRole::Writeback => {
                if let Some(req) = op.req {
                    let phase = self.abort_phase(&op, now);
                    self.request_part_done(req, now, phase);
                }
            }
            OpRole::DestageData => {
                // simlint::allow(panic-policy): same invariant as completion — a destage op always carries its group
                let dg = op.dgroup.expect("destage op lost its group");
                self.dgroups.get_mut(dg).remaining -= 1;
                if self.dgroups.get(dg).remaining == 0 {
                    let dj = self.dgroups.remove(dg);
                    let array = (op.gdisk / self.dpa) as usize;
                    self.caches[array].destage_complete(&dj.group);
                }
            }
            OpRole::DestageParity | OpRole::RebuildWrite => {
                if let Some(j) = op.job {
                    self.jobs.get_mut(j).refs -= 1;
                    self.maybe_free_job(j);
                }
            }
            OpRole::SpoolDrain => {
                let array = (op.gdisk / self.dpa) as usize;
                self.caches[array].release_slots(op.nblocks as usize);
            }
            OpRole::RebuildRead => {}
        }
    }

    /// A host-facing read lost its target disk mid-flight. Mirror reads
    /// redirect to the surviving copy; parity organizations read every
    /// surviving peer of each lost block and XOR-reconstruct, routing the
    /// rebuilt data through the request's tail channel transfer. With no
    /// redundancy the part completes degenerately (there is nothing left to
    /// read).
    fn replan_lost_read(&mut self, op: &DiskOp, now: SimTime) {
        let req = op.req_id();
        let array = op.gdisk / self.dpa;
        let local = op.gdisk % self.dpa;
        let lost = Run {
            disk: local,
            block: op.block,
            nblocks: op.nblocks,
        };
        let mut runs: Vec<Run> = Vec::new();
        let mut reconstructed = false;
        if let Some(alt) = self.map.mirror_of(lost) {
            runs.push(alt);
        } else {
            for b in 0..op.nblocks as u64 {
                for (disk, block) in self.map.peers_of(local, op.block + b) {
                    crate::mapping::push_merged(&mut runs, disk, block);
                }
            }
            reconstructed = !runs.is_empty();
        }
        if runs.is_empty() {
            let phase = self.abort_phase(op, now);
            self.request_part_done(req, now, phase);
            return;
        }
        if reconstructed && op.role == OpRole::HostRead {
            // Reconstructed data reaches the host via the tail transfer
            // (cache fetches already route the whole reply through it).
            self.reqs.get_mut(req).tail_channel_bytes += op.nblocks as u64 * self.block_bytes;
        }
        let role = match op.role {
            OpRole::CacheFetch => OpRole::CacheFetch,
            OpRole::HostRead if !reconstructed => OpRole::HostRead,
            _ => OpRole::ReconstructRead,
        };
        if let Some(f) = self.fault.as_mut() {
            f.ops_replayed += runs.len() as u64;
        }
        for run in runs {
            let t = self.new_op(DiskOp {
                role,
                req: Some(req),
                job: None,
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: op.band,
                feeds: false,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.reqs.get_mut(req).pending += 1;
            self.enqueue_op(t);
        }
        // The aborted op's own share is replaced, not completed; pending
        // stays positive because the replacements were counted first.
        self.reqs.get_mut(req).pending -= 1;
    }

    /// Phase decomposition of an aborted part at abort time `now`: time
    /// since enqueue is attributed to the disk queue (the op never reached
    /// the media). Telescopes exactly to `now − arrive`.
    fn abort_phase(&self, op: &DiskOp, now: SimTime) -> PhaseSample {
        let r = self.reqs.get(op.req_id());
        let m = &op.marks;
        PhaseSample {
            admission_ns: r.admit - r.arrive,
            channel_ns: r.stage_end - r.admit,
            parity_ns: m.enqueue - r.stage_end,
            disk_queue_ns: now - m.enqueue,
            ..PhaseSample::default()
        }
    }

    /// Reconstruct the next batch of the failed disk's blocks: read every
    /// surviving peer (background band), XOR, and write the result to the
    /// spare. Batches self-perpetuate until the cursor covers the disk,
    /// throttled to the configured rebuild rate so foreground traffic keeps
    /// priority — the same interference channel as destaging.
    fn on_rebuild_step(&mut self) {
        let Some(gdisk) = self.failed_gdisk else {
            return;
        };
        let now = self.engine.now();
        let cursor = self.fault.as_ref().map_or(0, |f| f.rebuild_cursor);
        if cursor >= self.bpd {
            // Every block is rebuilt: the spare is a full member and the
            // array returns to healthy-mode planning.
            self.failed_gdisk = None;
            if let Some(f) = self.fault.as_mut() {
                f.rebuild_active = false;
                f.rebuild_done = Some(now);
                f.healthy_at = Some(now);
            }
            if self.event_log.is_some() {
                let line = format!(
                    "{{\"t\":{},\"ev\":\"rebuild_done\",\"disk\":{}}}",
                    now.as_ns(),
                    gdisk
                );
                self.write_log(&line);
            }
            return;
        }
        let batch = REBUILD_BATCH_BLOCKS.min(self.bpd - cursor) as u32;
        if let Some(f) = self.fault.as_mut() {
            f.rebuild_cursor += batch as u64;
            f.step_started = now;
        }
        let array = gdisk / self.dpa;
        let local = gdisk % self.dpa;
        // Collect the peer blocks disk-major so `push_merged` coalesces
        // each peer's contribution into one contiguous run per disk (it
        // only merges against the last run pushed).
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for b in cursor..cursor + batch as u64 {
            pairs.extend(self.map.peers_of(local, b));
        }
        pairs.sort_unstable();
        let mut runs: Vec<Run> = Vec::new();
        for (disk, block) in pairs {
            crate::mapping::push_merged(&mut runs, disk, block);
        }
        let wt = self.new_op(DiskOp {
            role: OpRole::RebuildWrite,
            req: None,
            job: None,
            dgroup: None,
            gdisk,
            block: cursor,
            nblocks: batch,
            kind: AccessKind::Write,
            band: Band::Background,
            feeds: false,
            read_end: SimTime::ZERO,
            transfer_ns: 0,
            attempts: 0,
            marks: OpMarks::default(),
        });
        if runs.is_empty() {
            // Unprotected blocks (e.g. the Parity Striping tail sliver):
            // the spare is simply formatted through them.
            self.enqueue_op(wt);
            return;
        }
        let job = self.jobs.insert(ParityJob {
            data_not_started: runs.len() as u32,
            ready: SimTime::ZERO,
            pending_parity: vec![wt],
            rule: EnqueueRule::AtReady,
            refs: runs.len() as u32 + 1,
        });
        self.ops.get_mut(wt).job = Some(job);
        for run in runs {
            let t = self.new_op(DiskOp {
                role: OpRole::RebuildRead,
                req: None,
                job: Some(job),
                dgroup: None,
                gdisk: self.gdisk(array, run.disk),
                block: run.block,
                nblocks: run.nblocks,
                kind: AccessKind::Read,
                band: Band::Background,
                feeds: true,
                read_end: SimTime::ZERO,
                transfer_ns: 0,
                attempts: 0,
                marks: OpMarks::default(),
            });
            self.enqueue_op(t);
        }
    }

    /// A rebuild batch's spare write finished: count it and schedule the
    /// next batch, no earlier than the rate throttle allows.
    fn on_rebuild_batch_done(&mut self, op: &DiskOp) {
        let now = self.engine.now();
        let (rate, step_started) = match self.fault.as_mut() {
            Some(f) => {
                f.rebuild_blocks += op.nblocks as u64;
                (f.fcfg.rebuild_rate_mbps, f.step_started)
            }
            None => return,
        };
        let batch_bytes = op.nblocks as u64 * self.block_bytes;
        // rate MB/s ⇒ the batch may not complete faster than
        // bytes·1000/rate nanoseconds after its dispatch.
        // rate == 0 means unthrottled: the next batch may start now.
        let next_at = match (batch_bytes * 1_000).checked_div(rate) {
            None => now,
            Some(d) => (step_started + d).max(now),
        };
        self.engine.schedule_at(next_at, Ev::RebuildStep);
    }

    /// NVRAM battery failure: cached contents are no longer safe across a
    /// power loss, so the controller flushes everything dirty and serves
    /// writes in write-through mode until the battery is restored.
    fn on_battery_fail(&mut self) {
        let now = self.engine.now();
        match self.fault.as_mut() {
            Some(f) if !f.battery_out => {
                f.battery_out = true;
                f.battery_fail_at = now;
            }
            _ => return,
        }
        for a in 0..self.arrays {
            if self.caches.is_empty() {
                break;
            }
            let groups = self.caches[a as usize].collect_destage();
            for group in groups {
                self.issue_destage_group(a, group);
            }
            if self.parity_cached {
                self.try_drain_spool(a);
            }
        }
    }

    fn on_battery_restore(&mut self) {
        let now = self.engine.now();
        if let Some(f) = self.fault.as_mut() {
            if f.battery_out {
                f.battery_out = false;
                f.battery_window_ns += now - f.battery_fail_at;
            }
        }
    }

    /// Whether the NVRAM battery is currently failed (write-through mode).
    fn battery_out(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.battery_out)
    }

    fn note_write_through(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.writes_written_through += 1;
        }
    }

    // ------------------------------------------------------------------
    // report
    // ------------------------------------------------------------------

    fn report(&self) -> SimReport {
        let elapsed_ns = self.engine.now().as_ns();
        let cache = (!self.caches.is_empty()).then(|| {
            let mut total = *self.caches[0].stats();
            for c in &self.caches[1..] {
                let s = c.stats();
                total.read_hits += s.read_hits;
                total.read_misses += s.read_misses;
                total.write_hits += s.write_hits;
                total.write_misses += s.write_misses;
                total.dirty_evictions += s.dirty_evictions;
                total.overflow_events += s.overflow_events;
            }
            total
        });
        let faults = self.fault.as_ref().map(|f| {
            let end = self.engine.now();
            let battery_ns = f.battery_window_ns
                + if f.battery_out {
                    end - f.battery_fail_at
                } else {
                    0
                };
            FaultReport {
                degraded_window_ms: f.failed_at.map_or(0.0, |t0| {
                    simkit::time::ns_to_ms(f.healthy_at.unwrap_or(end) - t0)
                }),
                rebuild_ms: f.rebuild_started.map_or(0.0, |t0| {
                    simkit::time::ns_to_ms(f.rebuild_done.unwrap_or(end) - t0)
                }),
                rebuild_blocks: f.rebuild_blocks,
                transient_errors: f.transient_errors,
                retries: f.retries,
                escalations: f.escalations,
                ops_aborted: f.ops_aborted,
                ops_replayed: f.ops_replayed,
                battery_window_ms: simkit::time::ns_to_ms(battery_ns),
                writes_written_through: f.writes_written_through,
                response_healthy_ms: f.resp_healthy,
                response_degraded_ms: f.resp_degraded,
                response_rebuilding_ms: f.resp_rebuilding,
            }
        });
        SimReport {
            organization: self.cfg.organization.label().to_string(),
            requests_completed: self.completed,
            reads_completed: self.completed_reads,
            writes_completed: self.completed_writes,
            response_all_ms: self.resp_all,
            response_reads_ms: self.resp_reads,
            response_writes_ms: self.resp_writes,
            histogram_ms: self.hist.clone(),
            phases_reads: self.phase_reads.clone(),
            phases_writes: self.phase_writes.clone(),
            per_disk_accesses: self.disk_counts.clone(),
            disk_utilization: self
                .disks
                .iter()
                .map(|d| d.utilization(elapsed_ns))
                .collect(),
            channel_utilization: self
                .channels
                .iter()
                .map(|c| c.utilization(elapsed_ns))
                .collect(),
            cache,
            spool_peak: self.spools.iter().map(|s| s.peak()).max().unwrap_or(0),
            spool_merges: self.spools.iter().map(|s| s.merges()).sum(),
            spool_stalls: self.spool_stalls,
            disk_ops: self.disk_ops,
            buffer_waits: self.buffer_waits,
            elapsed_secs: self.engine.now().as_secs_f64(),
            faults,
            timeseries: self.ts.clone(),
        }
    }

    // ------------------------------------------------------------------
    // periodic sampler
    // ------------------------------------------------------------------

    /// Record one time-series row (queue depths, utilizations, channel busy,
    /// cache occupancy) and reschedule while the simulation still has work.
    /// Purely observational: it reads state and never touches timing.
    fn on_sample(&mut self) {
        let now = self.engine.now();
        let now_ns = now.as_ns();
        let dt = now_ns - self.last_sample_ns;
        let Some(ts) = self.ts.as_mut() else {
            return;
        };
        let mut row = Vec::with_capacity(ts.width());
        for (g, q) in self.queues.iter().enumerate() {
            let depth = q.len() + usize::from(self.in_service[g].is_some());
            row.push(depth as f64);
        }
        for (g, d) in self.disks.iter().enumerate() {
            let busy = d.busy_ns();
            // Windowed busy fraction; can exceed 1.0 because service time is
            // committed when an op starts, not accrued as it runs.
            let frac = if dt > 0 {
                (busy - self.prev_disk_busy[g]) as f64 / dt as f64
            } else {
                0.0
            };
            self.prev_disk_busy[g] = busy;
            row.push(frac);
        }
        for (a, c) in self.channels.iter().enumerate() {
            let busy = c.busy_ns();
            let frac = if dt > 0 {
                (busy - self.prev_chan_busy[a]) as f64 / dt as f64
            } else {
                0.0
            };
            self.prev_chan_busy[a] = busy;
            row.push(frac);
        }
        for cache in &self.caches {
            row.push(cache.dirty_count() as f64);
            row.push((cache.len() - cache.dirty_count()) as f64);
        }
        ts.push(now_ns, row);
        self.last_sample_ns = now_ns;

        let work_left = self.next_arrival < self.trace.records.len()
            || self.inflight > 0
            || self.caches.iter().any(|c| c.dirty_count() > 0)
            || self.spools.iter().any(|s| !s.is_empty())
            || self.fault.as_ref().is_some_and(|f| f.rebuild_active);
        if work_left {
            self.engine
                .schedule_at(now + self.sample_period_ns, Ev::Sample);
        }
    }
}

#[cfg(test)]
mod tests;
